#include "common/fmt_table.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace qc {
namespace {

std::string format(const char* fmt, double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, precision, v);
  return buf;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%*s", c == 0 ? "" : "  ", static_cast<int>(widths[c]),
                   row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  std::size_t total = headers_.empty() ? 0 : 2 * (headers_.size() - 1);
  for (const auto w : widths) total += w;
  std::fprintf(out, "%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string Table::integer(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string Table::num(double v, int precision) { return format("%.*f", v, precision); }

std::string Table::mops(double ops_per_sec) {
  return format("%.*f Mop/s", ops_per_sec / 1e6, 2);
}

std::string Table::percent(double fraction) { return format("%.*f%%", fraction * 100.0, 1); }

}  // namespace qc
