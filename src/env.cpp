#include "common/env.hpp"

#include <cerrno>
#include <cstdlib>
#include <thread>

namespace qc::env {
namespace {

std::uint32_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : static_cast<std::uint32_t>(hw);
}

BenchScale preset(const std::string& name) {
  // "smoke" is sized so every bench finishes in seconds under ASan; "paper"
  // matches the experimental setup of the Quancurrent paper (10M elements).
  if (name == "smoke") return {"smoke", 200'000, 2, 4};
  if (name == "paper") return {"paper", 10'000'000, 3, std::max(32u, hardware_threads())};
  return {"small", 1'000'000, 2, std::min(8u, hardware_threads())};
}

}  // namespace

std::uint64_t get_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  // strtoull silently wraps negative input ("-1" -> 2^64-1); reject it.
  const char* p = raw;
  while (*p == ' ' || *p == '\t') ++p;
  if (*p == '-') return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  return (end == raw || errno == ERANGE) ? fallback : static_cast<std::uint64_t>(v);
}

double get_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  return (end == raw) ? fallback : v;
}

std::string get_str(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? fallback : std::string(raw);
}

BenchScale bench_scale() {
  BenchScale s = preset(get_str("QC_SCALE", "small"));
  s.keys = get_u64("QC_KEYS", s.keys);
  s.runs = static_cast<std::uint32_t>(get_u64("QC_RUNS", s.runs));
  s.max_threads = static_cast<std::uint32_t>(get_u64("QC_MAX_THREADS", s.max_threads));
  if (s.keys == 0) s.keys = 1;
  if (s.runs == 0) s.runs = 1;
  if (s.max_threads == 0) s.max_threads = 1;
  return s;
}

}  // namespace qc::env
