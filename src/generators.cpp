#include "stream/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/rng.hpp"

namespace qc::stream {
namespace {

// Box–Muller on top of Xoshiro256 — avoids libstdc++'s stateful
// std::normal_distribution so the output is identical across standard
// library implementations.
double next_normal(Xoshiro256& rng) {
  double u1 = rng.next_double();
  while (u1 <= 0.0) u1 = rng.next_double();
  const double u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

// Exact Zipf(s) over kDistinct ranks by inverse-CDF table + binary search:
// P(rank = r) proportional to r^-s.  A table costs one pass at stream setup
// and keeps the tail faithful (a clamped Pareto inversion would pile ~25% of
// the mass onto the last rank at s = 1.1).
std::vector<double> zipf_cdf() {
  constexpr double kS = 1.1;
  constexpr std::size_t kDistinct = 1'000'000;
  std::vector<double> cdf(kDistinct);
  double total = 0.0;
  for (std::size_t r = 0; r < kDistinct; ++r) {
    total += std::pow(static_cast<double>(r + 1), -kS);
    cdf[r] = total;
  }
  for (auto& c : cdf) c /= total;
  return cdf;
}

double next_zipf(const std::vector<double>& cdf, Xoshiro256& rng) {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<double>((it - cdf.begin()) + 1);
}

}  // namespace

const char* distribution_name(Distribution d) {
  switch (d) {
    case Distribution::kUniform: return "uniform";
    case Distribution::kNormal: return "normal";
    case Distribution::kZipf: return "zipf";
    case Distribution::kSorted: return "sorted";
  }
  return "unknown";
}

std::vector<double> make_stream(Distribution d, std::uint64_t n, std::uint64_t seed) {
  std::vector<double> out(n);
  Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  switch (d) {
    case Distribution::kUniform:
      for (auto& v : out) v = rng.next_double();
      break;
    case Distribution::kNormal:
      for (auto& v : out) v = next_normal(rng);
      break;
    case Distribution::kZipf: {
      const auto cdf = zipf_cdf();
      for (auto& v : out) v = next_zipf(cdf, rng);
      break;
    }
    case Distribution::kSorted:
      for (std::uint64_t i = 0; i < n; ++i) out[i] = static_cast<double>(i);
      break;
  }
  return out;
}

}  // namespace qc::stream
