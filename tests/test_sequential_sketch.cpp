#include <algorithm>
#include <span>

#include "qc_test.hpp"
#include "sequential/quantiles_sketch.hpp"
#include "stream/exact_quantiles.hpp"
#include "stream/generators.hpp"

using qc::stream::Distribution;

QC_TEST(merge_sorted_merges) {
  const std::vector<double> a{1, 3, 5};
  const std::vector<double> b{2, 3, 6};
  const auto m = qc::sketch::merge_sorted(std::span<const double>(a),
                                          std::span<const double>(b));
  CHECK(m == (std::vector<double>{1, 2, 3, 3, 5, 6}));
}

QC_TEST(sample_odd_or_even_halves) {
  const std::vector<double> v{0, 1, 2, 3, 4, 5};
  const auto even = qc::sketch::sample_odd_or_even(std::span<const double>(v), false);
  const auto odd = qc::sketch::sample_odd_or_even(std::span<const double>(v), true);
  CHECK(even == (std::vector<double>{0, 2, 4}));
  CHECK(odd == (std::vector<double>{1, 3, 5}));
}

QC_TEST(small_stream_is_exact) {
  // Below 2k elements nothing is compacted, so queries are exact.
  qc::sketch::QuantilesSketch<double> sk(64);
  for (int i = 0; i < 100; ++i) sk.update(static_cast<double>(i));
  CHECK_EQ(sk.size(), 100u);
  CHECK_EQ(sk.retained(), 100u);
  CHECK_EQ(sk.rank(50.0), 50u);
  CHECK_NEAR(sk.quantile(0.5), 49.0, 1.0);
  CHECK_NEAR(sk.cdf(25.0), 0.25, 1e-9);
}

QC_TEST(weight_is_conserved_across_compactions) {
  const std::uint32_t k = 64;
  qc::sketch::QuantilesSketch<double> sk(k);
  const auto data = qc::stream::make_stream(Distribution::kUniform, 50'000, 3);
  for (const double v : data) sk.update(v);
  CHECK_EQ(sk.size(), 50'000u);
  // rank(+inf) must equal the total weight, i.e. the stream length.
  CHECK_EQ(sk.rank(1e18), 50'000u);
  // Compaction keeps at most 2k in the base plus k per level.
  CHECK(sk.retained() < 4 * k + 2 * k * 12);
  CHECK(sk.retained() < sk.size());
}

QC_TEST(rank_error_within_eps_bound_k256_n1e5) {
  // The ISSUE's acceptance experiment: k=256, n=1e5, uniform stream.  The
  // KLL-style ladder's expected normalized rank error is O(1/k); with k=256
  // and fixed seeds the observed max error over a 99-point phi grid is
  // ~0.004, so 10/k = 0.039 gives deterministic headroom.
  const std::uint32_t k = 256;
  const std::uint64_t n = 100'000;
  auto data = qc::stream::make_stream(Distribution::kUniform, n, 11);
  qc::sketch::QuantilesSketch<double> sk(k);
  for (const double v : data) sk.update(v);
  qc::stream::ExactQuantiles<double> exact(std::move(data));

  const double bound = 10.0 / static_cast<double>(k);
  double max_err = 0.0;
  for (int i = 1; i < 100; ++i) {
    const double phi = static_cast<double>(i) / 100.0;
    max_err = std::max(max_err, exact.rank_error(sk.quantile(phi), phi));
  }
  CHECK(max_err <= bound);
}

QC_TEST(sorted_adversarial_stream_stays_accurate) {
  const std::uint32_t k = 256;
  auto data = qc::stream::make_stream(Distribution::kSorted, 100'000, 1);
  qc::sketch::QuantilesSketch<double> sk(k);
  for (const double v : data) sk.update(v);
  qc::stream::ExactQuantiles<double> exact(std::move(data));
  for (const double phi : {0.1, 0.5, 0.9}) {
    CHECK(exact.rank_error(sk.quantile(phi), phi) <= 10.0 / static_cast<double>(k));
  }
}

QC_TEST_MAIN()
