// Baselines subsystem (fig10/ext benches): the FCDS concurrent quantiles
// baseline, the KLL sequential baseline, the Theta distinct-count pair, and
// the relaxation algebra that matches fig10's buffer sizes to a target r.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "analysis/relaxation.hpp"
#include "baselines/fcds.hpp"
#include "qc_test.hpp"
#include "sequential/kll_sketch.hpp"
#include "sequential/quantiles_sketch.hpp"
#include "stream/exact_quantiles.hpp"
#include "stream/generators.hpp"
#include "theta/concurrent_theta.hpp"
#include "theta/theta_sketch.hpp"

namespace {

using namespace qc;

// ----- relaxation algebra ----------------------------------------------------

QC_TEST(relaxation_round_trips) {
  // buffer_for_relaxation inverts relaxation exactly on achievable points.
  for (std::uint64_t k : {256ull, 4096ull}) {
    for (std::uint64_t nodes : {1ull, 4ull}) {
      for (std::uint64_t threads : {8ull, 32ull}) {
        for (std::uint64_t b : {1ull, 8ull, 16ull, 100ull, 1024ull}) {
          const std::uint64_t r = analysis::quancurrent_relaxation(k, nodes, threads, b);
          CHECK_EQ(analysis::quancurrent_buffer_for_relaxation(r, k, nodes, threads), b);
        }
      }
    }
  }
  for (std::uint64_t workers : {1ull, 8ull, 24ull}) {
    for (std::uint64_t B : {1ull, 9ull, 2500ull}) {
      const std::uint64_t r = analysis::fcds_relaxation(workers, B);
      CHECK_EQ(analysis::fcds_buffer_for_relaxation(r, workers), B);
    }
  }
  // The inverse is a floor: targets between achievable points round down.
  CHECK_EQ(analysis::fcds_buffer_for_relaxation(analysis::fcds_relaxation(8, 100) + 15, 8),
           100ull);
  CHECK_EQ(analysis::quancurrent_buffer_for_relaxation(
               analysis::quancurrent_relaxation(4096, 1, 8, 50) + 6, 4096, 1, 8),
           50ull);
  // Degenerate targets: gather term alone exceeds r, or no local buffers.
  CHECK_EQ(analysis::quancurrent_buffer_for_relaxation(100, 4096, 1, 8), 0ull);
  CHECK_EQ(analysis::quancurrent_buffer_for_relaxation(1'000'000, 4096, 4, 4), 0ull);
  CHECK_EQ(analysis::fcds_buffer_for_relaxation(7, 8), 0ull);
  // Paper sanity: at k=4096, S=1, N=8, Quancurrent reaches r ~ 2e4 with b ~
  // 500 while FCDS needs B ~ 1250 to sit at the same r.
  CHECK(analysis::quancurrent_relaxation(4096, 1, 8, 512) < 21'000);
  CHECK_EQ(analysis::fcds_relaxation(8, 1250), 20'000ull);
}

// ----- KLL -------------------------------------------------------------------

QC_TEST(kll_rank_error_within_oracle_bound) {
  const std::uint32_t k = 256;
  const std::uint64_t n = 60'000;
  auto data = stream::make_stream(stream::Distribution::kUniform, n, 42);
  sequential::KllSketch<double> kll(k);
  for (double v : data) kll.update(v);
  CHECK_EQ(kll.size(), n);
  stream::ExactQuantiles<double> exact{std::vector<double>(data)};
  double max_err = 0.0;
  for (double phi = 0.05; phi <= 0.951; phi += 0.05) {
    max_err = std::max(max_err, exact.rank_error(kll.quantile(phi), phi));
  }
  // KLL's rank error is O(1/k); 8/k is a generous deterministic envelope.
  CHECK(max_err < 8.0 / static_cast<double>(k));
  // rank() and cdf() answer from the same summary.
  const double median = kll.quantile(0.5);
  CHECK_NEAR(kll.cdf(median), 0.5, 0.05);
}

QC_TEST(kll_retained_stays_near_3k) {
  // The geometric capacity decay caps retained space at ~3k for any stream
  // length — the headline space win over the classic sketch ext_kll_compare
  // measures.
  const std::uint32_t k = 128;
  sequential::KllSketch<double> kll(k);
  auto data = stream::make_stream(stream::Distribution::kNormal, 200'000, 7);
  std::uint64_t max_retained = 0;
  for (double v : data) {
    kll.update(v);
    max_retained = std::max(max_retained, kll.retained());
  }
  CHECK(max_retained <= 5ull * k);
  CHECK(kll.retained() >= k / 2);  // it did keep a summary
  CHECK(kll.num_levels() > 5);     // and the stream really cascaded
}

// ----- FCDS ------------------------------------------------------------------

QC_TEST(fcds_single_worker_matches_sequential_exactly) {
  // With one worker, B dividing 2k, and a quiesce, every compaction block is
  // the same 2k stream elements the sequential sketch compacts, the merged
  // sorted sequence is identical, and the compaction coin streams align
  // (same seed, one coin per compaction) — so answers match bit-for-bit.
  const std::uint32_t k = 128;
  const std::uint64_t seed = 777;
  const std::uint64_t n = 40'000;
  const auto data = stream::make_stream(stream::Distribution::kUniform, n, 9);
  sequential::QuantilesSketch<double> seq(k, seed);
  for (double v : data) seq.update(v);

  for (std::uint64_t B : {32ull, 64ull, 256ull}) {
    fcds::FcdsQuantiles<double>::Options fo;
    fo.k = k;
    fo.worker_buffer = B;
    fo.num_workers = 1;
    fo.publish_every = 1u << 30;  // only quiesce publishes
    fo.seed = seed;
    fcds::FcdsQuantiles<double> f(fo);
    {
      auto w = f.make_updater(0);
      for (double v : data) w.update(v);
    }
    f.quiesce();
    CHECK_EQ(f.size(), n);
    for (double phi = 0.05; phi <= 0.951; phi += 0.05) {
      CHECK_EQ(f.quantile(phi), seq.quantile(phi));
    }
    for (double probe : {0.1, 0.25, 0.5, 0.9}) {
      CHECK_EQ(f.rank(probe), seq.rank(probe));
    }
  }

  // A B that does NOT divide 2k partitions the stream into different (but
  // equally valid) 2k compaction blocks: a worker pre-sorts its buffer, so a
  // buffer straddling the 2k boundary contributes its smallest items first.
  // Answers then differ from the sequential sketch but stay inside the same
  // O(1/k) envelope.
  stream::ExactQuantiles<double> exact{std::vector<double>(data)};
  for (std::uint64_t B : {100ull, 1000ull}) {
    fcds::FcdsQuantiles<double>::Options fo;
    fo.k = k;
    fo.worker_buffer = B;
    fo.num_workers = 1;
    fo.publish_every = 1u << 30;
    fo.seed = seed;
    fcds::FcdsQuantiles<double> f(fo);
    {
      auto w = f.make_updater(0);
      for (double v : data) w.update(v);
    }
    f.quiesce();
    CHECK_EQ(f.size(), n);
    for (double phi = 0.05; phi <= 0.951; phi += 0.05) {
      CHECK(exact.rank_error(f.quantile(phi), phi) < 8.0 / static_cast<double>(k));
    }
  }
}

QC_TEST(fcds_concurrent_ingest_with_live_queries) {
  // Multi-worker ingest with a live reader hammering the double-buffered
  // snapshot while the propagator publishes on a short cadence — the TSan
  // smoke for the worker/propagator/query synchronization.
  const std::uint32_t k = 64;
  const std::uint32_t workers = 4;
  const std::uint64_t per_worker = 20'000;
  const std::uint64_t n = workers * per_worker;
  const auto data = stream::make_stream(stream::Distribution::kUniform, n, 33);

  fcds::FcdsQuantiles<double>::Options fo;
  fo.k = k;
  fo.worker_buffer = 256;
  fo.num_workers = workers;
  fo.publish_every = 1024;
  fcds::FcdsQuantiles<double> f(fo);

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const double q = f.quantile(0.5);
      CHECK(q >= 0.0 && q < 1.0);
      (void)f.size();
    }
  });
  std::vector<std::thread> pool;
  for (std::uint32_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      auto up = f.make_updater(w);
      for (std::uint64_t i = w * per_worker; i < (w + 1) * per_worker; ++i) {
        up.update(data[i]);
      }
    });
  }
  for (auto& t : pool) t.join();
  f.quiesce();
  done.store(true, std::memory_order_release);
  reader.join();

  CHECK_EQ(f.size(), n);
  CHECK(f.publishes() > 1);  // the cadence actually published mid-stream
  stream::ExactQuantiles<double> exact{std::vector<double>(data)};
  for (double phi : {0.1, 0.5, 0.9}) {
    CHECK(exact.rank_error(f.quantile(phi), phi) < 8.0 / static_cast<double>(k));
  }
}

QC_TEST(fcds_wait_free_reader_sees_monotone_snapshots) {
  // The snapshot path is a pinned double-buffer swap (no mutex): readers pin
  // a buffer, re-check the active index, and read; the propagator drains the
  // inactive buffer's pins before rebuilding it and flips with one store.
  // Two properties fall out and are asserted here while a publish storm runs
  // (publish_every = 1 buffer, several live readers):
  //   * every read is a CONSISTENT snapshot — quantile(0.25) <= quantile(0.75)
  //     answered from one summary, never a half-rebuilt one, and
  //   * a reader's successive size() calls are monotone non-decreasing —
  //     the flip only ever installs a strictly newer snapshot.
  const std::uint32_t k = 64;
  const std::uint32_t workers = 2;
  const std::uint32_t readers = 3;
  const std::uint64_t per_worker = 30'000;
  const std::uint64_t n = workers * per_worker;
  const auto data = stream::make_stream(stream::Distribution::kUniform, n, 91);

  fcds::FcdsQuantiles<double>::Options fo;
  fo.k = k;
  fo.worker_buffer = 128;
  fo.num_workers = workers;
  fo.publish_every = 1;  // republish on every handed-off buffer
  fcds::FcdsQuantiles<double> f(fo);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> pool;
  for (std::uint32_t r = 0; r < readers; ++r) {
    pool.emplace_back([&] {
      std::uint64_t last_size = 0;
      while (!done.load(std::memory_order_acquire)) {
        const std::uint64_t s = f.size();
        CHECK(s >= last_size);
        last_size = s;
        if (s != 0) {
          const double lo = f.quantile(0.25);
          const double hi = f.quantile(0.75);
          CHECK(lo <= hi);
          CHECK(lo >= 0.0 && hi < 1.0);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::uint32_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      auto up = f.make_updater(w);
      for (std::uint64_t i = w * per_worker; i < (w + 1) * per_worker; ++i) {
        up.update(data[i]);
      }
    });
  }
  for (std::size_t t = readers; t < pool.size(); ++t) pool[t].join();
  f.quiesce();
  done.store(true, std::memory_order_release);
  for (std::uint32_t r = 0; r < readers; ++r) pool[r].join();

  CHECK_EQ(f.size(), n);
  CHECK(f.publishes() > 10);  // the storm actually flipped buffers repeatedly
  CHECK(reads.load(std::memory_order_relaxed) > 0);  // post-join: no ordering
}

// ----- Theta -----------------------------------------------------------------

QC_TEST(theta_estimate_within_kmv_error) {
  const std::uint32_t k = 1024;
  const std::uint64_t n = 100'000;
  theta::ThetaSketch sk(k);
  for (std::uint64_t i = 0; i < n; ++i) sk.update(i);
  const double est = sk.estimate();
  const double rel = std::abs(est - static_cast<double>(n)) / static_cast<double>(n);
  // KMV sigma ~ 1/sqrt(k-2) ~ 3.1%; 5 sigma covers the fixed hash draw.
  CHECK(rel < 0.16);
  CHECK(sk.retained() <= 2ull * k);

  // Duplicates are invisible to a distinct counter.
  theta::ThetaSketch dup(k);
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t i = 0; i < n; ++i) dup.update(i);
  }
  const double dup_est = dup.estimate();
  CHECK(std::abs(dup_est - static_cast<double>(n)) / static_cast<double>(n) < 0.16);

  // Below k distinct keys the sketch is exact.
  theta::ThetaSketch small(k);
  for (std::uint64_t i = 0; i < 100; ++i) small.update(i * 7919);
  CHECK_NEAR(small.estimate(), 100.0, 1e-9);
}

QC_TEST(concurrent_theta_matches_sequential_estimate) {
  const std::uint32_t k = 1024;
  const std::uint32_t threads = 4;
  const std::uint64_t per_thread = 50'000;
  const std::uint64_t n = threads * per_thread;

  theta::ConcurrentTheta::Options o;
  o.k = k;
  o.b = 16;
  theta::ConcurrentTheta sk(o);
  std::vector<std::thread> pool;
  for (std::uint32_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      auto up = sk.make_updater();
      for (std::uint64_t i = t * per_thread; i < (t + 1) * per_thread; ++i) {
        up.update(i);
      }
      up.flush();
    });
  }
  for (auto& t : pool) t.join();
  sk.drain();
  const double est = sk.estimate();
  CHECK(std::abs(est - static_cast<double>(n)) / static_cast<double>(n) < 0.16);

  // The same keys through the sequential sketch land on the same estimate:
  // the wrapper's filter + batched hand-off lose no survivor the sequential
  // path would have kept (both see the full distinct hash set).
  theta::ThetaSketch seq(k);
  for (std::uint64_t i = 0; i < n; ++i) seq.update(i);
  CHECK_NEAR(est, seq.estimate(), seq.estimate() * 0.05);

  // theta actually tightened below 2^64 (the filter was exercised).
  CHECK(sk.theta() < ~std::uint64_t{0});
}

}  // namespace

QC_TEST_MAIN()
