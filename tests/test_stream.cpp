#include <algorithm>

#include "qc_test.hpp"
#include "stream/exact_quantiles.hpp"
#include "stream/generators.hpp"

using qc::stream::Distribution;

QC_TEST(make_stream_is_deterministic_per_seed) {
  const auto a = qc::stream::make_stream(Distribution::kUniform, 1000, 7);
  const auto b = qc::stream::make_stream(Distribution::kUniform, 1000, 7);
  const auto c = qc::stream::make_stream(Distribution::kUniform, 1000, 8);
  CHECK_EQ(a.size(), 1000u);
  CHECK(a == b);
  CHECK(a != c);
}

QC_TEST(make_stream_distribution_shapes) {
  const auto uniform = qc::stream::make_stream(Distribution::kUniform, 10'000, 1);
  CHECK(std::all_of(uniform.begin(), uniform.end(),
                    [](double v) { return v >= 0.0 && v < 1.0; }));

  const auto sorted = qc::stream::make_stream(Distribution::kSorted, 100, 1);
  CHECK(std::is_sorted(sorted.begin(), sorted.end()));

  // A standard normal sample of 10k has mean within ~4 sigma/sqrt(n) of 0.
  const auto normal = qc::stream::make_stream(Distribution::kNormal, 10'000, 1);
  double mean = 0;
  for (const double v : normal) mean += v;
  mean /= static_cast<double>(normal.size());
  CHECK_NEAR(mean, 0.0, 0.04);
}

QC_TEST(zipf_is_heavy_tailed_without_endpoint_point_mass) {
  const auto z = qc::stream::make_stream(Distribution::kZipf, 20'000, 9);
  const double top = *std::max_element(z.begin(), z.end());
  std::size_t rank_one = 0, at_top = 0;
  for (const double v : z) {
    rank_one += v == 1.0;
    at_top += v == top;
  }
  // Rank 1 carries ~12% of the mass at s=1.1 over 1M ranks; the largest
  // sampled rank must be rare (a clamped-Pareto bug once put ~25% there).
  CHECK(rank_one > z.size() / 20);
  CHECK(at_top < z.size() / 50);
}

QC_TEST(distribution_names) {
  CHECK(std::string(qc::stream::distribution_name(Distribution::kUniform)) == "uniform");
  CHECK(std::string(qc::stream::distribution_name(Distribution::kNormal)) == "normal");
}

QC_TEST(exact_quantiles_rank_and_quantile) {
  std::vector<double> data;
  for (int i = 99; i >= 0; --i) data.push_back(i);  // 0..99 shuffled-ish
  qc::stream::ExactQuantiles<double> exact(std::move(data));
  CHECK_EQ(exact.size(), 100u);
  CHECK_EQ(exact.rank(0.0), 0u);
  CHECK_EQ(exact.rank(50.0), 50u);
  CHECK_EQ(exact.rank(1000.0), 100u);
  CHECK_NEAR(exact.quantile(0.5), 50.0, 1e-9);
  CHECK_NEAR(exact.quantile(0.0), 0.0, 1e-9);
  CHECK_NEAR(exact.quantile(1.0), 99.0, 1e-9);
  CHECK_NEAR(exact.rank_error(50.0, 0.5), 0.0, 1e-9);
  CHECK_NEAR(exact.rank_error(60.0, 0.5), 0.1, 1e-9);
}

QC_TEST_MAIN()
