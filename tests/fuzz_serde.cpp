// Fuzz harness for the serde surface: deserialize() of BOTH engines must
// treat arbitrary bytes as hostile — reject cleanly (nullptr/nullopt with a
// status) or produce a sketch that is actually usable, never crash, leak, or
// over-allocate.
//
// Three build modes off one entry point:
//   * libFuzzer target `fuzz_serde` (-DQC_BUILD_FUZZERS=ON, Clang):
//     -fsanitize=fuzzer,address,undefined; CI runs it for 60 seconds per
//     push against a generated seed corpus.
//   * standalone driver `fuzz_serde_standalone` (QC_FUZZ_STANDALONE, any
//     compiler): `--write-corpus DIR` emits the seed corpus (real
//     serialize() images of both engines, several shapes each);
//     `--self-test` replays the corpus plus deterministic truncations and
//     bit flips through the harness in-process (the ctest registration);
//     any other argument is a file to replay (crash repro).
//   * Accepted inputs are exercised, not just parsed: queried, ingested
//     into, and round-tripped — a deserialize that accepts an image it
//     cannot re-serialize is a bug the harness traps on.
//
// Input guards: a crafted image can legitimately demand k up to 2^22 and an
// install queue of 2^12 — gigabyte-scale but bounded allocations the engine
// ACCEPTS by design (its own budget check only rejects disproportionate
// footprints).  Exploring those inputs teaches the fuzzer nothing per second
// of runtime, so the harness bails early on k > 2^16 or queue > 64 before
// calling deserialize.  The engine's own size caps are covered by
// deterministic tests (test_serde, test_options); the fuzzer's job is the
// decode logic under those caps.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "qc.hpp"
#include "sequential/quantiles_sketch.hpp"

namespace {

constexpr std::size_t kHeaderBytes = 12;

// Field peeks into the common layouts (offsets locked by test_serde).
std::uint32_t peek_u32(const std::uint8_t* data, std::size_t off) {
  std::uint32_t v = 0;
  std::memcpy(&v, data + off, sizeof(v));
  return v;
}

bool too_expensive(const std::uint8_t* data, std::size_t size) {
  if (size < kHeaderBytes + 4) return false;  // header rejects before allocating
  const std::uint32_t k = peek_u32(data, 12);  // same offset in both engines
  if (k > (1u << 16)) return true;
  if (size >= 34 && data[8] == 2 /* Engine::concurrent */) {
    if (peek_u32(data, 30) > 64) return true;  // install_queue
  }
  return false;
}

// A sketch the harness accepted must behave like a sketch: answer queries,
// absorb updates, and survive a serialize -> deserialize round trip.
template <typename Sketch>
void exercise(Sketch& sk) {
  if (sk.size() > 0) {
    // Values are unspecified for garbage-but-well-formed payloads (NaN items
    // break std::less's ordering with no way to see it in the image), so the
    // property here is crash-freedom of the query machinery, not ordering.
    const double lo = sk.quantile(0.0);
    (void)sk.quantile(1.0);
    (void)sk.rank(lo);
  }
  for (int i = 0; i < 16; ++i) sk.update(static_cast<double>(i));
  std::vector<std::byte> out(sk.serialized_size());
  if (sk.serialize(out) != out.size()) __builtin_trap();
}

void run_one(const std::uint8_t* data, std::size_t size) {
  if (too_expensive(data, size)) return;
  const std::span<const std::byte> in(reinterpret_cast<const std::byte*>(data), size);
  {
    qc::serde::Status st = qc::serde::Status::ok;
    auto sk = qc::Quancurrent<double>::deserialize(in, &st);
    if (sk != nullptr) {
      if (st != qc::serde::Status::ok) __builtin_trap();
      exercise(*sk);
      std::vector<std::byte> rt(sk->serialized_size());
      sk->serialize(rt);
      if (qc::Quancurrent<double>::deserialize(rt) == nullptr) __builtin_trap();
    }
  }
  {
    qc::serde::Status st = qc::serde::Status::ok;
    auto sk = qc::sequential::QuantilesSketch<double>::deserialize(in, &st);
    if (sk.has_value()) {
      if (st != qc::serde::Status::ok) __builtin_trap();
      exercise(*sk);
      std::vector<std::byte> rt(sk->serialized_size());
      sk->serialize(rt);
      if (!qc::sequential::QuantilesSketch<double>::deserialize(rt).has_value()) {
        __builtin_trap();
      }
    }
  }
  // Framed checkpoint container (recovery-layer sharded serde).  The CRC
  // framing rejects nearly all mutations before any engine decode runs;
  // whatever parses carries per-shard v3 blobs, which get the same expense
  // guard as the bare images above.
  {
    qc::recovery::Parsed parsed;
    if (qc::recovery::parse_container(in, parsed).ok() &&
        parsed.shard_blobs.size() <= 8) {
      bool costly = false;
      for (const auto blob : parsed.shard_blobs) {
        if (too_expensive(reinterpret_cast<const std::uint8_t*>(blob.data()),
                          blob.size())) {
          costly = true;
          break;
        }
      }
      if (!costly) {
        auto sh = qc::recovery::deserialize_sharded<double>(in);
        if (sh != nullptr) {
          auto q = sh->make_querier();
          if (q.size() > 0) (void)q.quantile(0.5);
          const auto rt = qc::recovery::serialize_sharded(*sh);
          if (qc::recovery::deserialize_sharded<double>(rt) == nullptr) {
            __builtin_trap();
          }
        }
        // Re-routed restore into a different width exercises the merge
        // bridge; rejection (e.g. mismatched shard k) is legal, crash is not.
        (void)qc::recovery::deserialize_sharded<double>(in, 2);
      }
    }
  }
  // Item-width probe: the same bytes read as a float sketch must fail on the
  // item-size header field, not misindex (a historic class of serde bug).
  (void)qc::Quancurrent<float>::deserialize(in);
  (void)qc::sequential::QuantilesSketch<float>::deserialize(in);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  run_one(data, size);
  return 0;
}

#if defined(QC_FUZZ_STANDALONE)

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

// Real serialize() images of both engines in several shapes — empty,
// tail-only, multi-level, large-k — so the fuzzer starts from deep inside
// the accept grammar instead of spending its budget rediscovering the magic.
std::vector<std::vector<std::uint8_t>> seed_corpus() {
  std::vector<std::vector<std::uint8_t>> corpus;
  const auto keep = [&corpus](std::span<const std::byte> img) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(img.data());
    corpus.emplace_back(p, p + img.size());
  };
  for (const std::uint32_t k : {4u, 64u, 512u}) {
    for (const std::uint32_t n : {0u, 7u, 3000u}) {
      qc::Options o;
      o.k = k;
      o.b = 8;
      qc::Quancurrent<double> cs(o);
      for (std::uint32_t i = 0; i < n; ++i) cs.update(static_cast<double>(i));
      cs.quiesce();
      std::vector<std::byte> img(cs.serialized_size());
      cs.serialize(img);
      keep(img);

      qc::sequential::QuantilesSketch<double> ss(k);
      for (std::uint32_t i = 0; i < n; ++i) ss.update(static_cast<double>(i));
      std::vector<std::byte> simg(ss.serialized_size());
      ss.serialize(simg);
      keep(simg);
    }
  }
  // Framed checkpoint containers (recovery/container.hpp): sharded images at
  // several widths plus a single-kind checkpoint, so the fuzzer starts with
  // valid CRC framing instead of rediscovering CRC32C one bit at a time.
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    qc::Options o;
    o.k = 64;
    o.b = 8;
    qc::ShardedQuancurrent<double> sh(shards, o);
    {
      auto u = sh.make_hash_updater();
      for (int i = 0; i < 2000; ++i) u.update(static_cast<double>(i));
    }
    sh.quiesce();
    keep(qc::recovery::serialize_sharded(sh, 9));
  }
  {
    qc::Options o;
    o.k = 64;
    o.b = 8;
    qc::Quancurrent<double> cs(o);
    for (int i = 0; i < 1000; ++i) cs.update(static_cast<double>(i));
    cs.quiesce();
    keep(qc::recovery::encode_checkpoint(cs, 5));
  }
  return corpus;
}

int write_corpus(const char* dir) {
  const auto corpus = seed_corpus();
  int written = 0;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const std::string path = std::string(dir) + "/seed_" + std::to_string(i) + ".bin";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "fuzz_serde: cannot write %s\n", path.c_str());
      return 1;
    }
    std::fwrite(corpus[i].data(), 1, corpus[i].size(), f);
    std::fclose(f);
    ++written;
  }
  std::printf("fuzz_serde: wrote %d seed inputs to %s\n", written, dir);
  return 0;
}

// Replays the corpus, every truncation prefix on a stride, and a
// deterministic single-bit flip at every strided position — a few thousand
// cheap adversarial inputs proving the harness and decode paths hold without
// libFuzzer (the ctest mode, so any compiler's CI leg runs it).
int self_test() {
  const auto corpus = seed_corpus();
  std::size_t runs = 0;
  for (const auto& seed : corpus) {
    run_one(seed.data(), seed.size());
    ++runs;
    const std::size_t stride = seed.size() < 128 ? 1 : seed.size() / 97;
    for (std::size_t cut = 0; cut < seed.size(); cut += stride) {
      run_one(seed.data(), cut);
      ++runs;
    }
    std::vector<std::uint8_t> mutated = seed;
    for (std::size_t pos = 0; pos < mutated.size(); pos += stride) {
      const std::uint8_t saved = mutated[pos];
      mutated[pos] ^= static_cast<std::uint8_t>(1u << (pos % 8));
      run_one(mutated.data(), mutated.size());
      mutated[pos] = saved;
      ++runs;
    }
  }
  // Targeted framed-container mutations, beyond the strided generic pass:
  // exact chunk-boundary truncations (walking the real chunk headers),
  // per-chunk CRC flips, and commit-record stripping/duplication.  Each must
  // be REJECTED by parse_container — asserted, not merely survived — and is
  // also fed through the full harness entry point.
  std::size_t framed = 0;
  for (const auto& seed : corpus) {
    if (seed.size() < 16 || peek_u32(seed.data(), 0) != qc::recovery::kContainerMagic) {
      continue;
    }
    ++framed;
    const std::span<const std::byte> img(
        reinterpret_cast<const std::byte*>(seed.data()), seed.size());
    qc::recovery::Parsed parsed;
    if (!qc::recovery::parse_container(img, parsed).ok()) __builtin_trap();
    std::vector<std::size_t> bounds;  // offset of each chunk header
    std::size_t off = qc::recovery::kFileHeaderBytes;
    while (off + qc::recovery::kChunkHeaderBytes <= seed.size()) {
      bounds.push_back(off);
      std::uint64_t len = 0;
      std::memcpy(&len, seed.data() + off + 8, sizeof(len));
      off += qc::recovery::kChunkHeaderBytes + static_cast<std::size_t>(len);
    }
    for (const std::size_t b : bounds) {
      for (const std::size_t cut : {b, b + 7, b + qc::recovery::kChunkHeaderBytes}) {
        if (cut >= seed.size()) continue;
        if (qc::recovery::parse_container(img.first(cut), parsed).ok()) {
          __builtin_trap();
        }
        run_one(seed.data(), cut);
        ++runs;
      }
      // Flip the chunk's stored CRC: bad_chunk_crc at this chunk.
      std::vector<std::uint8_t> mut = seed;
      mut[b + 4] ^= 0x01;
      if (qc::recovery::parse_container(
              std::span<const std::byte>(
                  reinterpret_cast<const std::byte*>(mut.data()), mut.size()),
              parsed)
              .ok()) {
        __builtin_trap();
      }
      run_one(mut.data(), mut.size());
      ++runs;
    }
    // Strip the commit record: a never-sealed file.
    const std::size_t commit = bounds.back();
    if (qc::recovery::parse_container(img.first(commit), parsed).status !=
        qc::recovery::Verify::missing_commit) {
      __builtin_trap();
    }
    run_one(seed.data(), commit);
    // Duplicate it: bytes after the seal are not a committed state.
    std::vector<std::uint8_t> dup = seed;
    dup.insert(dup.end(), seed.begin() + static_cast<std::ptrdiff_t>(commit),
               seed.end());
    if (qc::recovery::parse_container(
            std::span<const std::byte>(
                reinterpret_cast<const std::byte*>(dup.data()), dup.size()),
            parsed)
            .status != qc::recovery::Verify::trailing_data) {
      __builtin_trap();
    }
    run_one(dup.data(), dup.size());
    runs += 2;
  }
  if (framed == 0) __builtin_trap();  // the corpus must carry framed seeds

  std::printf("fuzz_serde: self-test ran %zu inputs clean\n", runs);
  return 0;
}

int replay_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "fuzz_serde: cannot open %s\n", path);
    return 1;
  }
  std::vector<std::uint8_t> data;
  std::uint8_t buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + got);
  }
  std::fclose(f);
  run_one(data.data(), data.size());
  std::printf("fuzz_serde: replayed %s (%zu bytes) clean\n", path, data.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--write-corpus") {
    return write_corpus(argv[2]);
  }
  if (argc >= 2 && std::string(argv[1]) == "--self-test") {
    return self_test();
  }
  if (argc >= 2) {
    int rc = 0;
    for (int i = 1; i < argc; ++i) rc |= replay_file(argv[i]);
    return rc;
  }
  std::fprintf(stderr,
               "usage: %s --write-corpus DIR | --self-test | FILE...\n", argv[0]);
  return 2;
}

#endif  // QC_FUZZ_STANDALONE
