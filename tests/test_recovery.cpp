// Suite 16: the durable checkpoint/restore subsystem (include/qc/recovery/).
//
// Two halves:
//
//   * Deterministic unit tests — the CRC32C known-answer vector, container
//     grammar enforcement (torn chunks, bit flips, missing/duplicate commit
//     records, manifest mismatches), checkpoint retention + temp sweeping,
//     corrupt-latest fallback with RecoveryReport reasons, transient-I/O
//     retry/backoff, and graceful failure under a permanently failing
//     rename.  The I/O fault points compile in via this target's
//     QC_FAULT_INJECT=1 define (same ODR-safe pattern as test_fault).
//
//   * The kill -9 crash harness — fork a child that ingests a deterministic
//     stream and checkpoints each generation, SIGKILL it either after a
//     randomized delay or AT a fault-scheduled syscall (mid-write,
//     pre-rename, between rename and dir-fsync), then recover in the parent
//     and hold two invariants:
//       1. never recover a corrupt sketch (size and quantiles must match the
//          recovered generation's exact-oracle prefix), and
//       2. never lose a committed generation (the child reports each commit
//          through a pipe; the recovered generation must be >= the last
//          report that made it out).
//     The child stays single-threaded after fork (convenience update path),
//     so the harness is sanitizer-clean under ASan/UBSan and TSan.
//
// Round directories live under qc_recovery_harness/ in the working dir; a
// passing round removes its directory, a failing one leaves the surviving
// checkpoint files behind for CI to upload as artifacts.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "fault/inject.hpp"
#include "qc.hpp"
#include "qc_test.hpp"
#include "stream/exact_quantiles.hpp"
#include "stream/generators.hpp"

using qc::fault::Injector;
using qc::fault::Point;
using qc::stream::Distribution;

namespace {

namespace fs = std::filesystem;
namespace rec = qc::recovery;

// Reset the process-wide injector around every test that arms it, so a
// CHECK failure cannot leak probabilities into later tests.
struct InjectorScope {
  InjectorScope() { Injector::instance().reset(); }
  ~InjectorScope() { Injector::instance().reset(); }
};

qc::Options small_options() {
  qc::Options o;
  o.k = 64;
  o.b = 8;
  o.topology = qc::numa::Topology::virtual_nodes(2, 2);
  return o;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Max rank error of `answer(phi)` against the exact oracle over a phi grid.
template <typename AnswerFn>
double max_rank_error(const qc::stream::ExactQuantiles<double>& exact,
                      AnswerFn&& answer) {
  double max_err = 0.0;
  for (int i = 1; i < 50; ++i) {
    const double phi = static_cast<double>(i) / 50.0;
    max_err = std::max(max_err, exact.rank_error(answer(phi), phi));
  }
  return max_err;
}

std::vector<std::byte> read_whole_file(const std::string& path) {
  std::vector<std::byte> bytes;
  CHECK(rec::io::read_file(path.c_str(), bytes));
  return bytes;
}

void write_whole_file(const std::string& path, std::span<const std::byte> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  CHECK(f != nullptr);
  if (f != nullptr) {
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  }
}

// ----- container format ------------------------------------------------------

QC_TEST(recovery_crc32c_known_answer_and_chaining) {
  // The standard Castagnoli check vector, pinning polynomial + reflection.
  const char* digits = "123456789";
  CHECK_EQ(rec::crc32c(digits, 9), 0xE3069283u);
  CHECK_EQ(rec::crc32c(digits, 0), 0u);
  // Incremental chaining equals the one-shot digest.
  const std::uint32_t head = rec::crc32c(digits, 4);
  CHECK_EQ(rec::crc32c(digits + 4, 5, head), 0xE3069283u);
}

// One committed single-sketch container for the grammar tests below.
std::vector<std::byte> sample_container(std::uint64_t generation, std::uint32_t n) {
  qc::Quancurrent<double> sk(small_options());
  for (std::uint32_t i = 0; i < n; ++i) sk.update(static_cast<double>(i));
  sk.quiesce();
  return rec::encode_checkpoint(sk, generation);
}

QC_TEST(recovery_container_roundtrip_parses) {
  const auto image = sample_container(7, 3000);
  rec::Parsed parsed;
  const rec::ParseResult pr = rec::parse_container(image, parsed);
  CHECK(pr.ok());
  CHECK_EQ(parsed.generation, 7u);
  CHECK(parsed.manifest.kind == rec::SketchKind::single);
  CHECK_EQ(parsed.manifest.shard_count, 1u);
  CHECK_EQ(parsed.manifest.total_elements, 3000u);
  CHECK_EQ(parsed.shard_blobs.size(), 1u);
  // The embedded blob is a verbatim serde-v3 image.
  auto sk = qc::Quancurrent<double>::deserialize(parsed.shard_blobs[0]);
  CHECK(sk != nullptr);
  if (sk != nullptr) CHECK_EQ(sk->size(), 3000u);
}

QC_TEST(recovery_container_detects_bit_flips_at_chunk_granularity) {
  const auto image = sample_container(1, 500);
  // A flip anywhere in the file must reject it; flips inside a chunk must
  // name THAT chunk.  Chunk 0 is the manifest (its header starts right after
  // the 16-byte file header and carries a 16-byte payload); chunk 1 is the
  // sketch blob.  Offsets: 20 = manifest chunk header's stored CRC, 34 =
  // manifest payload, 66 = shard blob payload.
  const std::size_t chunk1_payload =
      rec::kFileHeaderBytes + rec::kChunkHeaderBytes + rec::kManifestPayloadBytes +
      rec::kChunkHeaderBytes + 2;
  for (const std::size_t pos : {std::size_t{20}, std::size_t{34}, chunk1_payload}) {
    auto mut = image;
    mut[pos] ^= std::byte{0x10};
    rec::Parsed parsed;
    const rec::ParseResult pr = rec::parse_container(mut, parsed);
    CHECK(pr.status == rec::Verify::bad_chunk_crc);
    CHECK_EQ(pr.chunk_index, pos < chunk1_payload ? 0u : 1u);
  }
  // Flips in the file header hit the frame checks instead.
  auto mut = image;
  mut[0] ^= std::byte{0x01};
  rec::Parsed parsed;
  CHECK(rec::parse_container(mut, parsed).status == rec::Verify::bad_magic);
  mut = image;
  mut[4] ^= std::byte{0x01};
  CHECK(rec::parse_container(mut, parsed).status == rec::Verify::bad_version);
  // Header generation is cross-checked by the commit record.
  mut = image;
  mut[8] ^= std::byte{0x01};
  CHECK(rec::parse_container(mut, parsed).status == rec::Verify::commit_mismatch);
}

QC_TEST(recovery_container_rejects_every_truncation) {
  const auto image = sample_container(2, 800);
  rec::Parsed parsed;
  CHECK(rec::parse_container(image, parsed).ok());
  for (std::size_t cut = 0; cut < image.size(); ++cut) {
    const rec::ParseResult pr =
        rec::parse_container(std::span<const std::byte>(image.data(), cut), parsed);
    CHECK(!pr.ok());
    CHECK(pr.status == rec::Verify::short_header ||
          pr.status == rec::Verify::torn_chunk ||
          pr.status == rec::Verify::bad_chunk_crc ||
          pr.status == rec::Verify::missing_commit);
  }
}

QC_TEST(recovery_container_commit_record_must_be_last_and_unique) {
  const auto image = sample_container(3, 100);
  rec::Parsed parsed;
  // Strip the commit chunk entirely: a clean EOF with no commit.
  const std::size_t commit_bytes = rec::kChunkHeaderBytes + rec::kCommitPayloadBytes;
  CHECK(rec::parse_container(
            std::span<const std::byte>(image.data(), image.size() - commit_bytes),
            parsed)
            .status == rec::Verify::missing_commit);
  // Duplicate the commit chunk: trailing data after the first commit.
  auto dup = image;
  dup.insert(dup.end(), image.end() - static_cast<std::ptrdiff_t>(commit_bytes),
             image.end());
  CHECK(rec::parse_container(dup, parsed).status == rec::Verify::trailing_data);
}

QC_TEST(recovery_container_commit_counts_chunks) {
  // Splice a shard chunk out from between manifest and commit: every
  // surviving chunk still passes its own CRC, but the commit's chunk count,
  // payload total, and CRC-sequence digest all disagree — the anti-splice
  // defense.
  qc::ShardedQuancurrent<double> sk(2, small_options());
  {
    auto u = sk.make_updater(0);
    for (int i = 0; i < 5000; ++i) u.update(static_cast<double>(i));
  }
  sk.quiesce();
  const auto image = rec::encode_checkpoint(sk, 4);
  rec::Parsed parsed;
  CHECK(rec::parse_container(image, parsed).ok());
  CHECK_EQ(parsed.shard_blobs.size(), 2u);
  // Locate shard chunk 1: it follows the manifest chunk and shard chunk 0.
  std::size_t off = rec::kFileHeaderBytes;
  for (int skip = 0; skip < 2; ++skip) {
    std::uint64_t len = 0;
    std::memcpy(&len, image.data() + off + 8, sizeof(len));
    off += rec::kChunkHeaderBytes + static_cast<std::size_t>(len);
  }
  std::uint64_t len1 = 0;
  std::memcpy(&len1, image.data() + off + 8, sizeof(len1));
  auto spliced = image;
  spliced.erase(spliced.begin() + static_cast<std::ptrdiff_t>(off),
                spliced.begin() + static_cast<std::ptrdiff_t>(
                                      off + rec::kChunkHeaderBytes +
                                      static_cast<std::size_t>(len1)));
  CHECK(rec::parse_container(spliced, parsed).status == rec::Verify::commit_mismatch);
}

// ----- checkpointer lifecycle ------------------------------------------------

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::path("qc_recovery_harness") / name).string()) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  const std::string path;
};

QC_TEST(recovery_checkpoint_restore_roundtrip) {
  TempDir dir("roundtrip");
  qc::Quancurrent<double> sk(small_options());
  for (int i = 0; i < 20'000; ++i) sk.update(static_cast<double>(i));
  sk.quiesce();

  rec::Checkpointer ck(sk, {.dir = dir.path, .name = "qc"});
  CHECK(ck.checkpoint());
  CHECK_EQ(ck.generation(), 1u);

  rec::RecoveryReport rep;
  auto restored = rec::recover<double>(dir.path, "qc", &rep);
  CHECK(rep.ok());
  CHECK(restored != nullptr);
  if (restored == nullptr) return;
  CHECK_EQ(rep.generation, 1u);
  CHECK_EQ(rep.skipped.size(), 0u);
  CHECK_EQ(restored->size(), sk.size());
  // Bit-exact restore: the round trip re-serializes to the same image.
  CHECK(qc::to_bytes(*restored) == qc::to_bytes(sk));
}

QC_TEST(recovery_retention_keeps_last_n_and_sweeps_temps) {
  TempDir dir("retention");
  qc::Quancurrent<double> sk(small_options());
  rec::Checkpointer ck(sk, {.dir = dir.path, .name = "qc", .keep = 3});
  for (int gen = 1; gen <= 5; ++gen) {
    sk.update(static_cast<double>(gen));
    sk.quiesce();
    CHECK(ck.checkpoint());
  }
  CHECK_EQ(ck.generation(), 5u);
  CHECK_EQ(ck.stats().pruned, 2u);
  std::size_t files = 0, temps = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    if (name.size() >= 4 && name.substr(name.size() - 4) == ".tmp") {
      ++temps;
    } else {
      ++files;
    }
  }
  CHECK_EQ(files, 3u);
  CHECK_EQ(temps, 0u);
  // A new Checkpointer over the same directory resumes the sequence.
  rec::Checkpointer resumed(sk, {.dir = dir.path, .name = "qc", .keep = 3});
  CHECK_EQ(resumed.generation(), 5u);
}

QC_TEST(recovery_corrupt_latest_falls_back_with_report) {
  TempDir dir("fallback");
  qc::Quancurrent<double> sk(small_options());
  rec::Checkpointer ck(sk, {.dir = dir.path, .name = "qc"});
  for (int gen = 1; gen <= 3; ++gen) {
    for (int i = 0; i < 1000; ++i) sk.update(static_cast<double>(gen * 1000 + i));
    sk.quiesce();
    CHECK(ck.checkpoint());
  }
  // Rot one payload byte in the newest generation.
  const auto gens = rec::detail::list_generations(dir.path, "qc");
  CHECK_EQ(gens.size(), 3u);
  auto bytes = read_whole_file(gens[0].second);
  bytes[bytes.size() / 2] ^= std::byte{0x04};
  write_whole_file(gens[0].second, bytes);

  rec::RecoveryReport rep;
  auto restored = rec::recover<double>(dir.path, "qc", &rep);
  CHECK(rep.ok());
  CHECK(restored != nullptr);
  CHECK_EQ(rep.generation, 2u);
  CHECK_EQ(rep.skipped.size(), 1u);
  if (!rep.skipped.empty()) {
    CHECK(rep.skipped[0].file == gens[0].second);
    CHECK(rep.skipped[0].reason == "bad_chunk_crc" ||
          rep.skipped[0].reason == "commit_mismatch");
  }
  if (restored != nullptr) CHECK_EQ(restored->size(), 2000u);
  // Truncate generation 2 as well (torn write): falls back to generation 1.
  auto g2 = read_whole_file(gens[1].second);
  write_whole_file(gens[1].second,
                   std::span<const std::byte>(g2.data(), g2.size() - 5));
  auto oldest = rec::recover<double>(dir.path, "qc", &rep);
  CHECK(oldest != nullptr);
  CHECK_EQ(rep.generation, 1u);
  CHECK_EQ(rep.skipped.size(), 2u);
  if (rep.skipped.size() == 2) CHECK(rep.skipped[1].reason == "torn_chunk");
  // Everything rotten: recovery reports failure rather than inventing state.
  for (const auto& entry : gens) {
    write_whole_file(entry.second, std::vector<std::byte>(8, std::byte{0xEE}));
  }
  CHECK(rec::recover<double>(dir.path, "qc", &rep) == nullptr);
  CHECK(!rep.ok());
  CHECK_EQ(rep.skipped.size(), 3u);
}

// ----- injected I/O faults ---------------------------------------------------

QC_TEST(recovery_transient_fsync_failure_retries_with_backoff) {
  InjectorScope scope;
  TempDir dir("retry");
  qc::Quancurrent<double> sk(small_options());
  for (int i = 0; i < 1000; ++i) sk.update(static_cast<double>(i));
  sk.quiesce();
  rec::Checkpointer ck(sk, {.dir = dir.path, .name = "qc", .attempts = 4});
  Injector::instance().arm_hit(Point::fsync_fail, 1);
  CHECK(ck.checkpoint());  // first attempt fails on fsync, retry commits
  CHECK_EQ(ck.stats().committed, 1u);
  CHECK_EQ(ck.stats().retries, 1u);
  CHECK_EQ(Injector::instance().counters(Point::fsync_fail).fires, 1u);
  rec::RecoveryReport rep;
  CHECK(rec::recover<double>(dir.path, "qc", &rep) != nullptr);
  CHECK_EQ(rep.generation, 1u);
}

QC_TEST(recovery_permanent_rename_failure_degrades_gracefully) {
  InjectorScope scope;
  TempDir dir("permfail");
  qc::Quancurrent<double> sk(small_options());
  for (int i = 0; i < 1000; ++i) sk.update(static_cast<double>(i));
  sk.quiesce();
  rec::Checkpointer ck(sk, {.dir = dir.path, .name = "qc", .attempts = 3});
  CHECK(ck.checkpoint());  // generation 1 commits clean

  Injector::instance().set_probability(Point::rename_fail, 1.0);
  CHECK(!ck.checkpoint());  // every attempt fails; no partial state escapes
  CHECK_EQ(ck.stats().failed, 1u);
  CHECK_EQ(ck.stats().retries, 2u);
  CHECK_EQ(ck.generation(), 1u);
  Injector::instance().set_probability(Point::rename_fail, 0.0);

  // The failed generation left no file — committed state is untouched.
  rec::RecoveryReport rep;
  auto restored = rec::recover<double>(dir.path, "qc", &rep);
  CHECK(restored != nullptr);
  CHECK_EQ(rep.generation, 1u);
  CHECK_EQ(rep.skipped.size(), 0u);
  CHECK(ck.checkpoint());  // and the checkpointer recovers on the next call
  CHECK_EQ(ck.generation(), 2u);
}

QC_TEST(recovery_read_corruption_falls_back_to_older_generation) {
  InjectorScope scope;
  TempDir dir("readrot");
  qc::Quancurrent<double> sk(small_options());
  rec::Checkpointer ck(sk, {.dir = dir.path, .name = "qc"});
  for (int gen = 1; gen <= 2; ++gen) {
    for (int i = 0; i < 500; ++i) sk.update(static_cast<double>(i));
    sk.quiesce();
    CHECK(ck.checkpoint());
  }
  // The newest image rots in transit on the first read; generation 1's read
  // (hit 2) is clean, so recovery lands there and says why.
  Injector::instance().arm_hit(Point::read_corrupt, 1);
  rec::RecoveryReport rep;
  auto restored = rec::recover<double>(dir.path, "qc", &rep);
  CHECK(restored != nullptr);
  CHECK_EQ(rep.generation, 1u);
  CHECK_EQ(rep.skipped.size(), 1u);
  if (restored != nullptr) CHECK_EQ(restored->size(), 500u);
}

QC_TEST(recovery_io_fault_chaos_never_loses_committed_state) {
  // The nightly chaos configuration for the I/O points: every syscall
  // failure mode firing probabilistically while checkpoints stream, with
  // the two harness invariants checked after every call.
  InjectorScope scope;
  TempDir dir("iochaos");
  Injector::instance().set_seed(0xC4A05ULL);
  Injector::instance().set_probability(Point::short_write, 0.10);
  Injector::instance().set_probability(Point::fsync_fail, 0.10);
  Injector::instance().set_probability(Point::rename_fail, 0.10);

  qc::Quancurrent<double> sk(small_options());
  rec::Checkpointer ck(sk, {.dir = dir.path,
                            .name = "qc",
                            .keep = 3,
                            .attempts = 8,
                            .backoff_init_us = 1,
                            .backoff_cap_us = 50});
  std::uint64_t committed = 0;       // last generation checkpoint() reported
  std::uint64_t committed_size = 0;  // sketch size at that commit
  std::uint64_t ingested = 0;
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 200; ++i) {
      sk.update(static_cast<double>(round * 200 + i));
    }
    ingested += 200;
    sk.quiesce();
    if (ck.checkpoint()) {
      committed = ck.generation();
      committed_size = ingested;
    }
    rec::RecoveryReport rep;
    auto restored = rec::recover<double>(dir.path, "qc", &rep);
    if (committed != 0) {
      CHECK(restored != nullptr);
      // A checkpoint the caller saw commit can never be lost; a LATER one
      // may exist (the rename landed but the dir-fsync retry path gave up),
      // holding any quiesce-aligned snapshot taken since.
      CHECK(rep.generation >= committed);
      if (restored != nullptr) {
        CHECK(restored->size() % 200u == 0u);
        CHECK(restored->size() >= committed_size);
        CHECK(restored->size() <= ingested);
      }
    }
  }
  CHECK(committed > 0);  // the fault rates above cannot starve progress
}

// ----- the kill -9 crash harness ---------------------------------------------

constexpr std::uint32_t kGenElems = 2048;  // elements per child generation
constexpr std::uint32_t kMaxGens = 40;
constexpr std::uint64_t kStreamSeed = 777;

struct CrashPlan {
  Point point = Point::kCount;  // kCount: no scheduled crash (timed kill)
  std::uint64_t hit = 0;
};

// The forked child: ingest generation after generation, checkpoint each, and
// report every committed generation through the pipe.  With a CrashPlan the
// injector SIGKILLs the child AT the armed syscall; otherwise the parent
// kills it after a randomized delay.  Single-threaded throughout (safe after
// fork under sanitizers); _exit avoids flushing inherited stdio state.
[[noreturn]] void child_ingest_loop(const std::string& dir, int report_fd,
                                    const CrashPlan& plan,
                                    const std::vector<double>& stream) {
  Injector::instance().reset();
  if (plan.point != Point::kCount) {
    Injector::instance().set_stall_handler(
        [](Point, void*) { ::raise(SIGKILL); }, nullptr);
    Injector::instance().arm_hit(plan.point, plan.hit);
  }
  qc::Quancurrent<double> sk(small_options());
  rec::Checkpointer ck(sk, {.dir = dir, .name = "qc", .keep = 3, .attempts = 2});
  for (std::uint32_t gen = 0; gen < kMaxGens; ++gen) {
    for (std::uint32_t i = 0; i < kGenElems; ++i) {
      sk.update(stream[static_cast<std::size_t>(gen) * kGenElems + i]);
    }
    sk.quiesce();
    if (ck.checkpoint()) {
      const std::uint64_t g = ck.generation();
      [[maybe_unused]] const ::ssize_t w = ::write(report_fd, &g, sizeof(g));
    }
  }
  ::_exit(0);
}

// One crash/recover round: fork, crash (timed or fault-scheduled), recover,
// assert the harness invariants.
void run_crash_round(const std::string& dir, const CrashPlan& plan,
                     std::uint32_t kill_delay_us,
                     const std::vector<double>& stream) {
  fs::create_directories(dir);
  int pipe_fds[2];
  CHECK(::pipe(pipe_fds) == 0);
  std::fflush(nullptr);  // no duplicated stdio buffers in the child
  const ::pid_t pid = ::fork();
  CHECK(pid >= 0);
  if (pid == 0) {
    ::close(pipe_fds[0]);
    child_ingest_loop(dir, pipe_fds[1], plan, stream);  // never returns
  }
  ::close(pipe_fds[1]);
  if (plan.point == Point::kCount) {
    ::usleep(kill_delay_us);
    ::kill(pid, SIGKILL);
  }
  int status = 0;
  CHECK(::waitpid(pid, &status, 0) == pid);
  if (plan.point != Point::kCount) {
    // A scheduled crash must actually have happened at the armed syscall.
    CHECK(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
  }
  // Drain the child's commit reports; the last one is the floor.
  std::uint64_t committed = 0, g = 0;
  while (::read(pipe_fds[0], &g, sizeof(g)) == static_cast<::ssize_t>(sizeof(g))) {
    committed = g;
  }
  ::close(pipe_fds[0]);

  rec::RecoveryReport rep;
  auto restored = rec::recover<double>(dir, "qc", &rep);
  if (restored == nullptr) {
    // Losing everything is only legal if nothing ever committed.
    CHECK_EQ(committed, 0u);
    return;
  }
  // Invariant 1: no committed generation is ever lost.
  CHECK(rep.generation >= committed);
  CHECK(rep.generation >= 1 && rep.generation <= kMaxGens);
  // Invariant 2: the recovered sketch is exactly some committed generation's
  // prefix of the stream — a whole number of child rounds, at least as many
  // as the recovered generation number (each commit follows one ingest
  // round; a transiently failed commit can make a later generation span
  // several), with quantiles inside the sketch envelope for that prefix.
  const std::uint64_t n = restored->size();
  CHECK(n % kGenElems == 0);
  const std::uint64_t rounds = n / kGenElems;
  CHECK(rounds >= rep.generation && rounds <= kMaxGens);
  qc::stream::ExactQuantiles<double> oracle(
      std::vector<double>(stream.begin(),
                          stream.begin() + static_cast<std::ptrdiff_t>(n)));
  const double err = max_rank_error(
      oracle, [&](double phi) { return restored->quantile(phi); });
  CHECK(err <= 12.0 / 64.0);
}

QC_TEST(recovery_crash_harness_randomized_sigkill) {
  InjectorScope scope;
  const auto stream = qc::stream::make_stream(
      Distribution::kUniform, static_cast<std::uint64_t>(kMaxGens) * kGenElems,
      kStreamSeed);
  // 50 rounds, kill delays spread deterministically over 0-30ms (overridable
  // seed, same env contract as the chaos job).
  std::uint64_t seed = 0x51CC1Dull;
  if (const char* env = std::getenv("QC_FAULT_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  for (int round = 0; round < 50; ++round) {
    const std::string dir =
        (fs::path("qc_recovery_harness") / ("rand_" + std::to_string(round)))
            .string();
    fs::remove_all(dir);
    const auto delay_us =
        static_cast<std::uint32_t>(splitmix64(seed ^ static_cast<std::uint64_t>(round)) % 30'000);
    run_crash_round(dir, CrashPlan{}, delay_us, stream);
    if (qc::test::Registry::instance().failures == 0) fs::remove_all(dir);
  }
}

QC_TEST(recovery_crash_harness_fault_scheduled_sigkill) {
  InjectorScope scope;
  const auto stream = qc::stream::make_stream(
      Distribution::kUniform, static_cast<std::uint64_t>(kMaxGens) * kGenElems,
      kStreamSeed);
  // Deterministic crash points: mid-write of the 1st and 5th checkpoint,
  // just before the 2nd rename, before the 1st file fsync (temp never
  // committed), and between the 1st rename and its directory fsync (the
  // committed-but-not-yet-reported window).
  const CrashPlan plans[] = {
      {Point::short_write, 1},
      {Point::short_write, 5},
      {Point::rename_fail, 2},
      {Point::fsync_fail, 1},
      {Point::fsync_fail, 2},
  };
  int idx = 0;
  for (const CrashPlan& plan : plans) {
    const std::string dir =
        (fs::path("qc_recovery_harness") / ("plan_" + std::to_string(idx++)))
            .string();
    fs::remove_all(dir);
    run_crash_round(dir, plan, 0, stream);
    if (qc::test::Registry::instance().failures == 0) fs::remove_all(dir);
  }
}

}  // namespace

QC_TEST_MAIN()
