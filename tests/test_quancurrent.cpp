#include <algorithm>
#include <thread>
#include <vector>

#include "bench_util/workload.hpp"
#include "core/quancurrent.hpp"
#include "qc_test.hpp"
#include "stream/exact_quantiles.hpp"
#include "stream/generators.hpp"

using qc::stream::Distribution;

namespace {

qc::core::Options small_options(std::uint32_t k, std::uint32_t b) {
  qc::core::Options o;
  o.k = k;
  o.b = b;
  o.collect_stats = true;
  o.topology = qc::numa::Topology::virtual_nodes(2, 2);
  return o;
}

}  // namespace

QC_TEST(batch_sort_matches_std_sort) {
  qc::Xoshiro256 rng(31);
  std::vector<double> aux;
  // Mixed-sign doubles, duplicates, tiny (<64) fallback path, presorted.
  for (const std::size_t n : {std::size_t{3}, std::size_t{63}, std::size_t{64},
                              std::size_t{8192}}) {
    std::vector<double> a(n);
    for (auto& v : a) {
      v = (rng.next_double() - 0.5) * 1e6;
      if (rng() % 4 == 0) v = static_cast<double>(static_cast<int>(v) % 16);  // dups
    }
    auto expected = a;
    std::sort(expected.begin(), expected.end());
    qc::core::batch_sort(std::span<double>(a), aux);
    CHECK(a == expected);
    qc::core::batch_sort(std::span<double>(a), aux);  // already sorted
    CHECK(a == expected);
  }
  // Signed integers exercise the sign-flip key path.
  std::vector<std::int64_t> ints(4096);
  std::vector<std::int64_t> iaux;
  for (auto& v : ints) v = static_cast<std::int64_t>(rng()) >> 16;
  auto iexpected = ints;
  std::sort(iexpected.begin(), iexpected.end());
  qc::core::batch_sort(std::span<std::int64_t>(ints), iaux);
  CHECK(ints == iexpected);
}

QC_TEST(options_normalize_clamps_b_to_divide_batches) {
  qc::core::Options o;
  o.k = 100;  // 2k = 200
  o.b = 33;   // not a divisor of 200 -> clamped down to 25
  o.normalize();
  CHECK_EQ((2 * o.k) % o.b, 0u);
  CHECK(o.b <= 33u);
}

QC_TEST(single_thread_ingest_conserves_weight) {
  const std::uint64_t n = 10'000;
  qc::core::Quancurrent<double> sk(small_options(128, 8));
  {
    auto updater = sk.make_updater(0);
    for (std::uint64_t i = 0; i < n; ++i) updater.update(static_cast<double>(i));
  }
  sk.quiesce();
  CHECK_EQ(sk.size(), n);
  auto q = sk.make_querier();
  CHECK_EQ(q.size(), n);
  CHECK_EQ(q.holes(), 0u);
  CHECK_EQ(q.rank(1e18), n);
}

QC_TEST(quiesce_flushes_partial_buffers) {
  // 10 elements with k=128: everything lands in local/tail buffers.
  qc::core::Quancurrent<double> sk(small_options(128, 8));
  {
    auto updater = sk.make_updater(0);
    for (int i = 0; i < 10; ++i) updater.update(static_cast<double>(i));
  }
  sk.quiesce();
  CHECK_EQ(sk.size(), 10u);
  auto q = sk.make_querier();
  CHECK_NEAR(q.quantile(0.0), 0.0, 1e-9);
  CHECK_NEAR(q.quantile(1.0), 9.0, 1e-9);
}

QC_TEST(four_thread_ingest_conserves_weight_and_accuracy) {
  // The ISSUE's acceptance experiment: 4 update threads, total retained
  // weight must equal n after quiesce and the rank error must stay within
  // the sketch's eps bound.  Thread interleaving varies between runs, but
  // weight conservation is exact and the error bound has large headroom.
  const std::uint64_t n = 200'000;
  const std::uint32_t k = 256;
  auto data = qc::stream::make_stream(Distribution::kUniform, n, 17);
  qc::core::Quancurrent<double> sk(small_options(k, 8));
  qc::bench::ingest_quancurrent(sk, data, 4, /*quiesce=*/true);

  CHECK_EQ(sk.size(), n);
  auto q = sk.make_querier();
  CHECK_EQ(q.size(), n);
  CHECK_EQ(q.rank(1e18), n);

  qc::stream::ExactQuantiles<double> exact(std::move(data));
  double max_err = 0.0;
  for (int i = 1; i < 50; ++i) {
    const double phi = static_cast<double>(i) / 50.0;
    max_err = std::max(max_err, exact.rank_error(q.quantile(phi), phi));
  }
  CHECK(max_err <= 12.0 / static_cast<double>(k));

  const auto st = sk.stats();
  CHECK(st.batches > 0u);
  CHECK(st.propagations >= st.batches);
}

QC_TEST(concurrent_queries_during_ingest_see_consistent_sizes) {
  // Queries running against live ingestion must always observe a size that
  // is a multiple of 2k plus the tail, and never crash on a mid-install
  // snapshot.
  const std::uint64_t n = 100'000;
  const std::uint32_t k = 64;
  // The reader's size % 2k == 0 invariant needs the tail to stay empty while
  // it runs, i.e. the per-thread slices must be whole local buffers.
  static_assert((100'000 / 2) % 8 == 0, "pick n divisible by threads * b");
  auto data = qc::stream::make_stream(Distribution::kUniform, n, 23);
  qc::core::Quancurrent<double> sk(small_options(k, 8));

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto q = sk.make_querier();
      const std::uint64_t size = q.size();
      CHECK_EQ(size % (2 * k), 0u);  // tail is empty until quiesce
      if (size > 0) {
        const double med = q.quantile(0.5);
        CHECK(med >= 0.0 && med < 1.0);
      }
    }
  });
  qc::bench::ingest_quancurrent(sk, data, 2);
  stop.store(true, std::memory_order_release);
  reader.join();

  sk.quiesce();
  auto q = sk.make_querier();
  CHECK_EQ(q.size(), n);  // drains + quiesce leave no element behind
  CHECK_EQ(q.size(), sk.size());
}

QC_TEST(stats_expose_batches_and_propagations) {
  qc::core::Quancurrent<double> sk(small_options(64, 4));
  {
    auto updater = sk.make_updater(0);
    for (int i = 0; i < 1024; ++i) updater.update(static_cast<double>(i));
  }
  const auto st = sk.stats();
  CHECK_EQ(st.batches, 1024u / 128u);
  CHECK(st.propagations >= st.batches);
  CHECK_NEAR(st.hole_rate_per_batch(), 0.0, 1e-9);
}

QC_TEST_MAIN()
