// Binary serde: round-trips are bit-identical for both engines, malformed
// input (wrong magic/version/endianness, truncation) is rejected with the
// precise status, and a deserialized sketch keeps ingesting correctly.
#include <algorithm>
#include <cstddef>
#include <cstring>
#include <vector>

#include "bench_util/workload.hpp"
#include "qc.hpp"
#include "qc_test.hpp"
#include "stream/generators.hpp"

using qc::stream::Distribution;

namespace {

qc::Options small_options(std::uint32_t k, std::uint32_t b) {
  qc::Options o;
  o.k = k;
  o.b = b;
  o.topology = qc::numa::Topology::virtual_nodes(2, 2);
  return o;
}

template <typename S>
std::vector<std::byte> serialize_of(const S& s) {
  std::vector<std::byte> out(s.serialized_size());
  CHECK_EQ(s.serialize(out), out.size());
  return out;
}

}  // namespace

QC_TEST(sequential_roundtrip_is_bit_identical) {
  const auto data = qc::stream::make_stream(Distribution::kNormal, 50'000, 3);
  qc::QuantilesSketch<double> sk(128);
  for (double v : data) sk.update(v);

  const auto blob = serialize_of(sk);
  qc::serde::Status st = qc::serde::Status::bad_payload;
  auto back = qc::QuantilesSketch<double>::deserialize(blob, &st);
  CHECK(st == qc::serde::Status::ok);
  CHECK(back.has_value());
  CHECK_EQ(back->size(), sk.size());
  CHECK_EQ(back->retained(), sk.retained());
  CHECK(back->summary() == sk.summary());  // bit-identical summary

  // Continued ingestion matches the source exactly: the rng state shipped,
  // so both sketches flip the same compaction coins from here on.
  for (double v : data) {
    sk.update(v);
    back->update(v);
  }
  CHECK(back->summary() == sk.summary());
}

QC_TEST(concurrent_roundtrip_is_bit_identical) {
  const auto data = qc::stream::make_stream(Distribution::kUniform, 60'000, 5);
  qc::Quancurrent<double> sk(small_options(128, 8));
  qc::bench::ingest_quancurrent(sk, data, 4, /*quiesce=*/true);

  const auto blob = serialize_of(sk);
  qc::serde::Status st = qc::serde::Status::bad_payload;
  auto back = qc::Quancurrent<double>::deserialize(blob, &st);
  CHECK(st == qc::serde::Status::ok);
  CHECK(back != nullptr);
  CHECK_EQ(back->size(), sk.size());
  CHECK_EQ(back->retained(), sk.retained());
  CHECK(back->tritmap() == sk.tritmap());

  auto q_src = sk.make_querier();
  auto q_back = back->make_querier();
  CHECK(q_src.summary() == q_back.summary());  // bit-identical summary
}

QC_TEST(concurrent_roundtrip_preserves_tail) {
  // 10 elements never reach an installed batch: all state lives in the tail.
  qc::Quancurrent<double> sk(small_options(128, 8));
  for (int i = 0; i < 10; ++i) sk.update(static_cast<double>(i));
  sk.quiesce();

  auto back = qc::Quancurrent<double>::deserialize(serialize_of(sk));
  CHECK(back != nullptr);
  CHECK_EQ(back->size(), 10u);
  auto q = back->make_querier();
  CHECK_NEAR(q.quantile(1.0), 9.0, 1e-12);
}

QC_TEST(to_bytes_matches_manual_serialize) {
  qc::QuantilesSketch<double> sk(64);
  for (int i = 0; i < 5'000; ++i) sk.update(static_cast<double>(i));
  CHECK(qc::to_bytes(sk) == serialize_of(sk));
}

QC_TEST(serialize_fails_cleanly_on_short_output) {
  qc::QuantilesSketch<double> sk(64);
  for (int i = 0; i < 1'000; ++i) sk.update(static_cast<double>(i));
  std::vector<std::byte> tiny(sk.serialized_size() - 1);
  CHECK_EQ(sk.serialize(tiny), 0u);
}

QC_TEST(deserialize_rejects_bad_magic_version_endianness) {
  qc::QuantilesSketch<double> sk(64);
  for (int i = 0; i < 1'000; ++i) sk.update(static_cast<double>(i));
  const auto blob = serialize_of(sk);
  qc::serde::Status st = qc::serde::Status::ok;

  auto corrupted = blob;
  corrupted[0] = std::byte{0x00};  // magic
  CHECK(!qc::QuantilesSketch<double>::deserialize(corrupted, &st).has_value());
  CHECK(st == qc::serde::Status::bad_magic);

  corrupted = blob;
  const std::uint16_t future_version = qc::serde::kVersion + 1;
  std::memcpy(corrupted.data() + 4, &future_version, sizeof(future_version));
  CHECK(!qc::QuantilesSketch<double>::deserialize(corrupted, &st).has_value());
  CHECK(st == qc::serde::Status::bad_version);

  corrupted = blob;
  const std::uint16_t foreign_endianness = 0x0201;  // byte-swapped tag
  std::memcpy(corrupted.data() + 6, &foreign_endianness, sizeof(foreign_endianness));
  CHECK(!qc::QuantilesSketch<double>::deserialize(corrupted, &st).has_value());
  CHECK(st == qc::serde::Status::bad_endianness);

  // Engine mismatch: a sequential image is not a concurrent sketch.
  CHECK(qc::Quancurrent<double>::deserialize(blob, &st) == nullptr);
  CHECK(st == qc::serde::Status::bad_payload);
}

QC_TEST(deserialize_diagnoses_byte_swapped_image) {
  // A whole-image byte swap (foreign-endian writer) presents the magic in
  // reverse byte order; the reader must diagnose bad_endianness — the
  // actionable error — not bad_magic.  Historically unreachable: the magic
  // comparison ran first and swallowed every swapped image.
  qc::QuantilesSketch<double> sk(64);
  for (int i = 0; i < 100; ++i) sk.update(static_cast<double>(i));
  auto blob = serialize_of(sk);
  std::reverse(blob.begin(), blob.begin() + 4);  // u32 magic, byte-swapped
  qc::serde::Status st = qc::serde::Status::ok;
  CHECK(!qc::QuantilesSketch<double>::deserialize(blob, &st).has_value());
  CHECK(st == qc::serde::Status::bad_endianness);

  qc::Quancurrent<double> ck(small_options(64, 8));
  ck.update(1.0);
  ck.quiesce();
  auto cblob = serialize_of(ck);
  std::reverse(cblob.begin(), cblob.begin() + 4);
  CHECK(qc::Quancurrent<double>::deserialize(cblob, &st) == nullptr);
  CHECK(st == qc::serde::Status::bad_endianness);
}

QC_TEST(concurrent_roundtrip_preserves_ibr_options) {
  qc::Options o = small_options(64, 8);
  o.serialize_propagation = true;
  o.ibr_epoch_freq = 7;
  o.ibr_recl_freq = 9;
  o.ibr_retire_cap = 128;        // serde v3 fields (offsets 43 and 47)
  o.latch_watchdog_ns = 5'000'000;
  qc::Quancurrent<double> sk(o);
  for (int i = 0; i < 1'000; ++i) sk.update(static_cast<double>(i));
  sk.quiesce();
  auto back = qc::Quancurrent<double>::deserialize(serialize_of(sk));
  CHECK(back != nullptr);
  CHECK(back->options().serialize_propagation);
  CHECK_EQ(back->options().ibr_epoch_freq, 7u);
  CHECK_EQ(back->options().ibr_recl_freq, 9u);
  CHECK_EQ(back->options().ibr_retire_cap, 128u);
  CHECK_EQ(back->options().latch_watchdog_ns, std::uint64_t{5'000'000});
}

QC_TEST(deserialize_rejects_unaffordable_preallocation) {
  // k and install_queue both at their caps clear every per-field clamp, but
  // together imply a ~quarter-terabyte fixed footprint (install-queue cells
  // and gather buffers are 2k-item arrays).  A genuine image of such a
  // sketch carries a payload in proportion; this few-hundred-byte blob must
  // be rejected by the allocation-budget pre-check BEFORE the constructor
  // reserves anything (historically an uncatchable OOM kill, not bad_alloc).
  qc::Quancurrent<double> ck(small_options(64, 8));
  ck.update(1.0);
  ck.quiesce();
  auto blob = serialize_of(ck);
  const std::uint32_t max_k = qc::core::Options::kMaxK;
  const std::uint32_t max_queue = qc::core::Options::kMaxInstallQueue;
  std::memcpy(blob.data() + 12, &max_k, sizeof(max_k));          // k
  std::memcpy(blob.data() + 30, &max_queue, sizeof(max_queue));  // install_queue
  qc::serde::Status st = qc::serde::Status::ok;
  CHECK(qc::Quancurrent<double>::deserialize(blob, &st) == nullptr);
  CHECK(st == qc::serde::Status::bad_payload);
}

QC_TEST(deserialize_rejects_oversized_k) {
  // k lives at offset 12 (right after the common header) in both formats.
  // 0x80000000 would overflow 2k (historically a SIGFPE inside the Options
  // b-divisor loop); 0xFFFFFFFF would demand a ~64 GB base reservation.
  // Both exceed Options::kMaxK, which no genuine image can carry.
  qc::serde::Status st = qc::serde::Status::ok;

  qc::Quancurrent<double> ck(small_options(64, 8));
  ck.update(1.0);
  ck.quiesce();
  auto blob = serialize_of(ck);
  const std::uint32_t overflow_k = 0x80000000u;
  std::memcpy(blob.data() + 12, &overflow_k, sizeof(overflow_k));
  CHECK(qc::Quancurrent<double>::deserialize(blob, &st) == nullptr);
  CHECK(st == qc::serde::Status::bad_payload);

  qc::QuantilesSketch<double> sk(64);
  sk.update(1.0);
  auto sblob = serialize_of(sk);
  const std::uint32_t huge_k = 0xFFFFFFFFu;
  std::memcpy(sblob.data() + 12, &huge_k, sizeof(huge_k));
  CHECK(!qc::QuantilesSketch<double>::deserialize(sblob, &st).has_value());
  CHECK(st == qc::serde::Status::bad_payload);
}

QC_TEST(deserialize_rejects_oversized_ring_and_rho) {
  // install_queue (offset 30) and rho (offset 20) above their caps cannot
  // have come from serialize (images echo normalized options); both must be
  // rejected promptly — the uncapped install_queue rounding loop used to
  // hang forever on 2^31, before any allocation could even be attempted.
  qc::Quancurrent<double> ck(small_options(64, 8));
  ck.update(1.0);
  ck.quiesce();
  const auto blob = serialize_of(ck);
  qc::serde::Status st = qc::serde::Status::ok;

  auto corrupted = blob;
  const std::uint32_t huge_queue = 0x80000000u;
  std::memcpy(corrupted.data() + 30, &huge_queue, sizeof(huge_queue));
  CHECK(qc::Quancurrent<double>::deserialize(corrupted, &st) == nullptr);
  CHECK(st == qc::serde::Status::bad_payload);

  corrupted = blob;
  const std::uint32_t huge_rho = 0xFFFFFFFFu;
  std::memcpy(corrupted.data() + 20, &huge_rho, sizeof(huge_rho));
  CHECK(qc::Quancurrent<double>::deserialize(corrupted, &st) == nullptr);
  CHECK(st == qc::serde::Status::bad_payload);
}

QC_TEST(deserialize_rejects_filled_level_in_tritmap) {
  // A published tritmap never contains a trit of 2 (cascades compact filled
  // levels before publishing); accepting one would let the next ingest
  // cascade write past a level's two slots.
  qc::Quancurrent<double> ck(small_options(64, 8));  // empty sketch
  auto blob = serialize_of(ck);
  // Empty image layout ends ... | tritmap u64 | tail_count u64 |.
  const std::uint64_t trit2_at_level1 = 0x8ULL;  // trit(1) == 2
  std::memcpy(blob.data() + blob.size() - 16, &trit2_at_level1,
              sizeof(trit2_at_level1));
  qc::serde::Status st = qc::serde::Status::ok;
  CHECK(qc::Quancurrent<double>::deserialize(blob, &st) == nullptr);
  CHECK(st == qc::serde::Status::bad_payload);
}

QC_TEST(sequential_deserialize_bounds_base_count_by_buffer) {
  // base_count passes the 2k sanity bound but exceeds the bytes present:
  // must reject via the buffer bound BEFORE any count-proportional resize.
  qc::QuantilesSketch<double> sk(64);
  for (int i = 0; i < 100; ++i) sk.update(static_cast<double>(i));
  auto blob = serialize_of(sk);
  const std::uint32_t max_k = qc::core::Options::kMaxK;
  const std::uint64_t big_base = 2ULL * max_k;  // <= 2k, >> remaining bytes
  std::memcpy(blob.data() + 12, &max_k, sizeof(max_k));
  std::memcpy(blob.data() + 64, &big_base, sizeof(big_base));
  qc::serde::Status st = qc::serde::Status::ok;
  CHECK(!qc::QuantilesSketch<double>::deserialize(blob, &st).has_value());
  CHECK(st == qc::serde::Status::short_buffer);
}

QC_TEST(deserialize_rejects_overflowing_tail_count) {
  // One updater, one node, exactly four full 2k batches: quiesce leaves the
  // tail empty, so the blob's final 8 bytes are tail_count = 0.
  qc::Options o = small_options(64, 8);
  o.topology = qc::numa::Topology::virtual_nodes(1, 1);
  qc::Quancurrent<double> ck(o);
  {
    auto u = ck.make_updater(0);
    for (int i = 0; i < 4 * 128; ++i) u.update(static_cast<double>(i));
  }
  ck.quiesce();
  auto blob = serialize_of(ck);

  // A tail_count crafted so count * sizeof(double) wraps to a small value
  // must still be rejected (not crash on a 2^61-element resize).
  const std::uint64_t overflowing = 0x2000000000000001ULL;
  std::memcpy(blob.data() + blob.size() - sizeof(overflowing), &overflowing,
              sizeof(overflowing));
  qc::serde::Status st = qc::serde::Status::ok;
  CHECK(qc::Quancurrent<double>::deserialize(blob, &st) == nullptr);
  CHECK(st == qc::serde::Status::short_buffer);
}

QC_TEST(deserialize_rejects_truncation_at_every_prefix_length) {
  qc::Quancurrent<double> ck(small_options(64, 8));
  for (int i = 0; i < 5'000; ++i) ck.update(static_cast<double>(i));
  ck.quiesce();
  const auto blob = serialize_of(ck);
  // Every strict prefix must fail (never crash, never succeed); step a prime
  // to keep the test fast while hitting unaligned cut points.
  for (std::size_t len = 0; len < blob.size(); len += 13) {
    qc::serde::Status st = qc::serde::Status::ok;
    CHECK(qc::Quancurrent<double>::deserialize(
              std::span<const std::byte>(blob.data(), len), &st) == nullptr);
    CHECK(st != qc::serde::Status::ok);
  }

  qc::QuantilesSketch<double> sk(64);
  for (int i = 0; i < 5'000; ++i) sk.update(static_cast<double>(i));
  const auto sblob = serialize_of(sk);
  for (std::size_t len = 0; len < sblob.size(); len += 13) {
    qc::serde::Status st = qc::serde::Status::ok;
    CHECK(!qc::QuantilesSketch<double>::deserialize(
               std::span<const std::byte>(sblob.data(), len), &st)
               .has_value());
    CHECK(st != qc::serde::Status::ok);
  }
}

// ----- framed container over v3 blobs (recovery/container.hpp) ---------------

QC_TEST(framed_container_rejects_manifest_shard_mismatch) {
  qc::Quancurrent<double> sk(small_options(64, 8));
  for (int i = 0; i < 2000; ++i) sk.update(static_cast<double>(i));
  sk.quiesce();
  const auto blob = qc::to_bytes(sk);

  // Manifest promises three shards; only two chunks follow.  Every chunk
  // passes its own CRC and the commit record is honest about what was
  // written, so only the manifest/shard cross-check can catch it.
  qc::recovery::ContainerWriter promise(1);
  promise.add_manifest(qc::recovery::SketchKind::sharded, 3, 2 * sk.size());
  promise.add_shard(0, blob);
  promise.add_shard(1, blob);
  std::string why;
  CHECK(qc::recovery::deserialize_sharded<double>(std::move(promise).finish(), 0,
                                                  &why) == nullptr);
  CHECK(why == "shard_chunk_mismatch");

  // Shard chunks must be sequential from zero — reordered or renumbered
  // chunks reject even though each chunk is individually intact.
  qc::recovery::ContainerWriter reorder(1);
  reorder.add_manifest(qc::recovery::SketchKind::sharded, 2, 2 * sk.size());
  reorder.add_shard(1, blob);
  reorder.add_shard(0, blob);
  why.clear();
  CHECK(qc::recovery::deserialize_sharded<double>(std::move(reorder).finish(), 0,
                                                  &why) == nullptr);
  CHECK(why == "shard_chunk_mismatch");
}

QC_TEST(framed_container_reports_failing_shard_decode) {
  // A corrupt v3 blob INSIDE an intact frame: the container CRC is computed
  // over the already-rotten bytes so the frame verifies, and the failure
  // surfaces from the per-shard engine decode with the shard named.
  qc::Quancurrent<double> sk(small_options(64, 8));
  for (int i = 0; i < 500; ++i) sk.update(static_cast<double>(i));
  sk.quiesce();
  auto blob = qc::to_bytes(sk);
  blob[0] ^= std::byte{0x01};  // break the v3 magic

  qc::recovery::ContainerWriter w(1);
  w.add_manifest(qc::recovery::SketchKind::sharded, 1, sk.size());
  w.add_shard(0, blob);
  std::string why;
  CHECK(qc::recovery::deserialize_sharded<double>(std::move(w).finish(), 0,
                                                  &why) == nullptr);
  CHECK(why == "shard 0: bad_magic");
}

QC_TEST_MAIN()
