// Tests for the parallel ingest pipeline: pre-sorted local buffers, the
// chunk-merge Gather&Sort primitives, and the combining installer.
#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "bench_util/workload.hpp"
#include "core/quancurrent.hpp"
#include "core/run_merge.hpp"
#include "qc_test.hpp"
#include "stream/exact_quantiles.hpp"
#include "stream/generators.hpp"

using qc::stream::Distribution;

namespace {

qc::core::Options pipeline_options(std::uint32_t k, std::uint32_t b) {
  qc::core::Options o;
  o.k = k;
  o.b = b;
  o.collect_stats = true;
  o.topology = qc::numa::Topology::virtual_nodes(2, 2);
  return o;
}

// Random data whose chunk-length runs are each sorted (the chunk-merge
// precondition), plus the fully sorted expectation.
struct ChunkedInput {
  std::vector<double> chunked;
  std::vector<double> expected;
};

ChunkedInput make_chunked(std::size_t n, std::size_t chunk, std::uint64_t seed) {
  qc::Xoshiro256 rng(seed);
  ChunkedInput in;
  in.chunked.resize(n);
  for (auto& v : in.chunked) {
    v = (rng.next_double() - 0.5) * 1e4;
    if (rng() % 8 == 0) v = static_cast<double>(static_cast<int>(v) % 8);  // dups
  }
  in.expected = in.chunked;
  std::sort(in.expected.begin(), in.expected.end());
  const std::size_t c = chunk == 0 ? n : chunk;
  for (std::size_t off = 0; off < n; off += c) {
    std::sort(in.chunked.begin() + static_cast<std::ptrdiff_t>(off),
              in.chunked.begin() + static_cast<std::ptrdiff_t>(std::min(off + c, n)));
  }
  return in;
}

}  // namespace

// Property test: merging pre-sorted chunks produces exactly the value
// sequence a full sort would, for both the production ChunkMerger and the
// generic loser-tree raw merge, across sizes, chunk lengths (dividing and
// not), and the degenerate single-chunk / chunk-of-one cases.
QC_TEST(chunk_merge_equals_full_sort) {
  qc::core::ChunkMerger<double> chunk_merger;
  qc::core::RunMerger<double> tree_merger;
  std::uint64_t seed = 1;
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{7}, std::size_t{64}, std::size_t{1000},
        std::size_t{4096}, std::size_t{8192}}) {
    for (const std::size_t chunk :
         {std::size_t{1}, std::size_t{3}, std::size_t{16}, std::size_t{100},
          std::size_t{256}, n, 2 * n}) {
      const auto in = make_chunked(n, chunk, seed++);
      std::vector<double> out(n, -1.0);
      chunk_merger.merge(std::span<const double>(in.chunked), chunk,
                         std::span<double>(out));
      CHECK(out == in.expected);

      std::vector<qc::core::RunRef<double>> runs;
      qc::core::chunk_runs(std::span<const double>(in.chunked), chunk, runs);
      std::vector<double> tree_out(n, -1.0);
      const std::size_t written = tree_merger.merge_items(
          std::span<const qc::core::RunRef<double>>(runs),
          std::span<double>(tree_out));
      CHECK_EQ(written, n);
      CHECK(tree_out == in.expected);
    }
  }
}

// The sorting networks must be true permutations of the input bit patterns:
// IEEE min/max-style compare-exchanges duplicate one of {+0.0, -0.0} (both
// compare equal, so only bit inspection catches it).  small_sort runs on
// every local buffer, so a lossy exchange would silently corrupt the stream.
QC_TEST(small_sort_preserves_signed_zero_bits) {
  for (const std::size_t n : {std::size_t{2}, std::size_t{4}, std::size_t{8},
                              std::size_t{16}}) {
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      std::vector<double> v(n);
      for (std::size_t i = 0; i < n; ++i) {
        v[i] = (mask >> i) & 1 ? -0.0 : +0.0;
      }
      qc::core::small_sort(std::span<double>(v));
      // Zeros of either sign compare equal, so any output order is sorted —
      // but every input bit pattern must survive (permutation property).
      std::size_t neg = 0;
      for (const double d : v) neg += std::signbit(d) ? 1 : 0;
      CHECK_EQ(neg, static_cast<std::size_t>(std::popcount(mask)));
    }
  }
}

// An explicitly configured install queue must still be able to hold one full
// drain group (normalize's documented guarantee).
QC_TEST(normalize_keeps_install_queue_at_least_combine_depth) {
  qc::core::Options o;
  o.install_combine = 64;
  o.install_queue = 16;
  o.normalize();
  CHECK(o.install_queue >= o.install_combine);
  CHECK_EQ(o.install_queue & (o.install_queue - 1), 0u);  // power of two
}

// The combining installer must publish exactly the state serial installs
// would: same tritmap word, same levels (hence bit-identical summaries),
// under a deterministic single-threaded schedule that parks several batches
// in the install queue before any drain runs.
QC_TEST(combining_installs_match_serial_installs) {
  const std::uint32_t k = 64;
  const std::size_t cap = 2 * k;
  // Pre-sorted batches with distinct contents.
  std::vector<std::vector<double>> batches;
  for (int i = 0; i < 7; ++i) {
    auto b = qc::stream::make_stream(Distribution::kUniform, cap,
                                     1000 + static_cast<std::uint64_t>(i));
    std::sort(b.begin(), b.end());
    batches.push_back(std::move(b));
  }

  auto opts_with_combine = [&](std::uint32_t combine) {
    auto o = pipeline_options(k, 8);
    o.install_combine = combine;
    o.install_queue = 16;
    return o;
  };
  qc::core::Quancurrent<double> serial(opts_with_combine(1));
  qc::core::Quancurrent<double> combined(opts_with_combine(8));

  for (auto* sk : {&serial, &combined}) {
    // One published batch first so later combined cascades must refill a
    // level the published tritmap marks occupied (the seqlock path).
    sk->enqueue_batch(std::span<const double>(batches[0]));
    sk->drain_installs();
    // Park the remaining six batches, then drain: groups of 1 vs one group
    // of 6.  Both consume the parity coins in the same (FIFO) order.
    for (int i = 1; i < 7; ++i) {
      sk->enqueue_batch(std::span<const double>(batches[static_cast<std::size_t>(i)]));
    }
    sk->drain_installs();
  }

  CHECK_EQ(serial.size(), 7 * cap);
  CHECK_EQ(combined.size(), 7 * cap);
  CHECK_EQ(serial.tritmap().raw(), combined.tritmap().raw());
  CHECK_EQ(serial.retained(), combined.retained());

  auto qs = serial.make_querier();
  auto qc_ = combined.make_querier();
  qs.refresh_full();
  qc_.refresh_full();
  CHECK(qs.summary() == qc_.summary());  // bit-identical levels content

  const auto ss = serial.stats();
  const auto cs = combined.stats();
  CHECK_EQ(ss.batches, 7u);
  CHECK_EQ(cs.batches, 7u);
  CHECK_EQ(ss.installs, 7u);
  CHECK_EQ(ss.combined_installs, 0u);
  CHECK_EQ(cs.installs, 2u);
  CHECK_EQ(cs.combined_installs, 1u);
  CHECK_EQ(cs.max_combine, 6u);
}

// quiesce() must install batches still parked in the install queue before
// counting gather residue and compacting the tail.
QC_TEST(quiesce_drains_pending_install_queue) {
  const std::uint32_t k = 64;
  const std::size_t cap = 2 * k;
  auto o = pipeline_options(k, 8);
  o.install_queue = 16;
  qc::core::Quancurrent<double> sk(o);

  auto batch = qc::stream::make_stream(Distribution::kUniform, cap, 5);
  std::sort(batch.begin(), batch.end());
  sk.enqueue_batch(std::span<const double>(batch));
  sk.enqueue_batch(std::span<const double>(batch));
  // Partial updater residue rides along through the tail.
  {
    auto updater = sk.make_updater(0);
    for (int i = 0; i < 5; ++i) updater.update(0.5);
  }
  CHECK_EQ(sk.size(), 5u);  // queued batches invisible until installed
  sk.quiesce();
  CHECK_EQ(sk.size(), 2 * cap + 5);
  auto q = sk.make_querier();
  CHECK_EQ(q.size(), 2 * cap + 5);
  CHECK_EQ(q.rank(1e18), 2 * cap + 5);
}

// The pre-sort pipeline and the full-sort fallback must produce identical
// sketch state on the same single-threaded input (same batch order, same
// parity coins, same sorted batch values).
QC_TEST(presort_and_fullsort_pipelines_are_bit_identical) {
  const std::uint64_t n = 50'000;
  auto data = qc::stream::make_stream(Distribution::kUniform, n, 29);
  auto run = [&](bool presort) {
    auto o = pipeline_options(128, 16);
    o.presort_chunks = presort;
    auto sk = std::make_unique<qc::core::Quancurrent<double>>(o);
    {
      auto u = sk->make_updater(0);
      u.update(std::span<const double>(data));
    }
    sk->quiesce();
    return sk;
  };
  auto with = run(true);
  auto without = run(false);
  CHECK_EQ(with->size(), n);
  CHECK_EQ(without->size(), n);
  CHECK_EQ(with->tritmap().raw(), without->tritmap().raw());
  auto qw = with->make_querier();
  auto qo = without->make_querier();
  CHECK(qw.summary() == qo.summary());
}

// Bulk update(span) must be byte-for-byte equivalent to element-wise
// update(v), including partial local buffers across odd split points.
QC_TEST(bulk_update_matches_scalar_update) {
  const std::uint64_t n = 30'000;
  auto data = qc::stream::make_stream(Distribution::kUniform, n, 31);
  auto o = pipeline_options(64, 8);
  qc::core::Quancurrent<double> scalar_sk(o);
  qc::core::Quancurrent<double> bulk_sk(o);
  {
    auto u = scalar_sk.make_updater(0);
    for (const double v : data) u.update(v);
  }
  {
    auto u = bulk_sk.make_updater(0);
    // Feed in ragged pieces so chunks straddle span boundaries.
    std::size_t off = 0;
    std::size_t piece = 1;
    while (off < n) {
      const std::size_t len = std::min<std::size_t>(piece, n - off);
      u.update(std::span<const double>(data.data() + off, len));
      off += len;
      piece = piece * 3 + 1;
    }
  }
  scalar_sk.quiesce();
  bulk_sk.quiesce();
  CHECK_EQ(scalar_sk.size(), n);
  CHECK_EQ(bulk_sk.size(), n);
  CHECK_EQ(scalar_sk.tritmap().raw(), bulk_sk.tritmap().raw());
  auto qs = scalar_sk.make_querier();
  auto qb = bulk_sk.make_querier();
  CHECK(qs.summary() == qb.summary());
}

// Contention counters must be populated (and stay zero when the workload
// cannot produce the event).
QC_TEST(stats_expose_ingest_contention_counters) {
  const std::uint64_t n = 100'000;
  auto data = qc::stream::make_stream(Distribution::kUniform, n, 37);
  qc::core::Quancurrent<double> sk(pipeline_options(64, 8));
  qc::bench::ingest_quancurrent(sk, data, 4, /*quiesce=*/true);
  const auto st = sk.stats();
  CHECK(st.batches > 0u);
  CHECK(st.installs > 0u);
  CHECK(st.installs <= st.batches);
  CHECK(st.max_combine >= 1u);
  CHECK(st.max_combine <= sk.options().install_combine);
  CHECK(st.combined_installs <= st.installs);
  // Weight conservation across the combining installer.
  CHECK_EQ(sk.size(), n);
}

// Mixed updaters + queriers hammering the combining installer; run under
// whatever sanitizer the build config selects (ASan/UBSan or TSan via
// -DQC_SANITIZE=thread).  Queriers must only ever observe whole installed
// batches (size % 2k == 0 while the tail is untouched) and sorted summaries.
QC_TEST(mixed_updaters_and_queriers_stress) {
  // Each updater's slice (n / threads) must be a whole number of b-buffers so
  // the tail stays empty until quiesce and the size % 2k invariant holds.
  const std::uint64_t n = 160'000;
  const std::uint32_t k = 64;
  const std::uint32_t upd_threads = 4;
  static_assert((160'000 / 4) % 8 == 0);
  auto data = qc::stream::make_stream(Distribution::kUniform, n, 41);
  auto o = pipeline_options(k, 8);
  o.install_combine = 4;
  qc::core::Quancurrent<double> sk(o);

  std::atomic<bool> stop{false};
  std::vector<std::thread> queriers;
  for (int t = 0; t < 2; ++t) {
    queriers.emplace_back([&] {
      auto q = sk.make_querier();
      while (!stop.load(std::memory_order_acquire)) {
        q.refresh();
        const std::uint64_t size = q.size();
        if (q.holes() == 0) {
          CHECK_EQ(size % (2 * k), 0u);
        }
        if (size != 0) {
          const double med = q.quantile(0.5);
          CHECK(med >= 0.0 && med < 1.0);
          const auto items = q.summary().items();
          CHECK(std::is_sorted(items.begin(), items.end()));
        }
      }
    });
  }
  qc::bench::ingest_quancurrent(sk, data, upd_threads);
  stop.store(true, std::memory_order_release);
  for (auto& t : queriers) t.join();

  sk.quiesce();
  auto q = sk.make_querier();
  CHECK_EQ(q.size(), n);
  CHECK_EQ(q.size(), sk.size());
  CHECK_EQ(q.rank(1e18), n);
}

QC_TEST_MAIN()
