// Elastic levels + interval-based reclamation: queriers stay wait-free while
// updaters grow/republish level blocks, ibr_stats() counters are monotone and
// internally consistent, quiesce() reclaims every unreferenced block, and the
// serialize_propagation ablation arm is bit-equivalent to the default engine.
#include <atomic>
#include <cstddef>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util/workload.hpp"
#include "core/sharded.hpp"
#include "qc.hpp"
#include "qc_test.hpp"
#include "stream/generators.hpp"

using qc::stream::Distribution;

namespace {

qc::Options small_options(std::uint32_t k, std::uint32_t b) {
  qc::Options o;
  o.k = k;
  o.b = b;
  o.topology = qc::numa::Topology::virtual_nodes(2, 2);
  return o;
}

// Number of level blocks the published tritmap references: each non-empty
// run at each level is exactly one live block once quiesce() has trimmed.
std::uint64_t published_runs(const qc::Quancurrent<double>& sk) {
  const auto tm = sk.tritmap();
  std::uint64_t runs = 0;
  for (std::uint32_t level = 0; level < qc::Tritmap::kMaxLevels; ++level) {
    runs += tm.trit(level);
  }
  return runs;
}

}  // namespace

QC_TEST(queriers_survive_concurrent_level_growth) {
  // Small k + aggressive reclamation cadence maximizes block churn: every
  // cascade hop allocates a fresh block and retires the displaced one while
  // queriers hold epoch-validated pointer snapshots.  TSan is the real judge
  // here; the functional checks prove snapshots stay tritmap-consistent.
  qc::Options o = small_options(64, 8);
  o.ibr_epoch_freq = 1;
  o.ibr_recl_freq = 1;
  qc::Quancurrent<double> sk(o);

  constexpr std::uint32_t kUpdaters = 4;
  constexpr std::uint32_t kPerThread = 20'000;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  threads.reserve(kUpdaters + 2);
  for (std::uint32_t t = 0; t < kUpdaters; ++t) {
    threads.emplace_back([&, t] {
      auto u = sk.make_updater(t);
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        u.update(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (std::uint32_t q = 0; q < 2; ++q) {
    threads.emplace_back([&] {
      auto querier = sk.make_querier();
      std::uint64_t last_size = 0;
      while (!done.load(std::memory_order_acquire)) {
        querier.refresh();
        const std::uint64_t size = querier.size();
        CHECK(size >= last_size);  // installed weight only grows
        last_size = size;
        if (size != 0) {
          const double mid = querier.quantile(0.5);
          CHECK(mid >= 0.0);
          CHECK(mid < static_cast<double>(kUpdaters) * kPerThread);
        }
      }
    });
  }
  for (std::uint32_t t = 0; t < kUpdaters; ++t) threads[t].join();
  done.store(true, std::memory_order_release);
  for (std::uint32_t q = 0; q < 2; ++q) threads[kUpdaters + q].join();

  sk.quiesce();
  auto querier = sk.make_querier();
  CHECK_EQ(querier.size(), std::uint64_t{kUpdaters} * kPerThread);
}

QC_TEST(ibr_stats_are_monotone_and_consistent) {
  qc::Options o = small_options(64, 8);
  o.ibr_epoch_freq = 1;
  o.ibr_recl_freq = 1;
  qc::Quancurrent<double> sk(o);

  qc::IbrStats prev;
  for (int chunk = 0; chunk < 50; ++chunk) {
    for (int i = 0; i < 1'000; ++i) {
      sk.update(static_cast<double>(chunk * 1'000 + i));
    }
    const qc::IbrStats s = sk.ibr_stats();
    // Every counter is monotone...
    CHECK(s.epochs >= prev.epochs);
    CHECK(s.allocated >= prev.allocated);
    CHECK(s.reused >= prev.reused);
    CHECK(s.retired >= prev.retired);
    CHECK(s.reclaimed >= prev.reclaimed);
    CHECK(s.freed >= prev.freed);
    CHECK(s.scans >= prev.scans);
    CHECK(s.peak_unreclaimed >= prev.peak_unreclaimed);
    // ...and the flows balance: blocks leave the retire list only via a
    // scan, and nothing is freed that was never allocated.
    CHECK(s.reclaimed <= s.retired);
    CHECK(s.freed <= s.allocated);
    CHECK(s.live_blocks() <= s.allocated);
    prev = s;
  }
  CHECK(prev.allocated > 0);
  CHECK(prev.epochs > 0);
  CHECK(prev.scans > 0);
}

QC_TEST(quiesce_reclaims_every_unreferenced_block) {
  // After quiesce() with no readers, exactly the tritmap-referenced runs may
  // remain live: consumed-but-published stale blocks are trimmed, the retire
  // list is drained (idle handles announce no epoch), and the reuse pool is
  // flushed back to the allocator.
  qc::Options o = small_options(64, 8);
  o.ibr_epoch_freq = 4;
  o.ibr_recl_freq = 1024;  // lazy cadence: quiesce must still finish the job
  qc::Quancurrent<double> sk(o);
  const auto data = qc::stream::make_stream(Distribution::kUniform, 60'000, 11);
  qc::bench::ingest_quancurrent(sk, data, 4, /*quiesce=*/true);

  const qc::IbrStats s = sk.ibr_stats();
  CHECK(s.allocated > 0);
  CHECK(s.reclaimed > 0);
  CHECK_EQ(s.reclaimed, s.retired);  // retire list fully drained
  CHECK_EQ(s.live_blocks(), published_runs(sk));

  // Idempotent: a second quiesce retires nothing further.
  sk.quiesce();
  const qc::IbrStats s2 = sk.ibr_stats();
  CHECK_EQ(s2.live_blocks(), published_runs(sk));
  CHECK_EQ(s2.retired, s.retired);
}

QC_TEST(serialize_propagation_is_bit_equivalent) {
  // The ablation control arm only adds a lock around owner duties — with one
  // thread the two engines must walk identical states.  The serialized
  // images may differ ONLY in the serialize_propagation options byte
  // (offset 34: header 12 + k/b/rho 12 + presort/stats 2 + combine/queue 8).
  qc::Options base = small_options(64, 8);
  base.seed = 99;
  qc::Options serial = base;
  serial.serialize_propagation = true;
  qc::Quancurrent<double> sk_a(base);
  qc::Quancurrent<double> sk_b(serial);
  const auto data = qc::stream::make_stream(Distribution::kNormal, 40'000, 7);
  for (double v : data) {
    sk_a.update(v);
    sk_b.update(v);
  }
  sk_a.quiesce();
  sk_b.quiesce();

  std::vector<std::byte> blob_a(sk_a.serialized_size());
  std::vector<std::byte> blob_b(sk_b.serialized_size());
  CHECK_EQ(sk_a.serialize(blob_a), blob_a.size());
  CHECK_EQ(sk_b.serialize(blob_b), blob_b.size());
  CHECK_EQ(blob_a.size(), blob_b.size());
  std::size_t diffs = 0;
  std::size_t diff_at = 0;
  for (std::size_t i = 0; i < blob_a.size(); ++i) {
    if (blob_a[i] != blob_b[i]) {
      ++diffs;
      diff_at = i;
    }
  }
  CHECK_EQ(diffs, std::size_t{1});
  CHECK_EQ(diff_at, std::size_t{34});
}

QC_TEST(quiesce_tolerates_concurrent_merge_into) {
  // quiesce()'s precondition bans concurrent update(), not concurrent
  // merge_into(): a merging peer may enqueue (and self-drain) install
  // batches at any moment, so the historical head==tail assert after the
  // drain was spuriously violable.  Hammer the two against each other.
  qc::Quancurrent<double> src(small_options(64, 8));
  for (int i = 0; i < 10'000; ++i) src.update(static_cast<double>(i));
  src.quiesce();
  const std::uint64_t src_size = src.size();
  CHECK(src_size > 0);

  qc::Quancurrent<double> target(small_options(64, 8));
  constexpr int kMerges = 50;
  std::thread merger([&] {
    for (int m = 0; m < kMerges; ++m) CHECK(src.merge_into(target));
  });
  for (int i = 0; i < 200; ++i) target.quiesce();
  merger.join();

  target.quiesce();
  CHECK_EQ(target.size(), src_size * kMerges);
  const qc::IbrStats s = target.ibr_stats();
  CHECK_EQ(s.live_blocks(), published_runs(target));
}

QC_TEST(sharded_ibr_stats_aggregate_over_shards) {
  qc::core::ShardedQuancurrent<double> sk(2, small_options(64, 8));
  {
    auto u0 = sk.make_updater(0);
    auto u1 = sk.make_updater(1);
    for (int i = 0; i < 30'000; ++i) {
      u0.update(static_cast<double>(i));
      u1.update(static_cast<double>(-i));
    }
  }
  sk.quiesce();
  const qc::IbrStats total = sk.ibr_stats();
  const qc::IbrStats s0 = sk.shard(0).ibr_stats();
  const qc::IbrStats s1 = sk.shard(1).ibr_stats();
  CHECK(s0.allocated > 0);
  CHECK(s1.allocated > 0);
  CHECK_EQ(total.allocated, s0.allocated + s1.allocated);
  CHECK_EQ(total.retired, s0.retired + s1.retired);
  CHECK_EQ(total.freed, s0.freed + s1.freed);
  CHECK_EQ(total.peak_unreclaimed,
           std::max(s0.peak_unreclaimed, s1.peak_unreclaimed));
}

QC_TEST_MAIN()
