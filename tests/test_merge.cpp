// merge_into: weight conservation, merge-vs-single-stream error bounds,
// order independence (associativity within the rank-error envelope), the
// leveled install path it rides on, and wait-freedom of concurrent queriers
// while a merge is in flight.
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util/workload.hpp"
#include "qc.hpp"
#include "qc_test.hpp"
#include "stream/exact_quantiles.hpp"
#include "stream/generators.hpp"

using qc::stream::Distribution;

namespace {

qc::Options small_options(std::uint32_t k, std::uint32_t b) {
  qc::Options o;
  o.k = k;
  o.b = b;
  o.collect_stats = true;
  o.topology = qc::numa::Topology::virtual_nodes(2, 2);
  return o;
}

// Max rank error of `answer(phi)` against the exact oracle over a phi grid.
template <typename AnswerFn>
double max_rank_error(const qc::stream::ExactQuantiles<double>& exact, AnswerFn&& answer) {
  double max_err = 0.0;
  for (int i = 1; i < 50; ++i) {
    const double phi = static_cast<double>(i) / 50.0;
    max_err = std::max(max_err, exact.rank_error(answer(phi), phi));
  }
  return max_err;
}

}  // namespace

QC_TEST(sequential_merge_conserves_weight_and_accuracy) {
  const std::uint32_t k = 256;
  const std::uint64_t n = 100'000;
  auto a_data = qc::stream::make_stream(Distribution::kUniform, n, 11);
  auto b_data = qc::stream::make_stream(Distribution::kNormal, n, 12);

  qc::QuantilesSketch<double> a(k), b(k);
  for (double v : a_data) a.update(v);
  for (double v : b_data) b.update(v);

  qc::QuantilesSketch<double> merged(k);
  CHECK(a.merge_into(merged));
  CHECK(b.merge_into(merged));
  CHECK_EQ(merged.size(), 2 * n);

  std::vector<double> all = a_data;
  all.insert(all.end(), b_data.begin(), b_data.end());
  qc::stream::ExactQuantiles<double> exact(std::move(all));
  // Merged error stays within the same envelope a single sketch fed both
  // streams satisfies (12/k: the single-stream test bound with headroom).
  const double err =
      max_rank_error(exact, [&](double phi) { return merged.quantile(phi); });
  CHECK(err <= 12.0 / static_cast<double>(k));
}

QC_TEST(sequential_merge_rejects_mismatched_k_and_self) {
  qc::QuantilesSketch<double> a(128), b(64);
  a.update(1.0);
  CHECK(!a.merge_into(b));
  CHECK(!a.merge_into(a));
  CHECK_EQ(b.size(), 0u);
}

QC_TEST(sequential_merge_is_order_independent_within_bound) {
  const std::uint32_t k = 256;
  const std::uint64_t n = 60'000;
  std::vector<std::vector<double>> streams;
  std::vector<double> all;
  for (std::uint64_t s = 0; s < 3; ++s) {
    streams.push_back(qc::stream::make_stream(
        s % 2 == 0 ? Distribution::kUniform : Distribution::kNormal, n, 20 + s));
    all.insert(all.end(), streams.back().begin(), streams.back().end());
  }
  qc::stream::ExactQuantiles<double> exact(std::move(all));

  // (A into (B into C-target)) vs (C into (B into A-target)): different
  // fold orders agree with the oracle — and hence with each other — within
  // the rank-error envelope.
  const auto fold = [&](std::initializer_list<int> order) {
    qc::QuantilesSketch<double> target(k);
    for (int idx : order) {
      qc::QuantilesSketch<double> part(k, /*seed=*/900 + idx);
      for (double v : streams[static_cast<std::size_t>(idx)]) part.update(v);
      CHECK(part.merge_into(target));
    }
    return max_rank_error(exact, [&](double phi) { return target.quantile(phi); });
  };
  CHECK(fold({0, 1, 2}) <= 12.0 / static_cast<double>(k));
  CHECK(fold({2, 1, 0}) <= 12.0 / static_cast<double>(k));
  CHECK(fold({1, 2, 0}) <= 12.0 / static_cast<double>(k));
}

QC_TEST(concurrent_merge_conserves_weight_and_accuracy) {
  const std::uint32_t k = 256;
  const std::uint64_t n = 100'000;
  auto a_data = qc::stream::make_stream(Distribution::kUniform, n, 31);
  auto b_data = qc::stream::make_stream(Distribution::kNormal, n, 32);

  qc::Quancurrent<double> a(small_options(k, 8));
  qc::Quancurrent<double> b(small_options(k, 8));
  qc::bench::ingest_quancurrent(a, a_data, 2, /*quiesce=*/true);
  qc::bench::ingest_quancurrent(b, b_data, 2, /*quiesce=*/true);
  CHECK_EQ(a.size(), n);
  CHECK_EQ(b.size(), n);

  // Fold b into a: a now answers for the union.
  CHECK(b.merge_into(a));
  CHECK_EQ(a.size(), 2 * n);
  CHECK_EQ(b.size(), n);  // source unchanged

  auto q = a.make_querier();
  CHECK_EQ(q.size(), 2 * n);
  std::vector<double> all = a_data;
  all.insert(all.end(), b_data.begin(), b_data.end());
  qc::stream::ExactQuantiles<double> exact(std::move(all));
  const double err = max_rank_error(exact, [&](double phi) { return q.quantile(phi); });
  CHECK(err <= 12.0 / static_cast<double>(k));
}

QC_TEST(concurrent_merge_rejects_mismatched_k_and_self) {
  qc::Quancurrent<double> a(small_options(128, 8));
  qc::Quancurrent<double> b(small_options(64, 8));
  a.update(1.0);
  CHECK(!a.merge_into(b));
  CHECK(!a.merge_into(a));
  CHECK_EQ(b.size(), 0u);
}

QC_TEST(concurrent_merge_is_order_independent_within_bound) {
  const std::uint32_t k = 256;
  const std::uint64_t n = 50'000;
  std::vector<std::vector<double>> streams;
  std::vector<double> all;
  for (std::uint64_t s = 0; s < 3; ++s) {
    streams.push_back(qc::stream::make_stream(Distribution::kUniform, n, 40 + s));
    all.insert(all.end(), streams.back().begin(), streams.back().end());
  }
  qc::stream::ExactQuantiles<double> exact(std::move(all));

  const auto fold = [&](std::initializer_list<int> order) {
    qc::Quancurrent<double> target(small_options(k, 8));
    for (int idx : order) {
      qc::Quancurrent<double> part(small_options(k, 8));
      qc::bench::ingest_quancurrent(part, streams[static_cast<std::size_t>(idx)], 2,
                                    /*quiesce=*/true);
      CHECK(part.merge_into(target));
    }
    CHECK_EQ(target.size(), 3 * n);
    auto q = target.make_querier();
    return max_rank_error(exact, [&](double phi) { return q.quantile(phi); });
  };
  CHECK(fold({0, 1, 2}) <= 12.0 / static_cast<double>(k));
  CHECK(fold({2, 0, 1}) <= 12.0 / static_cast<double>(k));
}

QC_TEST(install_run_lands_at_requested_level) {
  const std::uint32_t k = 64;
  qc::Quancurrent<double> sk(small_options(k, 8));
  std::vector<double> run(k);
  for (std::uint32_t i = 0; i < k; ++i) run[i] = static_cast<double>(i);

  sk.install_run(3, run);  // k items of weight 8
  CHECK_EQ(sk.size(), static_cast<std::uint64_t>(k) << 3);
  CHECK_EQ(sk.tritmap().trit(3), 1u);

  sk.install_run(3, run);  // fills level 3 -> compacts into level 4
  CHECK_EQ(sk.size(), static_cast<std::uint64_t>(k) << 4);
  CHECK_EQ(sk.tritmap().trit(3), 0u);
  CHECK_EQ(sk.tritmap().trit(4), 1u);

  auto q = sk.make_querier();
  CHECK_EQ(q.size(), sk.size());
  CHECK_NEAR(q.quantile(1.0), static_cast<double>(k - 1), 1e-12);
}

QC_TEST(queriers_stay_live_during_concurrent_merge) {
  const std::uint32_t k = 128;
  const std::uint64_t n = 50'000;
  auto data = qc::stream::make_stream(Distribution::kUniform, n, 55);
  qc::Quancurrent<double> target(small_options(k, 8));
  std::vector<qc::Quancurrent<double>*> sources;
  std::vector<std::unique_ptr<qc::Quancurrent<double>>> owned;
  for (int s = 0; s < 4; ++s) {
    owned.push_back(std::make_unique<qc::Quancurrent<double>>(small_options(k, 8)));
    qc::bench::ingest_quancurrent(*owned.back(), data, 2, /*quiesce=*/true);
    sources.push_back(owned.back().get());
  }

  // Queriers refresh continuously while merges replay ladders into target;
  // every observed size must be a consistent point-in-time weight (never
  // past the final total; a rare hole-accepted snapshot may undercount but
  // never overcount).
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> violations{0};
  std::thread reader([&] {
    auto q = target.make_querier();
    while (!done.load(std::memory_order_acquire)) {
      q.refresh();
      if (q.size() > 4 * n) violations.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (auto* src : sources) CHECK(src->merge_into(target));
  done.store(true, std::memory_order_release);
  reader.join();

  CHECK_EQ(violations.load(std::memory_order_relaxed), 0u);  // reader joined
  CHECK_EQ(target.size(), 4 * n);
  auto q = target.make_querier();
  CHECK_EQ(q.size(), 4 * n);
}

QC_TEST_MAIN()
