#include <atomic>

#include "atomics/tritmap.hpp"
#include "qc_test.hpp"

using qc::Tritmap;

QC_TEST(empty_tritmap) {
  const Tritmap t;
  CHECK_EQ(t.raw(), 0u);
  CHECK_EQ(t.stream_size(4096), 0u);
  CHECK_EQ(t.num_levels(), 0u);
  for (std::uint32_t level = 0; level < Tritmap::kMaxLevels; ++level) {
    CHECK_EQ(t.trit(level), 0u);
  }
}

QC_TEST(with_trit_round_trips) {
  Tritmap t;
  for (std::uint32_t level = 0; level < 20; ++level) {
    t = t.with_trit(level, 1 + level % 2);
  }
  for (std::uint32_t level = 0; level < 20; ++level) {
    CHECK_EQ(t.trit(level), 1 + level % 2);
  }
  CHECK_EQ(t.num_levels(), 20u);
  t = t.with_trit(5, 0);
  CHECK_EQ(t.trit(5), 0u);
  CHECK_EQ(t.trit(4), 1u);  // neighbours untouched
  CHECK_EQ(t.trit(6), 1u);
}

QC_TEST(stream_size_weights_levels_by_two_to_the_i) {
  const std::uint64_t k = 256;
  Tritmap t;
  t = t.with_trit(1, 1);  // k * 2
  t = t.with_trit(3, 2);  // 2 * k * 8
  CHECK_EQ(t.stream_size(k), k * 2 + 2 * k * 8);
}

QC_TEST(batch_update_adds_two_level_zero_arrays) {
  const Tritmap t;
  const Tritmap u = t.after_batch_update();
  CHECK_EQ(u.trit(0), 2u);
  CHECK_EQ(u.stream_size(1024), 2 * 1024u);
}

QC_TEST(propagation_preserves_stream_size) {
  const std::uint64_t k = 512;
  Tritmap t = Tritmap().after_batch_update();  // level 0: two arrays
  const std::uint64_t before = t.stream_size(k);
  t = t.after_install_propagation(0);
  CHECK_EQ(t.trit(0), 0u);
  CHECK_EQ(t.trit(1), 1u);
  CHECK_EQ(t.stream_size(k), before);

  // Cascade: fill level 1 to two arrays, propagate again.
  t = t.after_batch_update().after_install_propagation(0);
  CHECK_EQ(t.trit(1), 2u);
  const std::uint64_t mid = t.stream_size(k);
  t = t.after_install_propagation(1);
  CHECK_EQ(t.trit(1), 0u);
  CHECK_EQ(t.trit(2), 1u);
  CHECK_EQ(t.stream_size(k), mid);
}

QC_TEST(full_ingest_transition_sequence) {
  // Simulate installing 8 batches of 2k: the occupancy must walk like a
  // binary counter and the size must always equal batches * 2k.
  const std::uint64_t k = 128;
  Tritmap t;
  for (std::uint64_t batch = 1; batch <= 8; ++batch) {
    t = t.after_batch_update();
    for (std::uint32_t level = 0; t.trit(level) == 2; ++level) {
      t = t.after_install_propagation(level);
    }
    CHECK_EQ(t.stream_size(k), batch * 2 * k);
    CHECK_EQ(t.trit(0), 0u);  // level 0 always drains
  }
  // 8 batches = 16k total = one array at level 4 (16 * k * 1).
  CHECK_EQ(t.trit(4), 1u);
  CHECK_EQ(t.num_levels(), 5u);
}

QC_TEST(atomic_tritmap_is_lock_free) {
  std::atomic<Tritmap> tm{Tritmap(0)};
  CHECK(tm.is_lock_free());
  Tritmap expected = Tritmap(0);
  // Single-threaded probe of lock-freedom: no ordering needed, relaxed.
  CHECK(tm.compare_exchange_strong(expected, Tritmap(0).after_batch_update(),
                                   std::memory_order_relaxed,
                                   std::memory_order_relaxed));
  CHECK_EQ(tm.load(std::memory_order_relaxed).trit(0), 2u);
}

QC_TEST_MAIN()
