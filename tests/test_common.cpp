#include <cstdlib>

#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "qc_test.hpp"

QC_TEST(env_get_u64_parses_and_falls_back) {
  ::setenv("QC_TEST_U64", "1234", 1);
  CHECK_EQ(qc::env::get_u64("QC_TEST_U64", 7), 1234u);
  ::setenv("QC_TEST_U64", "not a number", 1);
  CHECK_EQ(qc::env::get_u64("QC_TEST_U64", 7), 7u);
  ::unsetenv("QC_TEST_U64");
  CHECK_EQ(qc::env::get_u64("QC_TEST_U64", 7), 7u);
}

QC_TEST(env_bench_scale_presets_and_overrides) {
  ::setenv("QC_SCALE", "smoke", 1);
  ::unsetenv("QC_KEYS");
  ::unsetenv("QC_RUNS");
  ::unsetenv("QC_MAX_THREADS");
  auto s = qc::env::bench_scale();
  CHECK_EQ(s.keys, 200'000u);
  CHECK_EQ(s.runs, 2u);
  CHECK_EQ(s.max_threads, 4u);
  ::setenv("QC_KEYS", "555", 1);
  s = qc::env::bench_scale();
  CHECK_EQ(s.keys, 555u);
  ::unsetenv("QC_KEYS");
  ::unsetenv("QC_SCALE");
}

QC_TEST(rng_is_deterministic_and_in_range) {
  qc::Xoshiro256 a(42), b(42), c(43);
  CHECK_EQ(a(), b());
  CHECK(a() != c());  // overwhelmingly likely for distinct seeds
  for (int i = 0; i < 1000; ++i) {
    const double d = a.next_double();
    CHECK(d >= 0.0 && d < 1.0);
  }
}

QC_TEST(table_formatters) {
  CHECK(qc::Table::integer(42) == "42");
  CHECK(qc::Table::num(1.23456, 2) == "1.23");
  CHECK(qc::Table::mops(12'340'000.0) == "12.34 Mop/s");
  CHECK(qc::Table::percent(0.421) == "42.1%");
}

QC_TEST(timer_is_monotonic) {
  qc::Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  CHECK(a >= 0.0);
  CHECK(b >= a);
}

QC_TEST_MAIN()
