// Options::validate() / normalize(): every clamp rule reports the rewrite it
// makes, validate() is side-effect free, and normalized options are a fixed
// point (no adjustments on re-normalize).
#include <string>

#include "core/options.hpp"
#include "qc_test.hpp"

namespace {

// True when `log` contains an adjustment of `field` landing on `to`.
bool adjusted_to(const std::vector<qc::core::Options::Adjustment>& log,
                 const std::string& field, std::uint64_t to) {
  for (const auto& a : log) {
    if (field == a.field && a.to == to) return true;
  }
  return false;
}

}  // namespace

QC_TEST(defaults_are_already_normalized) {
  qc::core::Options o;
  // install_queue = 0 is the documented auto request, sized silently — the
  // defaults produce no adjustment reports at all.
  CHECK(o.validate().empty());
  o.normalize();
  CHECK_EQ(o.install_queue, 8u);  // auto-sizing still happened
  CHECK(o.validate().empty());
  CHECK(o.normalize().empty());
}

QC_TEST(validate_is_side_effect_free) {
  qc::core::Options o;
  o.k = 0;
  o.b = 33;
  o.rho = 0;
  const auto log = o.validate();
  CHECK(!log.empty());
  CHECK_EQ(o.k, 0u);  // untouched
  CHECK_EQ(o.b, 33u);
  CHECK_EQ(o.rho, 0u);
}

QC_TEST(k_clamps_up_to_two) {
  for (std::uint32_t k : {0u, 1u}) {
    qc::core::Options o;
    o.k = k;
    const auto log = o.normalize();
    CHECK_EQ(o.k, 2u);
    CHECK(adjusted_to(log, "k", 2));
  }
}

QC_TEST(k_clamps_down_to_max) {
  // 2k of an unclamped 2^31 would overflow the 32-bit batch arithmetic
  // (historically a SIGFPE in the b-divisor loop via untrusted serde input).
  qc::core::Options o;
  o.k = 0x80000000u;
  const auto log = o.normalize();
  CHECK_EQ(o.k, qc::core::Options::kMaxK);
  CHECK(adjusted_to(log, "k", qc::core::Options::kMaxK));
  CHECK(o.validate().empty());
}

QC_TEST(rho_clamps_up_to_one) {
  qc::core::Options o;
  o.rho = 0;
  const auto log = o.normalize();
  CHECK_EQ(o.rho, 1u);
  CHECK(adjusted_to(log, "rho", 1));
}

QC_TEST(b_zero_clamps_to_one) {
  qc::core::Options o;
  o.b = 0;
  const auto log = o.normalize();
  CHECK_EQ(o.b, 1u);
  CHECK(adjusted_to(log, "b", 1));
}

QC_TEST(b_clamps_down_to_batch_size) {
  qc::core::Options o;
  o.k = 8;    // 2k = 16
  o.b = 999;  // > 2k
  const auto log = o.normalize();
  CHECK_EQ(o.b, 16u);
  CHECK(adjusted_to(log, "b", 16));
}

QC_TEST(b_clamps_down_to_nearest_divisor) {
  qc::core::Options o;
  o.k = 100;  // 2k = 200
  o.b = 33;   // largest divisor of 200 that is <= 33 is 25
  const auto log = o.normalize();
  CHECK_EQ(o.b, 25u);
  CHECK(adjusted_to(log, "b", 25));
  CHECK_EQ((2 * o.k) % o.b, 0u);
}

QC_TEST(size_driving_fields_clamp_to_caps) {
  // install_queue > 2^31 used to overflow the power-of-two doubling loop
  // into an infinite spin; rho/nodes had no cap at all.  All three now clamp
  // (and report), which is also what lets deserialize reject crafted blobs.
  qc::core::Options o;
  o.install_queue = 3'000'000'000u;
  o.rho = 0xFFFFFFFFu;
  o.topology.nodes = 4'000'000'000u;
  const auto log = o.normalize();
  CHECK_EQ(o.install_queue, qc::core::Options::kMaxInstallQueue);
  CHECK_EQ(o.rho, qc::core::Options::kMaxRho);
  CHECK_EQ(o.topology.nodes, qc::core::Options::kMaxNodes);
  CHECK(adjusted_to(log, "install_queue", qc::core::Options::kMaxInstallQueue));
  CHECK(adjusted_to(log, "rho", qc::core::Options::kMaxRho));
  CHECK(adjusted_to(log, "topology.nodes", qc::core::Options::kMaxNodes));
  CHECK(o.validate().empty());
}

QC_TEST(install_combine_clamps_into_range) {
  qc::core::Options lo;
  lo.install_combine = 0;
  CHECK(adjusted_to(lo.normalize(), "install_combine", 1));
  CHECK_EQ(lo.install_combine, 1u);

  qc::core::Options hi;
  hi.install_combine = 100'000;
  const auto log = hi.normalize();
  CHECK(adjusted_to(log, "install_combine", 256));
  CHECK_EQ(hi.install_combine, 256u);
}

QC_TEST(ibr_frequencies_clamp_into_range) {
  // Zero cadences would disable reclamation entirely (never advance the
  // epoch / never scan); cadences past kMaxIbrFreq are equally pathological
  // in the other direction.  Both ends clamp and report.
  qc::core::Options lo;
  lo.ibr_epoch_freq = 0;
  lo.ibr_recl_freq = 0;
  const auto llog = lo.normalize();
  CHECK_EQ(lo.ibr_epoch_freq, 1u);
  CHECK_EQ(lo.ibr_recl_freq, 1u);
  CHECK(adjusted_to(llog, "ibr_epoch_freq", 1));
  CHECK(adjusted_to(llog, "ibr_recl_freq", 1));

  qc::core::Options hi;
  hi.ibr_epoch_freq = 0xFFFFFFFFu;
  hi.ibr_recl_freq = 0xFFFFFFFFu;
  const auto hlog = hi.normalize();
  CHECK_EQ(hi.ibr_epoch_freq, qc::core::Options::kMaxIbrFreq);
  CHECK_EQ(hi.ibr_recl_freq, qc::core::Options::kMaxIbrFreq);
  CHECK(adjusted_to(hlog, "ibr_epoch_freq", qc::core::Options::kMaxIbrFreq));
  CHECK(adjusted_to(hlog, "ibr_recl_freq", qc::core::Options::kMaxIbrFreq));
  CHECK(hi.validate().empty());
}

QC_TEST(retire_cap_clamps_to_one_drain_group_burst) {
  // 0 means "no cap" and passes through untouched; a nonzero cap below
  // kMinRetireCap could trip on a single drain group's retirement burst and
  // is raised to the floor.  The watchdog threshold is a pure duration with
  // no pathological values, so normalize() never touches it.
  qc::core::Options off;
  off.ibr_retire_cap = 0;
  CHECK(off.normalize().empty());
  CHECK_EQ(off.ibr_retire_cap, 0u);

  qc::core::Options tight;
  tight.ibr_retire_cap = 1;
  const auto tlog = tight.normalize();
  CHECK_EQ(tight.ibr_retire_cap, qc::core::Options::kMinRetireCap);
  CHECK(adjusted_to(tlog, "ibr_retire_cap", qc::core::Options::kMinRetireCap));

  qc::core::Options wd;
  wd.latch_watchdog_ns = 1;  // absurdly twitchy, but legal
  CHECK(wd.normalize().empty());
  CHECK_EQ(wd.latch_watchdog_ns, std::uint64_t{1});
}

QC_TEST(serialize_propagation_is_not_a_clamped_field) {
  // The ablation control arm is a pure boolean switch: normalize() neither
  // rewrites nor reports it, in either position.
  qc::core::Options o;
  CHECK(!o.serialize_propagation);
  o.serialize_propagation = true;
  CHECK(o.normalize().empty());
  CHECK(o.serialize_propagation);
}

QC_TEST(install_queue_auto_sizes_and_rounds_up) {
  // Auto (0): smallest power of two >= max(8, 2 * install_combine), sized
  // silently (an auto request is not a misconfiguration to report).
  qc::core::Options a;
  a.install_combine = 16;
  a.install_queue = 0;
  CHECK(a.normalize().empty());
  CHECK_EQ(a.install_queue, 32u);

  // Explicit but not a power of two: rounded up.
  qc::core::Options b;
  b.install_queue = 9;
  CHECK(adjusted_to(b.normalize(), "install_queue", 16));

  // Explicit but smaller than one drain group: raised to hold it.
  qc::core::Options c;
  c.install_combine = 64;
  c.install_queue = 8;
  const auto log = c.normalize();
  CHECK(adjusted_to(log, "install_queue", 64));
  CHECK(c.install_queue >= c.install_combine);

  // A power of two >= the group size is untouched.
  qc::core::Options d;
  d.install_queue = 32;
  CHECK(d.normalize().empty());
}

QC_TEST_MAIN()
