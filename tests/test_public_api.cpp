// The qc.hpp public surface: the QuantileSketch concept, the RAII
// UpdaterHandle/QuerierHandle across all three engines, the Quancurrent
// convenience members, and adjustment reporting at construction.
#include <thread>
#include <vector>

#include "qc.hpp"
#include "qc_test.hpp"
#include "stream/generators.hpp"

using qc::stream::Distribution;

// Both engines model the unified concept; the sharded facade and the handles
// intentionally do not (no serde on a facade, no nested handles).
static_assert(qc::QuantileSketch<qc::QuantilesSketch<double>>);
static_assert(qc::QuantileSketch<qc::Quancurrent<double>>);
static_assert(qc::QuantileSketch<qc::QuantilesSketch<float>>);
static_assert(!qc::QuantileSketch<int>);

// Engine classification drives which implementation the handles wrap.
static_assert(qc::ConcurrentEngine<qc::Quancurrent<double>>);
static_assert(qc::ConcurrentEngine<qc::ShardedQuancurrent<double>>);
static_assert(!qc::ConcurrentEngine<qc::QuantilesSketch<double>>);

namespace {

qc::Options small_options(std::uint32_t k, std::uint32_t b) {
  qc::Options o;
  o.k = k;
  o.b = b;
  o.topology = qc::numa::Topology::virtual_nodes(2, 2);
  return o;
}

}  // namespace

QC_TEST(quancurrent_convenience_members_cover_the_concept) {
  qc::Quancurrent<double> sk(small_options(64, 8));
  for (int i = 0; i < 10'000; ++i) sk.update(static_cast<double>(i));
  // Convenience queries drain the convenience updater first, so everything
  // ingested above is visible without an explicit quiesce.
  CHECK_NEAR(sk.quantile(1.0), 9'999.0, 1e-12);
  CHECK_EQ(sk.rank(1e18), 10'000u);
  CHECK_NEAR(sk.cdf(1e18), 1.0, 1e-12);
  CHECK_EQ(sk.size(), 10'000u);

  // Interleaved update/query keeps counting correctly.
  sk.update(5.0);
  CHECK_EQ(sk.rank(1e18), 10'001u);
}

QC_TEST(updater_handle_drains_on_destruction) {
  qc::Quancurrent<double> sk(small_options(64, 8));
  {
    qc::UpdaterHandle u(sk, 0);
    for (int i = 0; i < 10; ++i) u.update(static_cast<double>(i));
    // 10 elements with b = 8: one chunk flushed to a gather buffer, the
    // remaining 2 still buffered in the handle.
  }
  // Destruction drained the remainder into the tail; quiesce only flushes
  // gather buffers, so the full count proves the handle's drain ran.
  sk.quiesce();
  qc::QuerierHandle q(sk);
  CHECK_EQ(q.size(), 10u);
}

QC_TEST(updater_handle_flush_makes_elements_visible) {
  qc::Quancurrent<double> sk(small_options(64, 8));
  qc::UpdaterHandle u(sk, 0);
  u.update(1.0);
  u.update(2.0);
  qc::QuerierHandle q(sk);
  CHECK_EQ(q.size(), 0u);  // still buffered in the handle
  u.flush();
  q.refresh();
  CHECK_EQ(q.size(), 2u);
}

QC_TEST(handles_are_uniform_across_engines) {
  const std::vector<double> data = [&] {
    return qc::stream::make_stream(Distribution::kUniform, 20'000, 71);
  }();

  // The same generic driver ingests into and queries all three engines.
  const auto drive = [&](auto& sketch) {
    {
      qc::UpdaterHandle u(sketch, 0);
      u.update(std::span<const double>(data));
    }
    // Concurrent engines buffer flushed chunks in gather buffers (bounded
    // relaxation); quiesce so the generic assertions below see everything.
    if constexpr (requires { sketch.quiesce(); }) sketch.quiesce();
    qc::QuerierHandle q(sketch);
    q.refresh();
    CHECK_EQ(q.size(), data.size());
    const double median = q.quantile(0.5);
    CHECK(q.rank(median) > data.size() / 4);
    CHECK(q.rank(median) < data.size() * 3 / 4);
    CHECK_NEAR(q.cdf(1e18), 1.0, 1e-12);
  };

  qc::QuantilesSketch<double> seq(128);
  drive(seq);
  qc::Quancurrent<double> conc(small_options(128, 8));
  drive(conc);
  qc::ShardedQuancurrent<double> sharded(3, small_options(128, 8));
  drive(sharded);
}

QC_TEST(handles_run_concurrently_per_thread) {
  const std::uint32_t threads = 4;
  const std::uint64_t per_thread = 25'000;
  qc::Quancurrent<double> sk(small_options(128, 8));
  std::vector<std::thread> pool;
  for (std::uint32_t t = 0; t < threads; ++t) {
    pool.emplace_back([&sk, t] {
      qc::UpdaterHandle u(sk, t);  // one handle per thread, as documented
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        u.update(static_cast<double>(t * per_thread + i));
      }
    });
  }
  std::thread reader([&sk] {
    qc::QuerierHandle q(sk);
    for (int i = 0; i < 1'000; ++i) {
      q.refresh();
      (void)q.quantile(0.5);
    }
  });
  for (auto& th : pool) th.join();
  reader.join();
  sk.quiesce();
  qc::QuerierHandle q(sk);
  CHECK_EQ(q.size(), threads * per_thread);
}

QC_TEST(construction_reports_adjustments_under_collect_stats) {
  // validate() predicts exactly what construction applies.
  qc::Options o = small_options(100, 33);
  const auto predicted = o.validate();
  CHECK_EQ(predicted.size(), 1u);  // b -> 25 (auto install_queue is silent)
  qc::Quancurrent<double> sk(o);   // collect_stats off: silent
  CHECK_EQ(sk.options().b, 25u);
  CHECK_EQ(sk.options().install_queue, 8u);
  CHECK(sk.options().validate().empty());

  // ShardedQuancurrent normalizes once up front; shards stay silent.
  qc::ShardedQuancurrent<double> sh(2, o);
  CHECK_EQ(sh.options().b, 25u);
}

QC_TEST_MAIN()
