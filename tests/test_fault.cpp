// Chaos suite: the failure model under deterministic fault injection.
//
// Built with QC_FAULT_INJECT (the engine's named injection points compile in)
// and QC_TEST_ALLOC_HOOK (qc_test.hpp's counting/failing global allocator).
// The tests prove the documented degradation outcomes, not mere survival:
//   * injected allocation failure at every site during concurrent
//     ingest/merge/query never crashes, never leaks a latch, never tears a
//     publication, and never violates the live_blocks() ledger;
//   * deserialize and merge_into are exception-safe at EVERY allocation site
//     (the fail-Nth loop: arm n = 1, 2, ... until a run completes clean);
//   * a stalled querier keeps retired memory under Options::ibr_retire_cap
//     with the episode reported through ibr_stats().degraded;
//   * a wedged latch holder and a full install ring are observable through
//     stats() (watchdog trips, queue-full waits) without a debugger.
//
// Every test resets the process-wide Injector on entry and exit so the
// suites compose; QC_FAULT_SEED in the environment reseeds the whole binary
// (the nightly chaos job randomizes and logs it).
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <functional>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "qc.hpp"
#include "qc_test.hpp"
#include "sequential/quantiles_sketch.hpp"

using qc::fault::Injector;
using qc::fault::Point;

namespace {

// Reset-on-entry + reset-on-exit so no test inherits another's schedule.
struct InjectorScope {
  InjectorScope() { Injector::instance().reset(); }
  ~InjectorScope() { Injector::instance().reset(); }
};

qc::Options small_options(std::uint32_t k, std::uint32_t b) {
  qc::Options o;
  o.k = k;
  o.b = b;
  o.topology = qc::numa::Topology::virtual_nodes(2, 2);
  return o;
}

// Number of level blocks the published tritmap references (the live-block
// ledger's right-hand side once quiesce() has trimmed).
std::uint64_t published_runs(const qc::Quancurrent<double>& sk) {
  const auto tm = sk.tritmap();
  std::uint64_t runs = 0;
  for (std::uint32_t level = 0; level < qc::Tritmap::kMaxLevels; ++level) {
    runs += tm.trit(level);
  }
  return runs;
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

}  // namespace

// ----- the injector itself ---------------------------------------------------

QC_TEST(injector_is_deterministic_for_a_seed) {
  InjectorScope scope;
  auto& inj = Injector::instance();
  const auto roll_pattern = [&inj] {
    inj.reset();
    inj.set_seed(123);
    inj.set_probability(Point::gather_stall, 0.5);
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) fires.push_back(inj.should_fire(Point::gather_stall));
    return fires;
  };
  const auto a = roll_pattern();
  const auto b = roll_pattern();
  CHECK(a == b);  // same seed, same per-hit decisions
  // A 50% point over 64 hits fires somewhere strictly between never & always.
  const auto fired = static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
  CHECK(fired > 0);
  CHECK(fired < a.size());
}

QC_TEST(injector_one_shot_fires_exactly_once) {
  InjectorScope scope;
  auto& inj = Injector::instance();
  inj.arm_hit(Point::tail_alloc, 5);
  int fires = 0;
  for (int i = 0; i < 10; ++i) fires += inj.should_fire(Point::tail_alloc) ? 1 : 0;
  CHECK_EQ(fires, 1);
  const auto c = inj.counters(Point::tail_alloc);
  CHECK_EQ(c.hits, std::uint64_t{10});
  CHECK_EQ(c.fires, std::uint64_t{1});
}

// ----- the chaos matrix ------------------------------------------------------

QC_TEST(chaos_matrix_ingest_merge_query_under_faults) {
  InjectorScope scope;
  auto& inj = Injector::instance();

  qc::Options o = small_options(64, 16);
  o.ibr_epoch_freq = 1;
  o.ibr_recl_freq = 4;
  qc::Quancurrent<double> sk(o);

  // A runs-only merge source: size is a multiple of 2k, so quiesce leaves an
  // empty tail and every successful merge folds exactly src_size elements.
  // Built BEFORE faults arm so the guaranteed one-shot below lands in the
  // concurrent phase, not here.
  qc::Quancurrent<double> src(small_options(64, 16));
  for (std::uint32_t i = 0; i < 1024; ++i) src.update(static_cast<double>(i));
  src.quiesce();
  const std::uint64_t src_size = src.size();
  CHECK_EQ(src_size, std::uint64_t{1024});
  qc::Quancurrent<double> tgt(small_options(64, 16));

  // Every OOM point at a rate that fires tens of times over this run, every
  // stall point at a rate that exercises the backpressure paths, plus a
  // GUARANTEED first-allocation cascade failure so install_defers is
  // deterministic, not probabilistic.
  inj.arm_hit(Point::level_block_alloc, 1);
  inj.set_probability(Point::level_block_alloc, 0.05);
  inj.set_probability(Point::tail_alloc, 0.01);
  inj.set_probability(Point::querier_copy_alloc, 0.02);
  inj.set_probability(Point::merge_alloc, 0.02);
  inj.set_probability(Point::install_queue_full, 0.002);
  inj.set_probability(Point::gather_stall, 0.002);
  inj.set_probability(Point::latch_stall, 0.002);
  inj.set_stall_us(100);

  constexpr std::uint32_t kUpdaters = 4;
  constexpr std::uint32_t kPerThread = 15'000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> merges_ok{0};
  std::atomic<std::uint64_t> merges_attempted{0};
  std::atomic<std::uint64_t> query_oom{0};
  std::vector<std::thread> threads;
  threads.reserve(kUpdaters + 2);
  for (std::uint32_t t = 0; t < kUpdaters; ++t) {
    threads.emplace_back([&, t] {
      auto u = sk.make_updater(t);
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        u.update(static_cast<double>(t) * kPerThread + i);
      }
      u.drain();
    });
  }
  threads.emplace_back([&] {  // querier: refresh may throw, the handle survives
    auto q = sk.make_querier();
    while (!done.load(std::memory_order_acquire)) {
      try {
        q.refresh();
      } catch (const std::bad_alloc&) {
        query_oom.fetch_add(1, std::memory_order_relaxed);
      }
      if (q.size() > 0) {
        const double mid = q.quantile(0.5);
        (void)mid;
      }
    }
  });
  threads.emplace_back([&] {  // merger: a throw folds a prefix, tgt stays sane
    for (int m = 0; m < 32; ++m) {
      merges_attempted.fetch_add(1, std::memory_order_relaxed);
      try {
        CHECK(src.merge_into(tgt));
        merges_ok.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::bad_alloc&) {
      }
    }
  });
  for (std::uint32_t t = 0; t < kUpdaters; ++t) threads[t].join();
  done.store(true, std::memory_order_release);
  for (std::uint32_t t = kUpdaters; t < threads.size(); ++t) threads[t].join();

  // Faults off; everything parked (including batches deferred by injected
  // cascade OOM) must now drain to an exact, uncorrupted state.
  inj.report(stderr);
  inj.reset();
  sk.quiesce();
  CHECK_EQ(sk.size(), std::uint64_t{kUpdaters} * kPerThread);
  {
    auto q = sk.make_querier();
    CHECK_EQ(q.size(), std::uint64_t{kUpdaters} * kPerThread);
    CHECK(q.quantile(0.0) <= q.quantile(0.5));
    CHECK(q.quantile(0.5) <= q.quantile(1.0));
  }
  const auto s = sk.ibr_stats();
  CHECK_EQ(s.live_blocks(), published_runs(sk));
  CHECK(!s.degraded);

  // The merge target folded every COMPLETED merge plus prefixes of thrown
  // ones; it must be internally consistent and obey its own ledger.
  tgt.quiesce();
  // Post-join reads: the worker threads are gone, relaxed suffices.
  CHECK(tgt.size() >= merges_ok.load(std::memory_order_relaxed) * src_size);
  CHECK(tgt.size() <= merges_attempted.load(std::memory_order_relaxed) * src_size);
  const auto ts = tgt.ibr_stats();
  CHECK_EQ(ts.live_blocks(), published_runs(tgt));

  // The armed first-allocation failure guarantees at least one deferred
  // install across the two sketches (whichever drained first took the hit).
  CHECK(sk.stats().install_defers + tgt.stats().install_defers >= 1);
}

// ----- exception safety, proven site-by-site ---------------------------------

QC_TEST(concurrent_deserialize_survives_failure_at_every_alloc_site) {
  InjectorScope scope;
  qc::Quancurrent<double> src(small_options(64, 16));
  for (std::uint32_t i = 0; i < 5000; ++i) src.update(static_cast<double>(i));
  src.quiesce();
  std::vector<std::byte> blob(src.serialized_size());
  CHECK_EQ(src.serialize(blob), blob.size());

  // Fail allocation n (1-based) on this thread; loop until an iteration
  // completes with the armed failure never firing — every allocation site on
  // the deserialize path has then been failed exactly once.
  bool clean = false;
  std::uint64_t n = 0;
  while (!clean && ++n < 5000) {
    qc::test::alloc::fail_nth(n);
    std::unique_ptr<qc::Quancurrent<double>> sk;
    qc::serde::Status st = qc::serde::Status::ok;
    bool threw = false;
    try {
      sk = qc::Quancurrent<double>::deserialize(blob, &st);
    } catch (const std::bad_alloc&) {
      threw = true;  // escaping bad_alloc is allowed; torn state is not
    }
    const bool injected = qc::test::alloc::fired;
    qc::test::alloc::disarm();
    if (injected) {
      // A failed reconstruction yields nothing half-built.
      CHECK(threw || sk == nullptr);
    } else {
      CHECK(!threw);
      CHECK(sk != nullptr);
      CHECK(st == qc::serde::Status::ok);
      CHECK_EQ(sk->size(), src.size());
      clean = true;
    }
  }
  CHECK(clean);
  std::fprintf(stderr, "qc chaos: concurrent deserialize clean after %llu armed sites\n",
               static_cast<unsigned long long>(n - 1));
}

QC_TEST(sequential_deserialize_survives_failure_at_every_alloc_site) {
  InjectorScope scope;
  qc::sequential::QuantilesSketch<double> src(128);
  for (std::uint32_t i = 0; i < 10'000; ++i) src.update(static_cast<double>(i));
  std::vector<std::byte> blob(src.serialized_size());
  CHECK_EQ(src.serialize(blob), blob.size());

  bool clean = false;
  std::uint64_t n = 0;
  while (!clean && ++n < 5000) {
    qc::test::alloc::fail_nth(n);
    std::optional<qc::sequential::QuantilesSketch<double>> sk;
    qc::serde::Status st = qc::serde::Status::ok;
    bool threw = false;
    try {
      sk = qc::sequential::QuantilesSketch<double>::deserialize(blob, &st);
    } catch (const std::bad_alloc&) {
      threw = true;
    }
    const bool injected = qc::test::alloc::fired;
    qc::test::alloc::disarm();
    if (injected) {
      CHECK(threw || !sk.has_value());
    } else {
      CHECK(!threw);
      CHECK(sk.has_value());
      CHECK(st == qc::serde::Status::ok);
      CHECK_EQ(sk->size(), src.size());
      clean = true;
    }
  }
  CHECK(clean);
  std::fprintf(stderr, "qc chaos: sequential deserialize clean after %llu armed sites\n",
               static_cast<unsigned long long>(n - 1));
}

QC_TEST(merge_into_survives_failure_at_every_alloc_site) {
  InjectorScope scope;
  qc::Quancurrent<double> src(small_options(64, 16));
  for (std::uint32_t i = 0; i < 3000; ++i) src.update(static_cast<double>(i));
  src.quiesce();
  const std::uint64_t src_size = src.size();

  bool clean = false;
  std::uint64_t n = 0;
  while (!clean && ++n < 5000) {
    // A fresh target per attempt: the documented recovery for a merge that
    // threw mid-install is retry-into-fresh-target, and it makes the success
    // criterion exact.
    qc::Quancurrent<double> tgt(small_options(64, 16));
    qc::test::alloc::fail_nth(n);
    bool threw = false;
    try {
      CHECK(src.merge_into(tgt));
    } catch (const std::bad_alloc&) {
      threw = true;
    }
    const bool injected = qc::test::alloc::fired;
    qc::test::alloc::disarm();
    if (injected) {
      // Prefix-folded or untouched — either way internally consistent,
      // answerable, and never oversized.  (threw may be false: a cascade
      // staging failure is absorbed as a deferred install and retried.)
      (void)threw;
      tgt.quiesce();
      CHECK(tgt.size() <= src_size);
      auto q = tgt.make_querier();
      if (q.size() > 0) CHECK(q.quantile(0.0) <= q.quantile(1.0));
      const auto ts = tgt.ibr_stats();
      CHECK_EQ(ts.live_blocks(), published_runs(tgt));
    } else {
      CHECK(!threw);
      tgt.quiesce();
      CHECK_EQ(tgt.size(), src_size);
      clean = true;
    }
  }
  CHECK(clean);
  std::fprintf(stderr, "qc chaos: merge_into clean after %llu armed sites\n",
               static_cast<unsigned long long>(n - 1));
}

QC_TEST(push_tail_failure_leaves_quiesce_retryable) {
  InjectorScope scope;
  auto& inj = Injector::instance();
  qc::Quancurrent<double> sk(small_options(64, 8));
  for (int i = 0; i < 10; ++i) sk.update(static_cast<double>(i));
  // The residue (10 items < one 2k batch) reaches the tail through quiesce's
  // push_tail; fail that allocation once.  The strong guarantee means the
  // first quiesce throws with nothing appended AND nothing consumed, so a
  // plain retry lands every element.
  inj.arm_hit(Point::tail_alloc, 1);
  bool threw = false;
  try {
    sk.quiesce();
  } catch (const std::bad_alloc&) {
    threw = true;
  }
  CHECK(threw);
  sk.quiesce();
  CHECK_EQ(sk.size(), std::uint64_t{10});
}

// ----- degradation under stalled readers ------------------------------------

namespace {
struct ParkedReader {
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
};

void park_handler(Point p, void* ctx) {
  if (p != Point::querier_stall) return;
  auto* pr = static_cast<ParkedReader*>(ctx);
  pr->parked.store(true, std::memory_order_release);
  while (!pr->release.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
}
}  // namespace

QC_TEST(stalled_querier_keeps_retired_memory_under_cap) {
  InjectorScope scope;
  auto& inj = Injector::instance();
  ParkedReader pr;
  inj.set_stall_handler(&park_handler, &pr);
  inj.arm_hit(Point::querier_stall, 1);  // the first refresh parks, pin held

  qc::Options o = small_options(64, 16);
  o.ibr_epoch_freq = 1;
  o.ibr_recl_freq = 4;
  o.ibr_retire_cap = 64;  // the minimum: degrade as early as possible
  qc::Quancurrent<double> sk(o);
  const std::uint32_t cap = o.ibr_retire_cap;

  std::thread reader([&] {
    // Constructing the querier refreshes once: the armed stall parks this
    // thread INSIDE refresh with its reclamation pin announced — the
    // stalled-reader scenario the retire cap exists for.
    auto q = sk.make_querier();
    CHECK(pr.release.load(std::memory_order_acquire));
    (void)q;
  });
  CHECK(wait_until([&] { return pr.parked.load(std::memory_order_acquire); }, 10'000));

  constexpr std::uint32_t kItems = 60'000;
  std::thread ingest([&] {
    auto u = sk.make_updater(0);
    for (std::uint32_t i = 0; i < kItems; ++i) u.update(static_cast<double>(i));
    u.drain();
  });

  // With the reader pinned, nothing reclaims; the list must climb to the cap
  // and ingest must throttle there instead of growing without bound.
  const bool degraded_seen =
      wait_until([&] { return sk.ibr_stats().degraded; }, 10'000);
  CHECK(degraded_seen);
  if (degraded_seen) {
    const auto s = sk.ibr_stats();
    CHECK(s.retire_list_len <= cap);
    CHECK(s.forced_scans >= 1);
    CHECK(s.throttle_waits >= 1);
    CHECK(s.pinned_epoch_age >= 1);  // names the cause: a lagging pin
  }

  // Release the reader: reclamation resumes, the throttle lifts, ingest
  // completes, and the episode ends.
  pr.release.store(true, std::memory_order_release);
  ingest.join();
  reader.join();
  inj.reset();
  sk.quiesce();
  CHECK_EQ(sk.size(), std::uint64_t{kItems});
  const auto s = sk.ibr_stats();
  CHECK(!s.degraded);
  CHECK(s.retire_list_len <= cap);
  CHECK_EQ(s.live_blocks(), published_runs(sk));
}

// ----- latch + queue observability -------------------------------------------

QC_TEST(wedged_latch_holder_trips_watchdog_and_backpressure_counters) {
  InjectorScope scope;
  auto& inj = Injector::instance();
  inj.set_probability(Point::latch_stall, 0.2);
  inj.set_stall_us(2000);  // each wedge far exceeds the watchdog threshold

  qc::Options o = small_options(32, 8);
  o.install_queue = 8;  // smallest ring: stalled drains park producers
  o.latch_watchdog_ns = 100'000;  // 100us
  qc::Quancurrent<double> sk(o);

  constexpr std::uint32_t kUpdaters = 2;
  constexpr std::uint32_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < kUpdaters; ++t) {
    threads.emplace_back([&, t] {
      auto u = sk.make_updater(t);
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        u.update(static_cast<double>(t) * kPerThread + i);
      }
      u.drain();
    });
  }
  for (auto& th : threads) th.join();
  inj.reset();
  sk.quiesce();
  CHECK_EQ(sk.size(), std::uint64_t{kUpdaters} * kPerThread);

  const auto s = sk.stats();
  CHECK(s.latch_holds >= 1);
  CHECK(s.latch_hold_total_ns >= s.latch_max_hold_ns);
  CHECK(s.latch_max_hold_ns >= 1'000'000);  // at least one ~2ms wedge observed
  CHECK(s.latch_watchdog_trips >= 1);
  CHECK_EQ(s.latch_current_hold_ns, std::uint64_t{0});  // idle now
}

QC_TEST(full_install_ring_is_counted_as_backpressure) {
  // Normal ingest cannot overfill the ring — every producer self-drains
  // before producing again — so this uses the diagnostic enqueue surface to
  // park Q batches undrained and prove the Q+1th producer's wait is counted.
  InjectorScope scope;
  qc::Options o = small_options(32, 8);
  o.install_queue = 8;
  qc::Quancurrent<double> sk(o);
  const std::uint32_t cap = 2 * o.k;
  std::vector<double> batch(cap);
  for (std::uint32_t i = 0; i < cap; ++i) batch[i] = static_cast<double>(i);

  for (int i = 0; i < 8; ++i) sk.enqueue_batch(batch);  // ring now full
  CHECK_EQ(sk.stats().queue_full_waits, std::uint64_t{0});
  std::thread producer([&] { sk.enqueue_batch(batch); });  // must park
  CHECK(wait_until([&] { return sk.stats().queue_full_waits >= 1; }, 10'000));
  sk.drain_installs();  // frees a cell; the parked producer lands batch 9
  producer.join();
  sk.drain_installs();
  CHECK_EQ(sk.size(), std::uint64_t{9} * cap);
  CHECK(sk.stats().queue_full_waits >= 1);
}

QC_TEST(latch_holds_are_timed_in_healthy_runs_too) {
  InjectorScope scope;
  qc::Quancurrent<double> sk(small_options(64, 16));
  for (int i = 0; i < 2000; ++i) sk.update(static_cast<double>(i));
  sk.quiesce();
  const auto s = sk.stats();
  CHECK(s.latch_holds >= 1);  // always collected, no collect_stats needed
  CHECK(s.latch_hold_total_ns >= s.latch_max_hold_ns);
  CHECK_EQ(s.latch_watchdog_trips, std::uint64_t{0});
  CHECK_EQ(s.latch_current_hold_ns, std::uint64_t{0});
}

// ----- serde corruption ------------------------------------------------------

QC_TEST(corrupted_images_are_rejected_or_stay_queryable) {
  InjectorScope scope;
  auto& inj = Injector::instance();
  qc::Quancurrent<double> src(small_options(64, 16));
  for (std::uint32_t i = 0; i < 4000; ++i) src.update(static_cast<double>(i));
  src.quiesce();

  int rejected = 0;
  int accepted = 0;
  for (int round = 0; round < 200; ++round) {
    // Corrupt at write time (one bit per fired put_bytes): every round
    // serializes fresh from the pristine sketch, so flips never accumulate.
    inj.set_probability(Point::serde_corrupt, 0.05);
    std::vector<std::byte> blob(src.serialized_size());
    CHECK_EQ(src.serialize(blob), blob.size());
    inj.set_probability(Point::serde_corrupt, 0.0);

    qc::serde::Status st = qc::serde::Status::ok;
    auto sk = qc::Quancurrent<double>::deserialize(blob, &st);
    if (sk == nullptr) {
      CHECK(st != qc::serde::Status::ok);
      ++rejected;
    } else {
      // A flip in item payload passes validation — values differ but the
      // sketch must stay structurally sound and answer without crashing.
      auto q = sk->make_querier();
      if (q.size() > 0) CHECK(q.quantile(0.0) <= q.quantile(1.0));
      ++accepted;
    }
  }
  // ~69 bits fire per 200 rounds somewhere in a ~4KB image: both outcomes
  // occur (clean rounds accept; a header/field flip rejects).
  CHECK(accepted > 0);
  CHECK_EQ(accepted + rejected, 200);
  std::fprintf(stderr, "qc chaos: corruption rounds accepted=%d rejected=%d\n",
               accepted, rejected);
}

QC_TEST_MAIN()
