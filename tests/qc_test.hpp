// Minimal single-header test harness: CHECK macros plus a self-registering
// test list, so the repo needs no external testing dependency.
#pragma once

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace qc::test {

struct Registry {
  static Registry& instance() {
    static Registry r;
    return r;
  }
  std::vector<std::pair<std::string, std::function<void()>>> tests;
  int failures = 0;
};

struct Registrar {
  Registrar(const char* name, std::function<void()> fn) {
    Registry::instance().tests.emplace_back(name, std::move(fn));
  }
};

inline void fail(const char* file, int line, const std::string& what) {
  std::fprintf(stderr, "    FAILED %s:%d: %s\n", file, line, what.c_str());
  ++Registry::instance().failures;
}

inline int run_all() {
  auto& reg = Registry::instance();
  for (auto& [name, fn] : reg.tests) {
    std::printf("[ RUN ] %s\n", name.c_str());
    const int before = reg.failures;
    fn();
    std::printf("[ %s ] %s\n", reg.failures == before ? " OK " : "FAIL", name.c_str());
  }
  std::printf("%zu test(s), %d failure(s)\n", reg.tests.size(), reg.failures);
  return reg.failures == 0 ? 0 : 1;
}

}  // namespace qc::test

// ----- counting / failing global allocator (opt-in) --------------------------
//
// Define QC_TEST_ALLOC_HOOK in exactly one test binary to replace global
// operator new/delete with a counting allocator that can fail the Nth
// allocation on the calling thread.  This is how the exception-safety tests
// PROVE a path survives an allocator failure at EVERY site: loop n = 1, 2, …
// arming fail_nth(n) around the operation until an iteration completes
// without the armed failure firing — every allocation the path performs has
// then been failed once.
//
// The countdown is thread_local so a failure armed in the driver thread
// never fires inside a concurrent helper thread, and the hook is exact-fit
// for that purpose only: it is NOT async-signal-safe and keeps no per-block
// metadata (counts allocations, not bytes).
#if defined(QC_TEST_ALLOC_HOOK)

#include <atomic>
#include <cstdlib>
#include <new>

namespace qc::test::alloc {

// Total successful allocations process-wide (all threads).
inline std::atomic<std::uint64_t> total{0};
// Countdown to the armed failure: 0 = disarmed, 1 = fail the next allocation.
inline thread_local std::uint64_t fail_countdown = 0;
// Set when an armed failure fired (sticky until rearm).
inline thread_local bool fired = false;

// Arm: the nth allocation on THIS thread from now throws bad_alloc (n >= 1).
inline void fail_nth(std::uint64_t n) {
  fail_countdown = n;
  fired = false;
}
inline void disarm() { fail_countdown = 0; }

inline bool should_fail() {
  if (fail_countdown == 0) return false;
  if (--fail_countdown != 0) return false;
  fired = true;
  return true;
}

inline void* allocate(std::size_t size) {
  if (should_fail()) throw std::bad_alloc{};
  total.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}

}  // namespace qc::test::alloc

void* operator new(std::size_t size) { return qc::test::alloc::allocate(size); }
void* operator new[](std::size_t size) { return qc::test::alloc::allocate(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return qc::test::alloc::allocate(size);
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return qc::test::alloc::allocate(size);
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#endif  // QC_TEST_ALLOC_HOOK

#define QC_TEST(name)                                              \
  static void qc_test_##name();                                    \
  static ::qc::test::Registrar qc_registrar_##name(#name,          \
                                                   qc_test_##name); \
  static void qc_test_##name()

#define CHECK(cond)                                                 \
  do {                                                              \
    if (!(cond)) ::qc::test::fail(__FILE__, __LINE__, "CHECK(" #cond ")"); \
  } while (0)

#define CHECK_EQ(a, b)                                                          \
  do {                                                                          \
    const auto qc_va = (a);                                                     \
    const auto qc_vb = (b);                                                     \
    if (!(qc_va == qc_vb))                                                      \
      ::qc::test::fail(__FILE__, __LINE__,                                      \
                       "CHECK_EQ(" #a ", " #b "): " + std::to_string(qc_va) +   \
                           " vs " + std::to_string(qc_vb));                     \
  } while (0)

#define CHECK_NEAR(a, b, tol)                                                   \
  do {                                                                          \
    const auto qc_va = (a);                                                     \
    const auto qc_vb = (b);                                                     \
    if (!(std::fabs(qc_va - qc_vb) <= (tol)))                                   \
      ::qc::test::fail(__FILE__, __LINE__,                                      \
                       "CHECK_NEAR(" #a ", " #b "): " + std::to_string(qc_va) + \
                           " vs " + std::to_string(qc_vb) + " tol " +           \
                           std::to_string(tol));                                \
  } while (0)

#define QC_TEST_MAIN() \
  int main() { return ::qc::test::run_all(); }
