// Minimal single-header test harness: CHECK macros plus a self-registering
// test list, so the repo needs no external testing dependency.
#pragma once

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace qc::test {

struct Registry {
  static Registry& instance() {
    static Registry r;
    return r;
  }
  std::vector<std::pair<std::string, std::function<void()>>> tests;
  int failures = 0;
};

struct Registrar {
  Registrar(const char* name, std::function<void()> fn) {
    Registry::instance().tests.emplace_back(name, std::move(fn));
  }
};

inline void fail(const char* file, int line, const std::string& what) {
  std::fprintf(stderr, "    FAILED %s:%d: %s\n", file, line, what.c_str());
  ++Registry::instance().failures;
}

inline int run_all() {
  auto& reg = Registry::instance();
  for (auto& [name, fn] : reg.tests) {
    std::printf("[ RUN ] %s\n", name.c_str());
    const int before = reg.failures;
    fn();
    std::printf("[ %s ] %s\n", reg.failures == before ? " OK " : "FAIL", name.c_str());
  }
  std::printf("%zu test(s), %d failure(s)\n", reg.tests.size(), reg.failures);
  return reg.failures == 0 ? 0 : 1;
}

}  // namespace qc::test

#define QC_TEST(name)                                              \
  static void qc_test_##name();                                    \
  static ::qc::test::Registrar qc_registrar_##name(#name,          \
                                                   qc_test_##name); \
  static void qc_test_##name()

#define CHECK(cond)                                                 \
  do {                                                              \
    if (!(cond)) ::qc::test::fail(__FILE__, __LINE__, "CHECK(" #cond ")"); \
  } while (0)

#define CHECK_EQ(a, b)                                                          \
  do {                                                                          \
    const auto qc_va = (a);                                                     \
    const auto qc_vb = (b);                                                     \
    if (!(qc_va == qc_vb))                                                      \
      ::qc::test::fail(__FILE__, __LINE__,                                      \
                       "CHECK_EQ(" #a ", " #b "): " + std::to_string(qc_va) +   \
                           " vs " + std::to_string(qc_vb));                     \
  } while (0)

#define CHECK_NEAR(a, b, tol)                                                   \
  do {                                                                          \
    const auto qc_va = (a);                                                     \
    const auto qc_vb = (b);                                                     \
    if (!(std::fabs(qc_va - qc_vb) <= (tol)))                                   \
      ::qc::test::fail(__FILE__, __LINE__,                                      \
                       "CHECK_NEAR(" #a ", " #b "): " + std::to_string(qc_va) + \
                           " vs " + std::to_string(qc_vb) + " tol " +           \
                           std::to_string(tol));                                \
  } while (0)

#define QC_TEST_MAIN() \
  int main() { return ::qc::test::run_all(); }
