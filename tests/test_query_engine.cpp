// The merge-based query engine: run_merge primitives, the prefix-weight
// summary, and Querier's incremental (tritmap-diff) refresh — including the
// ISSUE's three acceptance properties: (a) every refresh yields a
// value-sorted summary, (b) quantile/rank match the exact oracle within the
// error bound after quiesce, and (c) incremental and full refresh produce
// identical summaries.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "bench_util/workload.hpp"
#include "common/backoff.hpp"
#include "common/rng.hpp"
#include "core/quancurrent.hpp"
#include "core/run_merge.hpp"
#include "qc_test.hpp"
#include "stream/exact_quantiles.hpp"
#include "stream/generators.hpp"

using qc::stream::Distribution;

namespace {

qc::core::Options small_options(std::uint32_t k, std::uint32_t b) {
  qc::core::Options o;
  o.k = k;
  o.b = b;
  o.collect_stats = true;
  o.topology = qc::numa::Topology::virtual_nodes(2, 2);
  return o;
}

bool summary_is_sorted(const qc::core::WeightedSummary<double>& s) {
  const auto items = s.items();
  return std::is_sorted(items.begin(), items.end());
}

}  // namespace

QC_TEST(merge_runs_matches_sort_merge_runs) {
  qc::Xoshiro256 rng(41);
  qc::core::RunMerger<double> merger;
  std::vector<std::pair<double, std::uint64_t>> scratch;
  // Random run counts and lengths, including empty runs; uniform doubles are
  // effectively duplicate-free, so merge and sort orders must agree exactly.
  for (const std::size_t num_runs : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                     std::size_t{7}, std::size_t{16}}) {
    std::vector<std::vector<double>> data(num_runs);
    std::vector<qc::core::RunRef<double>> runs;
    for (std::size_t r = 0; r < num_runs; ++r) {
      const std::size_t len = rng() % 200;
      data[r].resize(len);
      for (auto& v : data[r]) v = rng.next_double();
      std::sort(data[r].begin(), data[r].end());
      runs.push_back({data[r].data(), data[r].size(), 1ULL << (r % 5)});
    }
    qc::core::WeightedSummary<double> merged, sorted;
    const auto span = std::span<const qc::core::RunRef<double>>(runs);
    merger.merge(span, merged);
    qc::core::sort_merge_runs(span, sorted, scratch);
    CHECK(merged == sorted);
    CHECK(summary_is_sorted(merged));
  }
}

QC_TEST(merge_runs_breaks_ties_by_run_index) {
  // Two runs sharing values but with different weights: ties must go to the
  // lower run index, making the output deterministic.
  const std::vector<double> a{1.0, 2.0, 2.0};
  const std::vector<double> b{2.0, 3.0};
  const std::vector<qc::core::RunRef<double>> runs{{a.data(), a.size(), 4},
                                                   {b.data(), b.size(), 1}};
  qc::core::RunMerger<double> merger;
  qc::core::WeightedSummary<double> out;
  merger.merge(std::span<const qc::core::RunRef<double>>(runs), out);
  CHECK_EQ(out.size(), 5u);
  CHECK_EQ(out.total_weight(), 14u);
  const auto items = out.items();
  const auto prefix = out.prefix_weights();
  CHECK(std::vector<double>(items.begin(), items.end()) ==
        (std::vector<double>{1, 2, 2, 2, 3}));
  // Run 0's weight-4 copies of 2.0 come before run 1's weight-1 copy.
  CHECK(std::vector<std::uint64_t>(prefix.begin(), prefix.end()) ==
        (std::vector<std::uint64_t>{4, 8, 12, 13, 14}));
}

QC_TEST(summary_binary_searches_match_linear_scans) {
  qc::Xoshiro256 rng(43);
  qc::core::WeightedSummary<double> s;
  double v = 0.0;
  std::vector<std::pair<double, std::uint64_t>> flat;
  for (int i = 0; i < 500; ++i) {
    v += rng.next_double();
    const std::uint64_t w = 1 + rng() % 7;
    s.append(v, w);
    flat.emplace_back(v, w);
  }
  // rank: first item not less than the probe, prefix weight before it.
  for (int i = 0; i < 200; ++i) {
    const double probe = rng.next_double() * v;
    std::uint64_t expect = 0;
    for (const auto& [item, weight] : flat) {
      if (!(item < probe)) break;
      expect += weight;
    }
    CHECK_EQ(qc::core::summary_rank(s, probe), expect);
  }
  // quantile: smallest item whose cumulative weight reaches phi * total.
  for (int i = 1; i < 100; ++i) {
    const double phi = static_cast<double>(i) / 100.0;
    const double target = phi * static_cast<double>(s.total_weight());
    std::uint64_t cumulative = 0;
    double expect = flat.back().first;
    for (const auto& [item, weight] : flat) {
      cumulative += weight;
      if (static_cast<double>(cumulative) >= target) {
        expect = item;
        break;
      }
    }
    CHECK_NEAR(qc::core::summary_quantile(s, phi), expect, 0.0);
  }
  CHECK_NEAR(qc::core::summary_quantile(s, 0.0), s.items()[0], 0.0);
  CHECK_EQ(qc::core::summary_rank(s, -1.0), 0u);
  CHECK_EQ(qc::core::summary_rank(s, v + 1.0), s.total_weight());
}

QC_TEST(backoff_spins_and_escalates) {
  qc::Backoff backoff;
  for (int i = 0; i < 100; ++i) backoff.spin();  // must escalate without hanging
  backoff.reset();
  backoff.spin();
}

QC_TEST(concurrent_refreshes_always_see_sorted_summaries) {
  // Acceptance (a): every refresh — incremental, racing live installs —
  // yields a value-sorted summary whose prefix weights are consistent.
  const std::uint64_t n = 120'000;
  const std::uint32_t k = 64;
  auto data = qc::stream::make_stream(Distribution::kUniform, n, 29);
  qc::core::Quancurrent<double> sk(small_options(k, 8));

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      auto q = sk.make_querier();
      while (!stop.load(std::memory_order_acquire)) {
        q.refresh();
        const auto& s = q.summary();
        CHECK(summary_is_sorted(s));
        CHECK_EQ(s.total_weight(), q.size());
        const auto prefix = s.prefix_weights();
        CHECK(std::is_sorted(prefix.begin(), prefix.end()));
        if (!s.empty()) {
          const double med = q.quantile(0.5);
          CHECK(med >= 0.0 && med < 1.0);
        }
      }
    });
  }
  qc::bench::ingest_quancurrent(sk, data, 2);
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  sk.quiesce();
  auto q = sk.make_querier();
  CHECK_EQ(q.size(), n);
}

QC_TEST(quantile_and_rank_match_oracle_after_quiesce) {
  // Acceptance (b): after quiesce, quantile AND rank answers stay within the
  // paper's error bound of the exact oracle.
  const std::uint64_t n = 200'000;
  const std::uint32_t k = 256;
  auto data = qc::stream::make_stream(Distribution::kUniform, n, 31);
  qc::core::Quancurrent<double> sk(small_options(k, 8));
  qc::bench::ingest_quancurrent(sk, data, 4, /*quiesce=*/true);
  CHECK_EQ(sk.size(), n);

  auto q = sk.make_querier();
  CHECK_EQ(q.size(), n);
  qc::stream::ExactQuantiles<double> exact(std::move(data));

  const double bound = 12.0 / static_cast<double>(k);
  double max_err = 0.0;
  for (int i = 1; i < 50; ++i) {
    const double phi = static_cast<double>(i) / 50.0;
    max_err = std::max(max_err, exact.rank_error(q.quantile(phi), phi));
  }
  CHECK(max_err <= bound);

  // rank(): normalized error against the oracle's exact rank.
  for (int i = 1; i < 50; ++i) {
    const double probe = static_cast<double>(i) / 50.0;
    const double est = static_cast<double>(q.rank(probe)) / static_cast<double>(n);
    const double truth =
        static_cast<double>(exact.rank(probe)) / static_cast<double>(n);
    CHECK(std::fabs(est - truth) <= bound);
  }
}

QC_TEST(incremental_and_full_refresh_return_identical_summaries) {
  // Acceptance (c): a querier whose cache evolved across many refreshes must
  // produce bit-identical summaries to a full re-copy and to a fresh
  // querier, at every quiesced point.
  const std::uint32_t k = 64;
  qc::core::Quancurrent<double> sk(small_options(k, 8));
  auto data = qc::stream::make_stream(Distribution::kUniform, 60'000, 37);

  auto incremental = sk.make_querier();
  std::size_t fed = 0;
  std::uint32_t rounds = 0;
  while (fed < data.size()) {
    {
      auto updater = sk.make_updater(rounds % 4);
      const std::size_t chunk = std::min<std::size_t>(data.size() - fed, 7'321);
      for (std::size_t i = 0; i < chunk; ++i) updater.update(data[fed + i]);
      fed += chunk;
    }
    sk.quiesce();
    incremental.refresh();  // reuses cached runs for unchanged levels
    CHECK_EQ(incremental.holes(), 0u);

    auto full = sk.make_querier();  // fresh cache: every run copied anew
    CHECK(incremental.summary() == full.summary());

    full.refresh_full();  // and the explicit cache-bypass path
    CHECK(incremental.summary() == full.summary());

    CHECK_EQ(incremental.size(), fed);
    ++rounds;
  }
  CHECK(rounds >= 8u);

  // The sort-baseline knob answers identically too (tie order may differ for
  // duplicate items, but uniform doubles are duplicate-free).
  auto baseline = sk.make_querier();
  baseline.set_sort_baseline(true);
  baseline.refresh_full();
  CHECK(baseline.summary() == incremental.summary());
}

QC_TEST(incremental_refresh_is_noop_when_nothing_changed) {
  qc::core::Quancurrent<double> sk(small_options(64, 8));
  {
    auto updater = sk.make_updater(0);
    for (int i = 0; i < 50'000; ++i) updater.update(static_cast<double>(i));
  }
  sk.quiesce();
  auto q = sk.make_querier();
  const auto first = q.summary();
  for (int i = 0; i < 10; ++i) {
    q.refresh();  // fast path: seq and tail version unchanged
    CHECK(q.summary() == first);
  }
  // A tail-only mutation must invalidate the fast path.
  {
    auto updater = sk.make_updater(0);
    updater.update(1e9);
  }  // drains 1 element to the tail
  q.refresh();
  CHECK_EQ(q.size(), 50'001u);
  CHECK_NEAR(q.summary().items().back(), 1e9, 0.0);
}

QC_TEST(sequential_sketch_summary_uses_prefix_weights) {
  qc::sketch::QuantilesSketch<double> sk(128);
  auto data = qc::stream::make_stream(Distribution::kUniform, 30'000, 5);
  for (const double v : data) sk.update(v);
  const auto& s = sk.summary();
  CHECK(summary_is_sorted(s));
  CHECK_EQ(s.total_weight(), 30'000u);
  CHECK_EQ(sk.rank(2.0), 30'000u);
  qc::stream::ExactQuantiles<double> exact(std::move(data));
  for (const double phi : {0.1, 0.5, 0.9}) {
    CHECK(exact.rank_error(sk.quantile(phi), phi) <= 10.0 / 128.0);
  }
}

QC_TEST_MAIN()
