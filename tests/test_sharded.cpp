// ShardedQuancurrent: routing (affinity + hash), cross-shard query merging,
// weight conservation, accuracy against the exact oracle, and incremental
// cross-shard refresh.
#include <algorithm>
#include <thread>
#include <vector>

#include "bench_util/workload.hpp"
#include "qc.hpp"
#include "qc_test.hpp"
#include "stream/exact_quantiles.hpp"
#include "stream/generators.hpp"

using qc::stream::Distribution;

namespace {

qc::Options small_options(std::uint32_t k, std::uint32_t b) {
  qc::Options o;
  o.k = k;
  o.b = b;
  o.collect_stats = true;
  o.topology = qc::numa::Topology::virtual_nodes(2, 2);
  return o;
}

}  // namespace

QC_TEST(sharded_multithread_ingest_conserves_weight_and_accuracy) {
  const std::uint32_t k = 256;
  const std::uint64_t n = 200'000;
  auto data = qc::stream::make_stream(Distribution::kUniform, n, 61);
  qc::ShardedQuancurrent<double> sk(4, small_options(k, 8));
  CHECK_EQ(sk.num_shards(), 4u);
  qc::bench::ingest_quancurrent(sk, data, 8, /*quiesce=*/true);

  CHECK_EQ(sk.size(), n);
  auto q = sk.make_querier();
  CHECK_EQ(q.size(), n);
  CHECK_EQ(q.rank(1e18), n);

  qc::stream::ExactQuantiles<double> exact(std::move(data));
  double max_err = 0.0;
  for (int i = 1; i < 50; ++i) {
    const double phi = static_cast<double>(i) / 50.0;
    max_err = std::max(max_err, exact.rank_error(q.quantile(phi), phi));
  }
  // Per-shard error bounds survive the cross-shard merge.
  CHECK(max_err <= 12.0 / static_cast<double>(k));
}

QC_TEST(affinity_routing_pins_threads_to_shards) {
  qc::ShardedQuancurrent<double> sk(2, small_options(64, 8));
  {
    auto u0 = sk.make_updater(0);  // shard 0
    auto u2 = sk.make_updater(2);  // also shard 0
    auto u1 = sk.make_updater(1);  // shard 1
    for (int i = 0; i < 1'000; ++i) {
      u0.update(1.0);
      u2.update(2.0);
      u1.update(3.0);
    }
  }
  sk.quiesce();
  CHECK_EQ(sk.shard(0).size(), 2'000u);
  CHECK_EQ(sk.shard(1).size(), 1'000u);
  CHECK_EQ(sk.size(), 3'000u);
}

QC_TEST(hash_routing_spreads_values_across_shards) {
  const std::uint64_t n = 40'000;
  qc::ShardedQuancurrent<double> sk(4, small_options(64, 8));
  auto data = qc::stream::make_stream(Distribution::kUniform, n, 62);
  {
    auto u = sk.make_hash_updater();
    for (double v : data) u.update(v);
  }
  sk.quiesce();
  CHECK_EQ(sk.size(), n);
  // Every shard sees a statistically even substream: within 3x of fair
  // share (very loose; the hash would have to be badly broken to fail).
  for (std::uint32_t s = 0; s < 4; ++s) {
    CHECK(sk.shard(s).size() > n / 12);
    CHECK(sk.shard(s).size() < n / 4 * 3);
  }
  // Identical values always route to the same shard.
  qc::ShardedQuancurrent<double> sk2(4, small_options(64, 8));
  {
    auto u = sk2.make_hash_updater();
    for (int i = 0; i < 4'000; ++i) u.update(42.0);
  }
  sk2.quiesce();
  std::uint32_t non_empty = 0;
  for (std::uint32_t s = 0; s < 4; ++s) non_empty += sk2.shard(s).size() != 0 ? 1 : 0;
  CHECK_EQ(non_empty, 1u);
}

QC_TEST(cross_shard_summary_equals_single_sketch_union) {
  // Two shards fed disjoint halves must answer exactly like the merged
  // stream at the extremes, and the summary must be value-sorted with a
  // consistent prefix-weight array.
  qc::ShardedQuancurrent<double> sk(2, small_options(64, 8));
  {
    auto u0 = sk.make_updater(0);
    auto u1 = sk.make_updater(1);
    for (int i = 0; i < 10'000; ++i) {
      u0.update(static_cast<double>(i));            // [0, 10000)
      u1.update(static_cast<double>(20'000 + i));   // [20000, 30000)
    }
  }
  sk.quiesce();
  auto q = sk.make_querier();
  CHECK_EQ(q.size(), 20'000u);
  // Compaction keeps a random half per level, so the exact min/max need not
  // be retained — but the extremes must come from the right shard's range.
  CHECK(q.quantile(0.0) < 10'000.0);
  CHECK(q.quantile(1.0) >= 20'000.0);
  // 15000 splits the shards exactly: every retained shard-0 item (total
  // weight 10000) is below it, every shard-1 item above.
  CHECK_EQ(q.rank(15'000.0), 10'000u);
  CHECK_NEAR(q.cdf(15'000.0), 0.5, 0.01);

  const auto& summary = q.summary();
  CHECK(std::is_sorted(summary.items().begin(), summary.items().end()));
  CHECK(std::is_sorted(summary.prefix_weights().begin(), summary.prefix_weights().end()));
  CHECK_EQ(summary.total_weight(), 20'000u);
}

QC_TEST(cross_shard_refresh_is_incremental) {
  qc::ShardedQuancurrent<double> sk(2, small_options(64, 8));
  {
    auto u = sk.make_updater(0);
    for (int i = 0; i < 5'000; ++i) u.update(static_cast<double>(i));
  }
  sk.quiesce();
  auto q = sk.make_querier();
  const std::uint64_t size_before = q.size();
  // No publication anywhere: refresh must be a no-op (and stay correct).
  q.refresh();
  q.refresh();
  CHECK_EQ(q.size(), size_before);

  // New data in one shard becomes visible after refresh.
  {
    auto u = sk.make_updater(1);
    for (int i = 0; i < 5'000; ++i) u.update(static_cast<double>(i));
  }
  sk.quiesce();
  q.refresh();
  CHECK_EQ(q.size(), 2 * size_before);
}

QC_TEST(sharded_queries_live_during_ingest) {
  const std::uint64_t n = 100'000;
  auto data = qc::stream::make_stream(Distribution::kUniform, n, 63);
  qc::ShardedQuancurrent<double> sk(4, small_options(128, 8));
  // On a loaded 1-core box the queriers may or may not get scheduled before
  // ingestion ends (so no assertion on mixed.queries); what must hold is
  // that the mixed run completes and the final cross-shard view is exact.
  const auto mixed = qc::bench::run_mixed(sk, data, 4, 2);
  (void)mixed;
  sk.quiesce();
  auto q = sk.make_querier();
  CHECK_EQ(q.size(), n);
}

// ----- sharded serde (the recovery container as in-memory facade serde) -----

QC_TEST(sharded_serde_roundtrip_is_bit_identical_per_shard) {
  const std::uint32_t k = 128;
  qc::ShardedQuancurrent<double> sk(3, small_options(k, 8));
  const auto data = qc::stream::make_stream(Distribution::kUniform, 30'000, 21);
  {
    auto u = sk.make_hash_updater();
    for (double v : data) u.update(v);
  }
  sk.quiesce();

  const auto img = qc::recovery::serialize_sharded(sk, 42);
  auto rt = qc::recovery::deserialize_sharded<double>(img);
  CHECK(rt != nullptr);
  if (rt == nullptr) return;
  // Same width restores via adopt(): no merge, no re-route — every shard
  // re-serializes to the exact bytes it was stored as.
  CHECK_EQ(rt->num_shards(), 3u);
  CHECK_EQ(rt->size(), sk.size());
  for (std::uint32_t s = 0; s < 3; ++s) {
    CHECK(qc::to_bytes(rt->shard(s)) == qc::to_bytes(sk.shard(s)));
  }
}

QC_TEST(sharded_restore_reroutes_into_different_width) {
  const std::uint32_t k = 128;
  const std::uint64_t n = 40'000;
  const auto data = qc::stream::make_stream(Distribution::kUniform, n, 77);
  qc::ShardedQuancurrent<double> sk(4, small_options(k, 8));
  {
    auto u = sk.make_hash_updater();
    for (double v : data) u.update(v);
  }
  sk.quiesce();
  const auto img = qc::recovery::serialize_sharded(sk);
  qc::stream::ExactQuantiles<double> exact{std::vector<double>(data)};

  // Shrinking and growing the serving tier both bridge via merge_into: total
  // weight is conserved and answers stay inside the merged-error envelope.
  for (const std::uint32_t want : {2u, 8u}) {
    auto rt = qc::recovery::deserialize_sharded<double>(img, want);
    CHECK(rt != nullptr);
    if (rt == nullptr) continue;
    CHECK_EQ(rt->num_shards(), want);
    CHECK_EQ(rt->size(), n);
    auto q = rt->make_querier();
    double max_err = 0.0;
    for (int i = 1; i < 50; ++i) {
      const double phi = static_cast<double>(i) / 50.0;
      max_err = std::max(max_err, exact.rank_error(q.quantile(phi), phi));
    }
    CHECK(max_err < 16.0 / static_cast<double>(k));
  }
}

QC_TEST_MAIN()
