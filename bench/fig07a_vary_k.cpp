// Figure 7a: update-only throughput while varying the summary size k.
// Paper parameters: k ∈ {256, 512, 1024, 2048, 4096}, b = 16, 10M keys.
// Throughput increases with k, peaking around k = 2048.
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS/QC_MAX_THREADS, QC_B.
#include <cstdio>

#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t b = static_cast<std::uint32_t>(env::get_u64("QC_B", 16));

  std::printf("=== Figure 7a: throughput vs k (update-only) ===\n");
  std::printf("b=%u n=%llu runs=%u\n\n", b, static_cast<unsigned long long>(scale.keys),
              scale.runs);

  const auto data = stream::make_stream(stream::Distribution::kUniform, scale.keys, 5);
  const auto threads = bench::thread_sweep(scale.max_threads);

  std::vector<std::string> headers{"threads"};
  for (std::uint32_t k : {256u, 512u, 1024u, 2048u, 4096u}) {
    headers.push_back("k=" + std::to_string(k));
  }
  Table t(headers);
  for (std::uint32_t th : threads) {
    std::vector<std::string> row{Table::integer(th)};
    for (std::uint32_t k : {256u, 512u, 1024u, 2048u, 4096u}) {
      const double tput = bench::average_runs(scale.runs, [&] {
        core::Options o;
        o.k = k;
        o.b = b;
        o.topology = numa::Topology::virtual_nodes(4, 8);
        core::Quancurrent<double> sk(o);
        return throughput(data.size(), bench::ingest_quancurrent(sk, data, th));
      });
      row.push_back(Table::mops(tput));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\npaper shape: throughput grows with k, flattening after k=2048.\n");
  return 0;
}
