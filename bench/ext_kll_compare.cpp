// Extension E1: classic quantiles sketch vs. KLL at equal k.
// Context: the paper builds Quancurrent on the classic (Agarwal et al.)
// sketch; KLL is its modern successor (geometrically shrinking compactors)
// and DataSketches' recommended default, but has no concurrent variant —
// the gap Quancurrent's architecture targets.  This bench quantifies what
// switching the substrate would buy: retained space, accuracy, and
// single-thread update cost.
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS.
#include <cstdio>
#include <string>

#include "bench_util/harness.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "common/timer.hpp"
#include "sequential/kll_sketch.hpp"
#include "sequential/quantiles_sketch.hpp"
#include "stream/exact_quantiles.hpp"
#include "stream/generators.hpp"

namespace {

struct Row {
  std::size_t retained;
  double max_err;
  double tput;
};

template <class Sketch>
Row measure(Sketch& sk, const std::vector<double>& data) {
  qc::Timer timer;
  for (double x : data) sk.update(x);
  const double secs = timer.seconds();
  qc::stream::ExactQuantiles<double> exact{std::vector<double>(data)};
  double max_err = 0;
  for (double phi = 0.05; phi <= 0.951; phi += 0.05) {
    max_err = std::max(max_err, exact.rank_error(sk.quantile(phi), phi));
  }
  return {sk.retained(), max_err, qc::throughput(data.size(), secs)};
}

}  // namespace

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();

  std::printf("=== Extension E1: classic vs KLL quantiles (sequential) ===\n");
  std::printf("n=%llu uniform stream\n\n", static_cast<unsigned long long>(scale.keys));

  const auto data = stream::make_stream(stream::Distribution::kUniform, scale.keys, 77);

  bench::JsonKv kv("ext_kll_compare", scale.name);
  Table t({"k", "classic_retained", "kll_retained", "classic_maxerr", "kll_maxerr",
           "classic_tput", "kll_tput"});
  for (std::uint32_t k : {64u, 256u, 1024u, 4096u}) {
    sketch::QuantilesSketch<double> classic(k);
    sketch::KllSketch<double> kll(k);
    const Row rc = measure(classic, data);
    const Row rk = measure(kll, data);
    t.add_row({Table::integer(k), Table::integer(rc.retained), Table::integer(rk.retained),
               Table::num(rc.max_err, 5), Table::num(rk.max_err, 5), Table::mops(rc.tput),
               Table::mops(rk.tput)});
    const std::string prefix = "k" + std::to_string(k);
    kv.add(prefix + "_classic_mops", rc.tput / 1e6);
    kv.add(prefix + "_kll_mops", rk.tput / 1e6);
    kv.add(prefix + "_classic_retained", static_cast<double>(rc.retained));
    kv.add(prefix + "_kll_retained", static_cast<double>(rk.retained));
    kv.add(prefix + "_classic_maxerr", rc.max_err);
    kv.add(prefix + "_kll_maxerr", rk.max_err);
  }
  t.print();
  const std::string json_dir = bench::json_out_dir();
  if (!json_dir.empty()) {
    const std::string path = json_dir + "/BENCH_kll.json";
    if (kv.write_file(path)) std::printf("wrote %s\n", path.c_str());
  }
  std::printf("\nexpected: KLL retains a near-constant ~3k elements vs classic's\n"
              "k*popcount(n/2k); accuracy at equal k is the same order.\n");
  return 0;
}
