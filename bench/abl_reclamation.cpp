// Ablation A3: IBR tuning — epoch frequency × reclamation frequency sweep.
// Quancurrent allocates one level block per cascade hop; reclamation cadence
// trades peak retire-list memory against scan overhead.  This ablation
// quantifies both sides so the defaults in core/options.hpp are justified by
// data rather than folklore.
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS/QC_MAX_THREADS, QC_K, QC_B.
#include <cstdio>
#include <string>

#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 1024));
  const std::uint32_t b = static_cast<std::uint32_t>(env::get_u64("QC_B", 16));
  const std::uint32_t threads = std::min<std::uint32_t>(4, scale.max_threads);

  std::printf("=== Ablation A3: IBR epoch/reclamation frequency ===\n");
  std::printf("k=%u b=%u threads=%u n=%llu\n\n", k, b, threads,
              static_cast<unsigned long long>(scale.keys));

  const auto data = stream::make_stream(stream::Distribution::kUniform, scale.keys, 21);

  // Keys follow the tput_/diagnostic split check_regression.py understands:
  // only tput_* keys gate; the IBR counters ride along as context.
  bench::JsonKv json("abl_reclamation", scale.name);
  Table t({"epoch_freq", "recl_freq", "throughput", "live_blocks",
           "peak_unreclaimed", "scans"});
  for (std::uint64_t ef : {4ull, 64ull, 1024ull}) {
    for (std::uint64_t rf : {4ull, 64ull, 1024ull}) {
      core::Options o;
      o.k = k;
      o.b = b;
      o.ibr_epoch_freq = static_cast<std::uint32_t>(ef);
      o.ibr_recl_freq = static_cast<std::uint32_t>(rf);
      core::Quancurrent<double> sk(o);
      const double secs = bench::ingest_quancurrent(sk, data, threads);
      const auto ibr = sk.ibr_stats();
      const std::string tag =
          "ef" + std::to_string(ef) + "_rf" + std::to_string(rf);
      json.add("tput_" + tag, throughput(data.size(), secs));
      json.add("live_blocks_" + tag, static_cast<double>(ibr.live_blocks()));
      json.add("peak_unreclaimed_" + tag,
               static_cast<double>(ibr.peak_unreclaimed));
      json.add("scans_" + tag, static_cast<double>(ibr.scans));
      t.add_row({Table::integer(ef), Table::integer(rf),
                 Table::mops(throughput(data.size(), secs)),
                 Table::integer(ibr.live_blocks()),
                 Table::integer(ibr.peak_unreclaimed), Table::integer(ibr.scans)});
    }
  }
  t.print();
  std::printf("\nexpected: small recl_freq bounds live blocks at the cost of scans;\n"
              "very large epoch_freq delays reclamation (coarser intervals).\n");

  const std::string dir = bench::json_out_dir();
  if (!dir.empty()) {
    const std::string path = dir + "/BENCH_abl_reclamation.json";
    if (json.write_file(path)) std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
