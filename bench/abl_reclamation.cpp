// Ablation A3: IBR tuning — epoch frequency × reclamation frequency sweep.
// Quancurrent allocates one level block per cascade hop; reclamation cadence
// trades peak retire-list memory against scan overhead.  This ablation
// quantifies both sides so the defaults in core/options.hpp are justified by
// data rather than folklore.
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS/QC_MAX_THREADS, QC_K, QC_B.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 1024));
  const std::uint32_t b = static_cast<std::uint32_t>(env::get_u64("QC_B", 16));
  const std::uint32_t threads = std::min<std::uint32_t>(4, scale.max_threads);

  std::printf("=== Ablation A3: IBR epoch/reclamation frequency ===\n");
  std::printf("k=%u b=%u threads=%u n=%llu\n\n", k, b, threads,
              static_cast<unsigned long long>(scale.keys));

  const auto data = stream::make_stream(stream::Distribution::kUniform, scale.keys, 21);

  // Keys follow the tput_/diagnostic split check_regression.py understands:
  // only tput_* keys gate; the IBR counters ride along as context.
  bench::JsonKv json("abl_reclamation", scale.name);
  Table t({"epoch_freq", "recl_freq", "cap", "throughput", "live_blocks",
           "peak_unreclaimed", "scans", "forced", "throttles"});
  // The 3×3 cadence sweep runs uncapped; a final arm repeats the default
  // cadence with a tight ibr_retire_cap to measure what the bounded-memory
  // response (forced scans, possible throttling) costs with healthy readers.
  struct Arm {
    std::uint64_t ef, rf;
    std::uint32_t cap;
  };
  std::vector<Arm> arms;
  for (std::uint64_t ef : {4ull, 64ull, 1024ull}) {
    for (std::uint64_t rf : {4ull, 64ull, 1024ull}) {
      arms.push_back({ef, rf, 0});
    }
  }
  arms.push_back({64, 64, 64});  // kMinRetireCap: the tightest legal cap
  for (const Arm& arm : arms) {
    core::Options o;
    o.k = k;
    o.b = b;
    o.ibr_epoch_freq = static_cast<std::uint32_t>(arm.ef);
    o.ibr_recl_freq = static_cast<std::uint32_t>(arm.rf);
    o.ibr_retire_cap = arm.cap;
    core::Quancurrent<double> sk(o);
    const double secs = bench::ingest_quancurrent(sk, data, threads);
    const auto ibr = sk.ibr_stats();
    std::string tag = "ef" + std::to_string(arm.ef) + "_rf" + std::to_string(arm.rf);
    if (arm.cap != 0) tag += "_cap" + std::to_string(arm.cap);
    json.add("tput_" + tag, throughput(data.size(), secs));
    json.add("live_blocks_" + tag, static_cast<double>(ibr.live_blocks()));
    json.add("peak_unreclaimed_" + tag,
             static_cast<double>(ibr.peak_unreclaimed));
    json.add("scans_" + tag, static_cast<double>(ibr.scans));
    json.add("forced_scans_" + tag, static_cast<double>(ibr.forced_scans));
    json.add("throttle_waits_" + tag, static_cast<double>(ibr.throttle_waits));
    t.add_row({Table::integer(arm.ef), Table::integer(arm.rf),
               Table::integer(arm.cap),
               Table::mops(throughput(data.size(), secs)),
               Table::integer(ibr.live_blocks()),
               Table::integer(ibr.peak_unreclaimed), Table::integer(ibr.scans),
               Table::integer(ibr.forced_scans),
               Table::integer(ibr.throttle_waits)});
  }
  t.print();
  std::printf("\nexpected: small recl_freq bounds live blocks at the cost of scans;\n"
              "very large epoch_freq delays reclamation (coarser intervals);\n"
              "the capped arm forces off-cadence scans but should not throttle\n"
              "(throttles > 0 with healthy readers means the cap is too tight).\n");

  const std::string dir = bench::json_out_dir();
  if (!dir.empty()) {
    const std::string path = dir + "/BENCH_abl_reclamation.json";
    if (json.write_file(path)) std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
