// Ablation A3: IBR tuning — epoch frequency × reclamation frequency sweep.
// Quancurrent allocates one level array per batch and per propagation hop
// plus MCAS descriptors; reclamation cadence trades peak memory against
// scan overhead.  This ablation quantifies both sides so the defaults in
// core/options.hpp are justified by data rather than folklore.
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS/QC_MAX_THREADS, QC_K, QC_B.
#include <cstdio>

#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 1024));
  const std::uint32_t b = static_cast<std::uint32_t>(env::get_u64("QC_B", 16));
  const std::uint32_t threads = std::min<std::uint32_t>(4, scale.max_threads);

  std::printf("=== Ablation A3: IBR epoch/reclamation frequency ===\n");
  std::printf("k=%u b=%u threads=%u n=%llu\n\n", k, b, threads,
              static_cast<unsigned long long>(scale.keys));

  const auto data = stream::make_stream(stream::Distribution::kUniform, scale.keys, 21);

  Table t({"epoch_freq", "recl_freq", "throughput", "peak_live_blocks", "scans"});
  for (std::uint64_t ef : {4ull, 64ull, 1024ull}) {
    for (std::uint64_t rf : {4ull, 64ull, 1024ull}) {
      core::Options o;
      o.k = k;
      o.b = b;
      o.ibr_epoch_freq = ef;
      o.ibr_recl_freq = rf;
      core::Quancurrent<double> sk(o);
      const double secs = bench::ingest_quancurrent(sk, data, threads);
      const auto ibr = sk.ibr_stats();
      t.add_row({Table::integer(ef), Table::integer(rf),
                 Table::mops(throughput(data.size(), secs)),
                 Table::integer(ibr.allocated - ibr.freed), Table::integer(ibr.scans)});
    }
  }
  t.print();
  std::printf("\nexpected: small recl_freq bounds live blocks at the cost of scans;\n"
              "very large epoch_freq delays reclamation (coarser intervals).\n");
  return 0;
}
