// Figure 8: standard error of the estimate in a quiescent state.
// Paper parameters: 1M keys, 1000 runs, k up to 4096, b ∈ {8, 16, 32},
// 8 and 32 threads, against the sequential sketch.  Quancurrent's error
// matches the sequential sketch at equal k and shrinks with k.
//
// The statistic: per run, measure the normalized rank error of query(φ)
// over a φ grid; report the RMS error across runs × φ (×10^4 for
// readability).  Runs use distinct stream seeds.
//
// Env: QC_SCALE (keys default 1M at "small" via QC_KEYS), QC_RUNS
// (default: scale runs × 4 — this figure needs repetitions), QC_MAX_THREADS.
#include <cmath>
#include <cstdio>

#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/exact_quantiles.hpp"
#include "stream/generators.hpp"

namespace {

double rms_rank_error_quancurrent(std::uint32_t k, std::uint32_t b, std::uint32_t threads,
                                  std::uint64_t keys, std::uint32_t runs) {
  using namespace qc;
  double sum_sq = 0;
  std::size_t count = 0;
  for (std::uint32_t r = 0; r < runs; ++r) {
    core::Options o;
    o.k = k;
    o.b = b;
    o.seed = 1000 + r;
    o.topology = numa::Topology::virtual_nodes(4, 8);
    core::Quancurrent<double> sk(o);
    auto data = stream::make_stream(stream::Distribution::kUniform, keys, 5000 + r);
    // Quiescent WITHOUT drain: drain()'s padding duplicates (up to 2k per
    // G&S buffer) would dominate the measurement at large k.  The
    // unpropagated tail of an i.i.d. stream is an unbiased truncation —
    // exactly the paper's quiescent-query setting.
    bench::ingest_quancurrent(sk, data, threads, /*quiesce=*/false);
    stream::ExactQuantiles<double> exact(std::move(data));
    auto q = sk.make_querier();
    q.refresh();
    for (double phi = 0.1; phi <= 0.91; phi += 0.1) {
      const double err = exact.rank_error(q.quantile(phi), phi);
      sum_sq += err * err;
      ++count;
    }
  }
  return std::sqrt(sum_sq / static_cast<double>(count));
}

double rms_rank_error_sequential(std::uint32_t k, std::uint64_t keys, std::uint32_t runs) {
  using namespace qc;
  double sum_sq = 0;
  std::size_t count = 0;
  for (std::uint32_t r = 0; r < runs; ++r) {
    sketch::QuantilesSketch<double> sk(k, 2000 + r);
    auto data = stream::make_stream(stream::Distribution::kUniform, keys, 5000 + r);
    for (double x : data) sk.update(x);
    stream::ExactQuantiles<double> exact(std::move(data));
    for (double phi = 0.1; phi <= 0.91; phi += 0.1) {
      const double err = exact.rank_error(sk.quantile(phi), phi);
      sum_sq += err * err;
      ++count;
    }
  }
  return std::sqrt(sum_sq / static_cast<double>(count));
}

}  // namespace

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint64_t keys = std::min<std::uint64_t>(scale.keys, 1'000'000);
  const std::uint32_t runs = static_cast<std::uint32_t>(
      env::get_u64("QC_RUNS", std::max<std::uint64_t>(scale.runs, 5)));

  std::printf("=== Figure 8: standard error in quiescent state ===\n");
  std::printf("keys=%llu runs=%u (rank RMS error x 1e4; paper: matches sequential)\n\n",
              static_cast<unsigned long long>(keys), runs);

  for (std::uint32_t threads : {8u, 32u}) {
    const std::uint32_t th = std::min(threads, scale.max_threads);
    std::printf("-- %u update threads (requested %u) --\n", th, threads);
    Table t({"k", "sequential", "b=8", "b=16", "b=32"});
    for (std::uint32_t k : {256u, 1024u, 4096u}) {
      std::vector<std::string> row{Table::integer(k)};
      row.push_back(Table::num(rms_rank_error_sequential(k, keys, runs) * 1e4, 2));
      for (std::uint32_t b : {8u, 16u, 32u}) {
        row.push_back(Table::num(rms_rank_error_quancurrent(k, b, th, keys, runs) * 1e4, 2));
      }
      t.add_row(std::move(row));
    }
    t.print();
    std::printf("\n");
  }
  std::printf("paper shape: error falls with k; Quancurrent ~= sequential; b immaterial.\n");
  return 0;
}
