// Extension: update scaling beyond a single sketch's contention knee.
//
// A single Quancurrent funnels every flush through per-node gather buffers
// and one install latch; past some thread count those shared points are the
// bottleneck (fig06a's gather_waits/latch_spins).  ShardedQuancurrent splits
// the stream across S independent sketches (thread-affinity routing) and
// re-merges summaries at query time, so update throughput keeps scaling.
// This driver sweeps threads over {1..max(16, QC_MAX_THREADS)} for a single
// sketch vs S ∈ {2, 4} shards, then runs a mixed phase on S = 4 to show
// cross-shard queries staying live (and lock-free) during ingestion.
//
// Writes BENCH_sharded.json when QC_BENCH_JSON is set.
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS/QC_MAX_THREADS, QC_K, QC_B, QC_BENCH_JSON.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "core/sharded.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 1024));
  const std::uint32_t b = static_cast<std::uint32_t>(env::get_u64("QC_B", 16));
  // The interesting region starts past the single-sketch knee, so this sweep
  // always includes 16 threads even when QC_MAX_THREADS is lower — and the
  // knee only manifests with enough stream per thread and enough runs to
  // average out scheduling noise, so smoke scale gets floored up here.
  const std::uint32_t max_threads = std::max(16u, scale.max_threads);
  scale.keys = std::max<std::uint64_t>(scale.keys, 500'000);
  scale.runs = std::max(scale.runs, 4u);

  std::printf("=== ext: sharded update scaling (single vs S=2 vs S=4) ===\n");
  std::printf("k=%u b=%u n=%llu runs=%u max_threads=%u\n\n", k, b,
              static_cast<unsigned long long>(scale.keys), scale.runs, max_threads);

  const auto data = stream::make_stream(stream::Distribution::kUniform, scale.keys, 23);

  const auto make_opts = [&] {
    core::Options o;
    o.k = k;
    o.b = b;
    o.collect_stats = true;
    o.topology = numa::Topology::virtual_nodes(4, 8);
    return o;
  };

  bench::JsonSeries json("ext_sharded_scaling", scale.name, "sharded4_ops_per_sec");
  Table t({"threads", "single", "S=2", "S=4", "S4/single", "single_waits", "S4_waits"});
  double single_at_max = 0.0;
  double sharded4_at_max = 0.0;
  for (std::uint32_t threads : bench::thread_sweep(max_threads)) {
    core::Stats single_stats;
    const double single = bench::average_runs(scale.runs, [&] {
      core::Quancurrent<double> sk(make_opts());
      const double secs = bench::ingest_quancurrent(sk, data, threads);
      single_stats = sk.stats();
      return throughput(data.size(), secs);
    });
    const double s2 = bench::average_runs(scale.runs, [&] {
      core::ShardedQuancurrent<double> sk(2, make_opts());
      return throughput(data.size(), bench::ingest_quancurrent(sk, data, threads));
    });
    core::Stats s4_stats;
    const double s4 = bench::average_runs(scale.runs, [&] {
      core::ShardedQuancurrent<double> sk(4, make_opts());
      const double secs = bench::ingest_quancurrent(sk, data, threads);
      s4_stats = sk.stats();
      return throughput(data.size(), secs);
    });
    single_at_max = single;
    sharded4_at_max = s4;
    json.add(threads, s4);
    t.add_row({Table::integer(threads), Table::mops(single), Table::mops(s2),
               Table::mops(s4), Table::num(s4 / single, 2) + "x",
               Table::integer(single_stats.gather_waits + single_stats.latch_spins),
               Table::integer(s4_stats.gather_waits + s4_stats.latch_spins)});
  }
  t.print();
  std::printf("\n@%u threads: single=%s S4=%s (%.2fx)\n", max_threads,
              Table::mops(single_at_max).c_str(), Table::mops(sharded4_at_max).c_str(),
              sharded4_at_max / single_at_max);

  // Mixed phase: S = 4 shards ingesting while cross-shard queriers refresh;
  // the facade querier takes no lock, so queries stay live throughout.
  const std::uint32_t upd = std::min<std::uint32_t>(8, max_threads);
  const std::uint32_t qry = std::min<std::uint32_t>(4, max_threads);
  core::ShardedQuancurrent<double> mixed_sk(4, make_opts());
  const auto mixed = bench::run_mixed(mixed_sk, data, upd, qry);
  std::printf("mixed (S=4, %uu+%uq): upd=%s qry=%s refresh p50=%.1fus p99=%.1fus "
              "holes=%llu\n",
              upd, qry, Table::mops(mixed.update_throughput).c_str(),
              Table::mops(mixed.query_throughput).c_str(), mixed.refresh_p50_us,
              mixed.refresh_p99_us, static_cast<unsigned long long>(mixed.holes));

  json.counter("single_at_max_threads", single_at_max);
  json.counter("sharded4_at_max_threads", sharded4_at_max);
  json.counter("sharded4_speedup", sharded4_at_max / single_at_max);
  json.counter("mixed_update_tput", mixed.update_throughput);
  json.counter("mixed_query_tput", mixed.query_throughput);

  const std::string dir = bench::json_out_dir();
  if (!dir.empty()) {
    const std::string path = dir + "/BENCH_sharded.json";
    if (json.write_file(path)) std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
