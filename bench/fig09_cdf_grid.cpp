// Figure 9: Quancurrent quantiles vs. exact CDF for the uniform and normal
// distributions with k ∈ {32, 256}.
// Paper parameters: 32 threads, b = 16, 10M elements.  k = 32 tracks the
// CDF loosely; k = 256 is visually exact.
//
// Env: QC_SCALE/QC_KEYS/QC_MAX_THREADS.
#include <cstdio>

#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/exact_quantiles.hpp"
#include "stream/generators.hpp"

namespace {

void run_case(qc::stream::Distribution dist, std::uint32_t k, std::uint64_t keys,
              std::uint32_t threads) {
  using namespace qc;
  core::Options o;
  o.k = k;
  o.b = 16;
  o.topology = numa::Topology::virtual_nodes(4, 8);
  core::Quancurrent<double> sk(o);
  auto data = stream::make_stream(dist, keys, 31 + k);
  bench::ingest_quancurrent(sk, data, threads, /*quiesce=*/true);
  stream::ExactQuantiles<double> exact(std::move(data));
  auto q = sk.make_querier();
  q.refresh();

  std::printf("-- dist=%s k=%u --\n", stream::distribution_name(dist), k);
  Table t({"phi", "exact_rank", "quancurrent_rank", "rank_err(x1e-4)"});
  double max_err = 0;
  for (double phi : bench::phi_grid(20)) {
    const double est = q.quantile(phi);
    const double err = exact.rank_error(est, phi);
    max_err = std::max(max_err, err);
    t.add_row({Table::num(phi, 2),
               Table::integer(static_cast<std::uint64_t>(phi * exact.size())),
               Table::integer(exact.rank(est)), Table::num(err * 1e4, 1)});
  }
  t.print();
  std::printf("max err %.5f  (paper: k=32 loose, k=256 tight)\n\n", max_err);
}

}  // namespace

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t threads = std::min<std::uint32_t>(32, scale.max_threads);

  std::printf("=== Figure 9: estimated vs exact CDF (uniform & normal; k=32, 256) ===\n");
  std::printf("threads=%u b=16 n=%llu\n\n", threads,
              static_cast<unsigned long long>(scale.keys));

  for (auto dist : {stream::Distribution::kUniform, stream::Distribution::kNormal}) {
    for (std::uint32_t k : {32u, 256u}) {
      run_case(dist, k, scale.keys, threads);
    }
  }
  return 0;
}
