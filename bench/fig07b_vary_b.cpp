// Figure 7b: update-only throughput while varying the local buffer size b.
// Paper parameters: b ∈ {1, 2, 4, 8, 16, 32, 64}, k = 4096, 10M keys.
// Throughput increases with b (more elements move per F&A; less contention).
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS/QC_MAX_THREADS, QC_K.
#include <cstdio>

#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 4096));

  std::printf("=== Figure 7b: throughput vs b (update-only) ===\n");
  std::printf("k=%u n=%llu runs=%u\n\n", k, static_cast<unsigned long long>(scale.keys),
              scale.runs);

  const auto data = stream::make_stream(stream::Distribution::kUniform, scale.keys, 6);
  const auto threads = bench::thread_sweep(scale.max_threads);

  std::vector<std::string> headers{"threads"};
  for (std::uint32_t b : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    headers.push_back("b=" + std::to_string(b));
  }
  Table t(headers);
  for (std::uint32_t th : threads) {
    std::vector<std::string> row{Table::integer(th)};
    for (std::uint32_t b : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      const double tput = bench::average_runs(scale.runs, [&] {
        core::Options o;
        o.k = k;
        o.b = b;
        o.topology = numa::Topology::virtual_nodes(4, 8);
        core::Quancurrent<double> sk(o);
        return throughput(data.size(), bench::ingest_quancurrent(sk, data, th));
      });
      row.push_back(Table::mops(tput));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\npaper shape: throughput increases with b (more concurrency).\n");
  return 0;
}
