#!/usr/bin/env bash
# Runs every built bench binary at smoke scale and fails if any exits
# non-zero.  Usage: bench/run_all.sh [build-dir]   (default: build)
set -u

build_dir="${1:-build}"
bench_dir="${build_dir}/bench"

if [ ! -d "${bench_dir}" ]; then
  echo "error: ${bench_dir} not found — configure with -DQC_BUILD_BENCH=ON first" >&2
  exit 2
fi

export QC_SCALE="${QC_SCALE:-smoke}"

failures=0
ran=0
for exe in "${bench_dir}"/*; do
  [ -f "${exe}" ] && [ -x "${exe}" ] || continue
  ran=$((ran + 1))
  echo "=== running $(basename "${exe}") (QC_SCALE=${QC_SCALE}) ==="
  if ! "${exe}"; then
    echo "*** $(basename "${exe}") FAILED" >&2
    failures=$((failures + 1))
  fi
  echo
done

if [ "${ran}" -eq 0 ]; then
  echo "error: no bench binaries found in ${bench_dir}" >&2
  exit 2
fi

echo "${ran} bench(es) run, ${failures} failure(s)"
exit "$((failures > 0 ? 1 : 0))"
