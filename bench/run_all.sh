#!/usr/bin/env bash
# Runs every built bench binary at smoke scale and fails if any exits
# non-zero.  Benches that track a perf trajectory (fig06a -> BENCH_ingest
# incl. ingest contention counters, fig06b -> BENCH_query, micro_primitives
# -> BENCH_ingest_micro with the Gather&Sort and install-combining sweeps,
# fig07c -> BENCH_rho, ext_sharded_scaling -> BENCH_sharded, fig10_vs_fcds
# -> BENCH_fig10 with the Quancurrent-vs-FCDS matched-relaxation sweep,
# ext_kll_compare -> BENCH_kll, ext_theta_scaling -> BENCH_theta,
# ext_checkpoint -> BENCH_checkpoint with checkpoint latency vs sketch size
# and the ingest dip under a checkpoint cadence, abl_propagation ->
# BENCH_abl_propagation, abl_reclamation ->
# BENCH_abl_reclamation with the IBR cadence sweep) drop their JSON into
# QC_BENCH_JSON (default: the build dir), where CI picks them up as
# artifacts and bench/check_regression.py gates on the tput series.
# Usage: bench/run_all.sh [build-dir]   (default: build)
set -u

build_dir="${1:-build}"
bench_dir="${build_dir}/bench"

if [ ! -d "${bench_dir}" ]; then
  echo "error: ${bench_dir} not found — configure with -DQC_BUILD_BENCH=ON first" >&2
  exit 2
fi

export QC_SCALE="${QC_SCALE:-smoke}"
export QC_BENCH_JSON="${QC_BENCH_JSON:-${build_dir}}"
mkdir -p "${QC_BENCH_JSON}"

failures=0
ran=0
for exe in "${bench_dir}"/*; do
  [ -f "${exe}" ] && [ -x "${exe}" ] || continue
  ran=$((ran + 1))
  echo "=== running $(basename "${exe}") (QC_SCALE=${QC_SCALE}) ==="
  if ! "${exe}"; then
    echo "*** $(basename "${exe}") FAILED" >&2
    failures=$((failures + 1))
  fi
  echo
done

if [ "${ran}" -eq 0 ]; then
  echo "error: no bench binaries found in ${bench_dir}" >&2
  exit 2
fi

for json in BENCH_ingest.json BENCH_query.json BENCH_ingest_micro.json \
            BENCH_rho.json BENCH_sharded.json BENCH_fig10.json \
            BENCH_kll.json BENCH_theta.json BENCH_checkpoint.json \
            BENCH_abl_propagation.json BENCH_abl_reclamation.json; do
  if [ -f "${QC_BENCH_JSON}/${json}" ]; then
    echo "perf artifact: ${QC_BENCH_JSON}/${json}"
  else
    echo "*** expected perf artifact ${QC_BENCH_JSON}/${json} was not written" >&2
    failures=$((failures + 1))
  fi
done

echo "${ran} bench(es) run, ${failures} failure(s)"
exit "$((failures > 0 ? 1 : 0))"
