// Figure 10: Quancurrent vs. FCDS — update throughput at matched relaxation.
// Paper parameters: k = 4096; threads ∈ {8, 16, 24, 32}; relaxation r swept
// from ~2·10^4 to ~4·10^5 by varying Quancurrent's local buffer b
// (r = 4kS + (N−S)b) and FCDS's worker buffer B (r = 2NB).
// The paper's shape: Quancurrent sustains high throughput at small r; FCDS
// needs an order of magnitude more relaxation for comparable throughput.
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS/QC_MAX_THREADS, QC_K.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/relaxation.hpp"
#include "baselines/fcds.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 4096));

  std::printf("=== Figure 10: Quancurrent vs FCDS at matched relaxation ===\n");
  std::printf("k=%u n=%llu runs=%u\n\n", k, static_cast<unsigned long long>(scale.keys),
              scale.runs);

  const auto data = stream::make_stream(stream::Distribution::kUniform, scale.keys, 10);
  bench::JsonKv kv("fig10_vs_fcds", scale.name);

  // The paper's thread counts, kept within the machine; smoke/small scales
  // fall back to max_threads so the comparison always produces data.
  std::vector<std::uint32_t> thread_counts;
  for (std::uint32_t t : {8u, 16u, 24u, 32u}) {
    if (t <= scale.max_threads) thread_counts.push_back(t);
  }
  if (thread_counts.empty()) thread_counts.push_back(scale.max_threads);

  for (std::uint32_t threads : thread_counts) {
    // Paper placement: S grows as nodes fill (8 threads per node).
    const std::uint32_t nodes = std::max(1u, (threads + 7) / 8);
    std::printf("-- %u update threads (S=%u NUMA nodes) --\n", threads, nodes);
    Table t({"target_r", "qc_b", "qc_r", "qc_tput", "fcds_B", "fcds_r", "fcds_tput"});

    for (std::uint64_t target_r :
         {20'000ull, 30'000ull, 50'000ull, 80'000ull, 120'000ull, 200'000ull, 400'000ull}) {
      // Quancurrent: b from r = 4kS + (N−S)b, rounded down to a divisor of 2k.
      std::uint64_t b = analysis::quancurrent_buffer_for_relaxation(target_r, k, nodes,
                                                                    threads);
      while (b > 1 && (2ull * k) % b != 0) --b;
      std::string qc_b = "-", qc_r = "-", qc_tput = "-";
      const std::string key_prefix =
          "t" + std::to_string(threads) + "_r" + std::to_string(target_r);
      if (b >= 1 && threads > nodes) {
        const double tput = bench::average_runs(scale.runs, [&] {
          core::Options o;
          o.k = k;
          o.b = static_cast<std::uint32_t>(b);
          o.topology = numa::Topology::virtual_nodes(nodes, 8);
          core::Quancurrent<double> sk(o);
          return throughput(data.size(), bench::ingest_quancurrent(sk, data, threads));
        });
        qc_b = Table::integer(b);
        qc_r = Table::integer(analysis::quancurrent_relaxation(k, nodes, threads, b));
        qc_tput = Table::mops(tput);
        kv.add(key_prefix + "_qc_mops", tput / 1e6);
      }

      // FCDS: B from r = 2NB.
      const std::uint64_t B = analysis::fcds_buffer_for_relaxation(target_r, threads);
      std::string f_tput = "-";
      if (B >= 1) {
        const double tput = bench::average_runs(scale.runs, [&] {
          fcds::FcdsQuantiles<double>::Options fo;
          fo.k = k;
          fo.worker_buffer = B;
          fo.num_workers = threads;
          fo.publish_every = 1u << 20;  // update-only: no snapshot publishing
          fcds::FcdsQuantiles<double> f(fo);
          return throughput(data.size(), bench::ingest_fcds(f, data, threads));
        });
        f_tput = Table::mops(tput);
        kv.add(key_prefix + "_fcds_mops", tput / 1e6);
      }
      t.add_row({Table::integer(target_r), qc_b, qc_r, qc_tput, Table::integer(B),
                 Table::integer(analysis::fcds_relaxation(threads, B)), f_tput});
    }
    t.print();
    std::printf("\n");
  }
  const std::string json_dir = bench::json_out_dir();
  if (!json_dir.empty()) {
    const std::string path = json_dir + "/BENCH_fig10.json";
    if (kv.write_file(path)) std::printf("wrote %s\n", path.c_str());
  }
  std::printf("paper shape: QC throughput ~flat in r; FCDS needs ~10x larger r to match.\n");
  return 0;
}
