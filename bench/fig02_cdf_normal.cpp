// Figure 2: Quancurrent quantiles vs. exact CDF.
// Paper parameters: k = 1024, normal distribution, 32 update threads,
// 10M elements.  For each φ the paper plots the exact CDF rank ⌊φn⌋ and the
// exact rank of Quancurrent's estimate; the two curves should coincide.
//
// Env: QC_SCALE/QC_KEYS/QC_MAX_THREADS, QC_K (default 1024).
#include <cstdio>

#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/exact_quantiles.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 1024));
  const std::uint32_t threads = std::min<std::uint32_t>(32, scale.max_threads);

  std::printf("=== Figure 2: Quancurrent vs exact CDF ===\n");
  std::printf("k=%u b=16 threads=%u n=%llu dist=normal\n\n", k, threads,
              static_cast<unsigned long long>(scale.keys));

  core::Options o;
  o.k = k;
  o.b = 16;
  o.topology = numa::Topology::virtual_nodes(4, 8);
  core::Quancurrent<double> sk(o);

  auto data = stream::make_stream(stream::Distribution::kNormal, scale.keys, 2023);
  bench::ingest_quancurrent(sk, data, threads, /*quiesce=*/true);
  stream::ExactQuantiles<double> exact(std::move(data));

  auto q = sk.make_querier();
  q.refresh();

  Table t({"phi", "exact_rank", "quancurrent_rank", "rank_err(x1e-4)"});
  double max_err = 0;
  for (double phi : bench::phi_grid(25)) {
    const double est = q.quantile(phi);
    const auto est_rank = exact.rank(est);
    const auto target = static_cast<std::uint64_t>(phi * static_cast<double>(exact.size()));
    const double err = exact.rank_error(est, phi);
    max_err = std::max(max_err, err);
    t.add_row({Table::num(phi, 2), Table::integer(target), Table::integer(est_rank),
               Table::num(err * 1e4, 1)});
  }
  t.print();
  std::printf("\nmax normalized rank error: %.5f (paper: curves visually coincide)\n",
              max_err);
  return 0;
}
