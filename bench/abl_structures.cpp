// Ablation A2: structural choices — snapshot caching and Gather&Sort
// double-buffering.
//  (a) querier snapshot cache on (incremental refresh) vs off (refresh_full
//      on every query) in a mixed workload: quantifies Figure 6c's caching
//      claim in isolation;
//  (b) one vs two G&S buffers per node (rho = 1 vs rho = 2) in update-only:
//      quantifies the ingestion/propagation overlap the second buffer
//      provides.
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS/QC_MAX_THREADS, QC_K, QC_B.
#include <cstdio>

#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 1024));
  const std::uint32_t b = static_cast<std::uint32_t>(env::get_u64("QC_B", 16));

  std::printf("=== Ablation A2: snapshot cache & G&S double-buffering ===\n");
  std::printf("k=%u b=%u n=%llu runs=%u\n\n", k, b,
              static_cast<unsigned long long>(scale.keys), scale.runs);

  const auto data = stream::make_stream(stream::Distribution::kUniform, scale.keys, 13);

  // (a) querier snapshot cache.
  {
    std::printf("-- (a) snapshot cache in a mixed workload (2 upd, 4 qry) --\n");
    Table t({"cache", "query_tput", "update_tput", "miss_rate"});
    for (bool cache_off : {false, true}) {
      core::Options o;
      o.k = k;
      o.b = b;
      o.collect_stats = true;
      o.topology = numa::Topology::virtual_nodes(1, 8);
      core::Quancurrent<double> sk(o);
      bench::ingest_quancurrent(sk, data, 2, /*quiesce=*/true);
      const auto r = bench::run_mixed(sk, data, 2, 4, /*full_refresh=*/cache_off);
      t.add_row({cache_off ? "off" : "on", Table::mops(r.query_throughput),
                 Table::mops(r.update_throughput), Table::percent(r.query_miss_rate)});
    }
    t.print();
  }

  // (b) single vs double G&S buffer.
  {
    std::printf("\n-- (b) Gather&Sort buffers per node (update-only) --\n");
    Table t({"threads", "double_buffer", "single_buffer", "ratio"});
    for (std::uint32_t threads : bench::thread_sweep(scale.max_threads)) {
      auto measure = [&](bool single) {
        return bench::average_runs(scale.runs, [&] {
          core::Options o;
          o.k = k;
          o.b = b;
          o.rho = single ? 1 : 2;  // Gather&Sort buffers per node
          o.topology = numa::Topology::virtual_nodes(4, 8);
          core::Quancurrent<double> sk(o);
          return throughput(data.size(), bench::ingest_quancurrent(sk, data, threads));
        });
      };
      const double two = measure(false);
      const double one = measure(true);
      t.add_row({Table::integer(threads), Table::mops(two), Table::mops(one),
                 Table::num(two / one, 2) + "x"});
    }
    t.print();
  }
  std::printf("\nexpected: cache lifts query throughput sharply; the second buffer\n"
              "helps once several threads share a node.\n");
  return 0;
}
