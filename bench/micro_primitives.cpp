// Micro-benchmarks for Quancurrent's substrates: MCAS/DCAS, tritmap
// arithmetic, IBR allocation/retirement, sorting and sampling primitives.
// These quantify the constants behind the figure-level results (e.g. the
// cost of one DCAS bounds the batch-update rate: one DCAS per 2k elements).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "atomics/mcas.hpp"
#include "atomics/tritmap.hpp"
#include "common/rng.hpp"
#include "core/owner_sort.hpp"
#include "reclamation/ibr.hpp"
#include "sequential/quantiles_sketch.hpp"
#include "stream/generators.hpp"

namespace {

void BM_TritmapStreamSize(benchmark::State& state) {
  qc::Tritmap t(0);
  for (std::uint32_t i = 0; i < 20; ++i) t = t.with_trit(i, 1 + (i % 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.stream_size(4096));
  }
}
BENCHMARK(BM_TritmapStreamSize);

void BM_TritmapTransition(benchmark::State& state) {
  qc::Tritmap t(0);
  for (auto _ : state) {
    qc::Tritmap u = t.after_batch_update();
    benchmark::DoNotOptimize(u.after_install_propagation(0));
  }
}
BENCHMARK(BM_TritmapTransition);

void BM_SingleWordCas(benchmark::State& state) {
  std::atomic<std::uint64_t> w{0};
  std::uint64_t v = 0;
  for (auto _ : state) {
    w.compare_exchange_strong(v, v + 1);
    ++v;
  }
}
BENCHMARK(BM_SingleWordCas);

void BM_Dcas(benchmark::State& state) {
  qc::ibr::Domain domain;
  qc::mcas::Mcas mcas(domain);
  auto th = domain.register_thread();
  std::atomic<qc::mcas::Word> a{0}, b{0};
  qc::mcas::Word va = 0, vb = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcas.dcas(th, a, va, va + 1, b, vb, vb + 1));
    ++va;
    ++vb;
  }
}
BENCHMARK(BM_Dcas);

void BM_DcasRead(benchmark::State& state) {
  qc::ibr::Domain domain;
  qc::mcas::Mcas mcas(domain);
  auto th = domain.register_thread();
  std::atomic<qc::mcas::Word> a{42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcas.read(th, a));
  }
}
BENCHMARK(BM_DcasRead);

void BM_IbrAllocRetire(benchmark::State& state) {
  qc::ibr::Domain domain;
  auto th = domain.register_thread();
  for (auto _ : state) {
    int* p = domain.make<int>(th, 1);
    domain.retire(th, p);
  }
}
BENCHMARK(BM_IbrAllocRetire);

void BM_IbrGuard(benchmark::State& state) {
  qc::ibr::Domain domain;
  auto th = domain.register_thread();
  std::atomic<std::uint64_t> w{7};
  for (auto _ : state) {
    qc::ibr::Guard g(th);
    benchmark::DoNotOptimize(g.protect_word(w));
  }
}
BENCHMARK(BM_IbrGuard);

void BM_SortBatch(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  auto data = qc::stream::make_stream(qc::stream::Distribution::kUniform, 2 * k, 3);
  std::vector<double> scratch(2 * k);
  for (auto _ : state) {
    std::copy(data.begin(), data.end(), scratch.begin());
    std::sort(scratch.begin(), scratch.end());
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * k));
}
BENCHMARK(BM_SortBatch)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MergeAndSample(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  auto a = qc::stream::make_stream(qc::stream::Distribution::kUniform, k, 5);
  auto b = qc::stream::make_stream(qc::stream::Distribution::kUniform, k, 6);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  bool coin = false;
  for (auto _ : state) {
    auto merged = qc::sketch::merge_sorted(std::span<const double>(a), std::span<const double>(b));
    auto sampled = qc::sketch::sample_odd_or_even(std::span<const double>(merged), coin);
    coin = !coin;
    benchmark::DoNotOptimize(sampled.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * k));
}
BENCHMARK(BM_MergeAndSample)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SequentialSketchUpdate(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  auto data = qc::stream::make_stream(qc::stream::Distribution::kUniform, 1 << 16, 7);
  qc::sketch::QuantilesSketch<double> sk(k);
  std::size_t i = 0;
  for (auto _ : state) {
    sk.update(data[i]);
    i = (i + 1) % data.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SequentialSketchUpdate)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Xoshiro(benchmark::State& state) {
  qc::Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}
BENCHMARK(BM_Xoshiro);

// Owner-copy sorting: std::sort of the full 2k copy vs merging the
// b-sorted writer runs (core/owner_sort.hpp) — the propagation-cost
// optimization DESIGN.md calls out.
void BM_OwnerSortStd(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t b = 16;
  auto runs = qc::stream::make_stream(qc::stream::Distribution::kUniform, 2 * k, 9);
  for (std::size_t begin = 0; begin < runs.size(); begin += b) {
    std::sort(runs.begin() + begin, runs.begin() + begin + b);
  }
  std::vector<double> scratch;
  for (auto _ : state) {
    scratch = runs;
    qc::core::sort_owner_copy(scratch, static_cast<std::uint32_t>(b),
                              qc::core::OwnerSortStrategy::kStdSort, std::less<double>());
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * k));
}
BENCHMARK(BM_OwnerSortStd)->Arg(1024)->Arg(4096);

void BM_OwnerSortRunMerge(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t b = 16;
  auto runs = qc::stream::make_stream(qc::stream::Distribution::kUniform, 2 * k, 9);
  for (std::size_t begin = 0; begin < runs.size(); begin += b) {
    std::sort(runs.begin() + begin, runs.begin() + begin + b);
  }
  std::vector<double> scratch;
  for (auto _ : state) {
    scratch = runs;
    qc::core::sort_owner_copy(scratch, static_cast<std::uint32_t>(b),
                              qc::core::OwnerSortStrategy::kRunMerge, std::less<double>());
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * k));
}
BENCHMARK(BM_OwnerSortRunMerge)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
