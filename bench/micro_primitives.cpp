// Micro-benchmarks for the engine's primitives, covering both hot paths.
//
// Query side: merge-based summary refresh vs. the old global-sort refresh,
// incremental (tritmap-diff) refresh vs. full re-copy, binary-search
// quantiles vs. the old linear scan.  These quantify the constants behind
// fig06b/fig06c.
//
// Ingest side: the owner's Gather&Sort cost — multiway merge of pre-sorted
// b-chunks vs. the full-sort baseline (radix batch_sort and std::sort) across
// k x b — plus an install-combining depth sweep and the substrate ops (batch
// radix sort, tritmap arithmetic).  These quantify the constants behind
// fig06a/fig07a/fig07b; results land in BENCH_ingest_micro.json.
//
// Env: QC_SCALE/QC_KEYS, QC_K, QC_B, QC_BENCH_JSON.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "atomics/tritmap.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "common/timer.hpp"
#include "core/batch_sort.hpp"
#include "core/quancurrent.hpp"
#include "core/run_merge.hpp"
#include "stream/generators.hpp"

namespace {

// Keeps `v` observable so the compiler cannot elide the benchmarked work.
template <typename T>
inline void keep(const T& v) {
  asm volatile("" : : "g"(v) : "memory");
}

// Average seconds per call of fn() over `iters` calls.
template <typename Fn>
double time_per_op(std::uint64_t iters, Fn&& fn) {
  qc::Timer t;
  for (std::uint64_t i = 0; i < iters; ++i) fn();
  return t.seconds() / static_cast<double>(iters);
}

// Best-of-3 average: reruns the timing loop and keeps the fastest repetition,
// shedding frequency wobble and scheduler noise on shared CI runners.
template <typename Fn>
double best_time_per_op(std::uint64_t iters, Fn&& fn) {
  double best = time_per_op(iters, fn);
  for (int rep = 0; rep < 2; ++rep) best = std::min(best, time_per_op(iters, fn));
  return best;
}

std::string nanos(double seconds) { return qc::Table::num(seconds * 1e9, 1) + " ns"; }
std::string micros(double seconds) { return qc::Table::num(seconds * 1e6, 2) + " us"; }

}  // namespace

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 4096));
  const std::uint32_t b = static_cast<std::uint32_t>(env::get_u64("QC_B", 16));

  std::printf("=== micro_primitives ===\n");
  std::printf("k=%u b=%u n=%llu\n\n", k, b,
              static_cast<unsigned long long>(scale.keys));

  Table t({"case", "time/op", "note"});

  // ----- query path: refresh strategies on a quiesced sketch ---------------
  core::Options o;
  o.k = k;
  o.b = b;
  core::Quancurrent<double> sk(o);
  const auto data = stream::make_stream(stream::Distribution::kUniform, scale.keys, 7);
  bench::ingest_quancurrent(sk, data, 4, /*quiesce=*/true);
  const std::uint64_t retained = sk.retained();
  const std::uint64_t refresh_iters = std::clamp<std::uint64_t>(
      50'000'000 / std::max<std::uint64_t>(retained, 1), 10, 2000);

  auto q = sk.make_querier();
  q.set_sort_baseline(true);
  const double sort_refresh =
      time_per_op(refresh_iters, [&] { q.refresh_full(); });
  q.set_sort_baseline(false);
  const double merge_refresh =
      time_per_op(refresh_iters, [&] { q.refresh_full(); });
  const double incr_refresh = time_per_op(refresh_iters * 100, [&] { q.refresh(); });

  t.add_row({"refresh: global sort (old)", micros(sort_refresh),
             "R=" + Table::integer(retained)});
  t.add_row({"refresh: multiway merge", micros(merge_refresh),
             Table::num(sort_refresh / merge_refresh, 2) + "x vs sort"});
  t.add_row({"refresh: incremental (no change)", nanos(incr_refresh), "O(1) fast path"});

  // ----- query path: quantile/rank on a frozen snapshot --------------------
  q.refresh();
  const auto& summary = q.summary();
  double phi = 0.0;
  const double quantile_bsearch = time_per_op(1'000'000, [&] {
    phi += 0.001;
    if (phi >= 1.0) phi = 0.001;
    keep(q.quantile(phi));
  });
  // The old linear scan over the summary, for comparison.
  phi = 0.0;
  const double quantile_linear = time_per_op(
      retained > 4'000'000 ? 10'000 : 100'000, [&] {
        phi += 0.001;
        if (phi >= 1.0) phi = 0.001;
        const auto prefix = summary.prefix_weights();
        const double target = phi * static_cast<double>(summary.total_weight());
        std::size_t i = 0;
        while (i < prefix.size() && static_cast<double>(prefix[i]) < target) ++i;
        keep(summary.items()[std::min(i, summary.items().size() - 1)]);
      });
  double rv = 0.0;
  const double rank_bsearch = time_per_op(1'000'000, [&] {
    rv += 0.001;
    if (rv >= 1.0) rv = 0.001;
    keep(q.rank(rv));
  });
  t.add_row({"quantile: binary search", nanos(quantile_bsearch), "O(log R)"});
  t.add_row({"quantile: linear scan (old)", nanos(quantile_linear),
             Table::num(quantile_linear / quantile_bsearch, 1) + "x slower"});
  t.add_row({"rank: binary search", nanos(rank_bsearch), "O(log R)"});

  // ----- merge primitive on synthetic runs ---------------------------------
  {
    const std::size_t levels = 16;
    std::vector<std::vector<double>> run_data(levels);
    std::vector<core::RunRef<double>> runs;
    for (std::size_t l = 0; l < levels; ++l) {
      run_data[l] = stream::make_stream(stream::Distribution::kUniform, k, 100 + l);
      std::sort(run_data[l].begin(), run_data[l].end());
      runs.push_back({run_data[l].data(), run_data[l].size(), 1ULL << l});
    }
    core::WeightedSummary<double> out;
    core::RunMerger<double> merger;
    std::vector<std::pair<double, std::uint64_t>> scratch;
    const auto span = std::span<const core::RunRef<double>>(runs);
    const double merge_t =
        time_per_op(200, [&] { merger.merge(span, out); });
    const double sort_t =
        time_per_op(200, [&] { core::sort_merge_runs(span, out, scratch); });
    t.add_row({"merge_runs (16 x k)", micros(merge_t), "loser tree"});
    t.add_row({"sort_merge_runs (16 x k)", micros(sort_t),
               Table::num(sort_t / merge_t, 2) + "x vs merge"});
  }

  // ----- ingest path: Gather&Sort = chunk merge vs full sort ---------------
  //
  // The batch owner's critical-path work per 2k batch: merging the gather
  // buffer's 2k/b pre-sorted chunks (the new pipeline; chunk sorting happened
  // on the writer threads) vs sorting the full 2k buffer from scratch (the
  // baseline; radix batch_sort and std::sort).  "merge" is the production
  // ChunkMerger (interleaved pairwise), "tree" the generic loser-tree raw
  // merge.  Cost accounting mirrors flush_chunk exactly: the merge writes the
  // sorted batch straight into the install cell, while a full sort works on
  // the gather buffer in place and then memcpys into the cell — so the sort
  // variants are charged sort + cell copy (the input re-copy that only
  // exists because the benchmark loop reruns the sort is subtracted).
  bench::JsonKv ingest_json("micro_ingest_primitives", scale.name);
  bool gather_merge_wins = true;
  {
    std::printf("gather path: chunk merge vs full sort (owner cost per 2k batch)\n");
    Table g({"k", "b", "chunks", "merge", "tree", "batch_sort", "std::sort",
             "sort/merge"});
    for (const std::uint32_t gk : {256u, 1024u, 4096u}) {
      for (const std::uint32_t gb : {16u, 64u, 256u}) {
        if (gb > 2 * gk) continue;
        const std::size_t cap = 2 * static_cast<std::size_t>(gk);
        auto raw = stream::make_stream(stream::Distribution::kUniform, cap, 11);
        // Pre-sorted-chunk image of the same data, as updaters would flush it.
        auto chunked = raw;
        for (std::size_t off = 0; off < cap; off += gb) {
          std::sort(chunked.begin() + static_cast<std::ptrdiff_t>(off),
                    chunked.begin() + static_cast<std::ptrdiff_t>(off + gb));
        }
        std::vector<double> out(cap);
        std::vector<double> work(cap);
        std::vector<double> aux;
        std::vector<core::RunRef<double>> runs;
        core::chunk_runs(std::span<const double>(chunked), gb, runs);
        core::ChunkMerger<double> chunk_merger;
        core::RunMerger<double> tree_merger;
        const auto runs_span = std::span<const core::RunRef<double>>(runs);
        const std::uint64_t iters = std::max<std::uint64_t>(2'000'000 / cap, 50);
        const double copy_t = best_time_per_op(iters, [&] {
          std::copy(raw.begin(), raw.end(), work.begin());
          keep(work.data());
        });
        const double merge_t = best_time_per_op(iters, [&] {
          chunk_merger.merge(std::span<const double>(chunked), gb,
                             std::span<double>(out));
          keep(out.data());
        });
        const double tree_t = best_time_per_op(iters, [&] {
          tree_merger.merge_items(runs_span, std::span<double>(out));
          keep(out.data());
        });
        // sort variants: reset input (subtracted), sort in place, copy the
        // sorted batch into the install cell (`out`) as flush_chunk does.
        const double radix_t = best_time_per_op(iters, [&] {
          std::copy(raw.begin(), raw.end(), work.begin());
          core::batch_sort(std::span<double>(work), aux);
          std::memcpy(out.data(), work.data(), cap * sizeof(double));
          keep(out.data());
        }) - copy_t;
        const double std_t = best_time_per_op(iters, [&] {
          std::copy(raw.begin(), raw.end(), work.begin());
          std::sort(work.begin(), work.end());
          std::memcpy(out.data(), work.data(), cap * sizeof(double));
          keep(out.data());
        }) - copy_t;
        const double best_sort = std::min(radix_t, std_t);
        if (gk >= 1024 && merge_t >= best_sort) gather_merge_wins = false;
        g.add_row({Table::integer(gk), Table::integer(gb),
                   Table::integer(cap / gb), micros(merge_t), micros(tree_t),
                   micros(radix_t), micros(std_t),
                   Table::num(best_sort / merge_t, 2) + "x"});
        char key[64];
        std::snprintf(key, sizeof(key), "gather_merge_us_k%u_b%u", gk, gb);
        ingest_json.add(key, merge_t * 1e6);
        std::snprintf(key, sizeof(key), "gather_sort_us_k%u_b%u", gk, gb);
        ingest_json.add(key, best_sort * 1e6);
      }
    }
    g.print();
    std::printf("\n");
  }

  // ----- ingest path: install-combining depth sweep ------------------------
  //
  // Cost per installed batch when the drainer combines d queued batches per
  // latch hold: enqueue_batch parks pre-sorted batches without draining, then
  // drain_installs() installs them in groups of d, amortizing the latch
  // acquisition, tritmap CAS, and publication across the group.
  {
    std::printf("install combining: drain cost per batch vs depth\n");
    Table c({"depth", "time/batch", "note"});
    const std::uint32_t ck = 1024;
    const std::size_t ccap = 2 * static_cast<std::size_t>(ck);
    auto batch_data = stream::make_stream(stream::Distribution::kUniform, ccap, 13);
    std::sort(batch_data.begin(), batch_data.end());
    const auto batch_span = std::span<const double>(batch_data);
    for (const std::uint32_t depth : {1u, 2u, 4u, 8u}) {
      core::Options o;
      o.k = ck;
      o.install_combine = depth;
      o.install_queue = 16;
      core::Quancurrent<double> sk(o);
      const std::uint64_t rounds = 200;
      qc::Timer timer;
      for (std::uint64_t r = 0; r < rounds; ++r) {
        for (std::uint32_t i = 0; i < 8; ++i) sk.enqueue_batch(batch_span);
        sk.drain_installs();
      }
      const double per_batch = timer.seconds() / static_cast<double>(rounds * 8);
      c.add_row({Table::integer(depth), micros(per_batch),
                 depth == 1 ? "no combining (baseline)" : ""});
      char key[64];
      std::snprintf(key, sizeof(key), "install_us_per_batch_depth%u", depth);
      ingest_json.add(key, per_batch * 1e6);
    }
    c.print();
    std::printf("\n");
  }

  // ----- ingest substrates -------------------------------------------------
  {
    auto batch = stream::make_stream(stream::Distribution::kUniform, 2 * k, 3);
    std::vector<double> work(batch.size());
    std::vector<double> aux;
    const double radix_t = time_per_op(200, [&] {
      std::copy(batch.begin(), batch.end(), work.begin());
      core::batch_sort(std::span<double>(work), aux);
      keep(work.data());
    });
    const double std_t = time_per_op(200, [&] {
      std::copy(batch.begin(), batch.end(), work.begin());
      std::sort(work.begin(), work.end());
      keep(work.data());
    });
    t.add_row({"batch_sort (radix, 2k)", micros(radix_t), ""});
    t.add_row({"std::sort (2k)", micros(std_t),
               Table::num(std_t / radix_t, 2) + "x vs radix"});

    Tritmap tm(0);
    for (std::uint32_t i = 0; i < 20; ++i) tm = tm.with_trit(i, 1 + (i % 2));
    const double size_t_ = time_per_op(1'000'000, [&] { keep(tm.stream_size(k)); });
    const double trans_t = time_per_op(1'000'000, [&] {
      const Tritmap u = tm.with_trit(0, 0).after_batch_update();
      keep(u.after_install_propagation(0));
    });
    t.add_row({"tritmap stream_size", nanos(size_t_), ""});
    t.add_row({"tritmap batch+propagate", nanos(trans_t), ""});
  }

  t.print();

  if (merge_refresh < sort_refresh) {
    std::printf("\nmerge-based refresh beats sort-based refresh by %.2fx\n",
                sort_refresh / merge_refresh);
  } else {
    std::printf("\nWARNING: merge-based refresh did NOT beat sort-based refresh\n");
  }
  if (gather_merge_wins) {
    std::printf("chunk-merge Gather&Sort beats the full-sort baseline at k >= 1024\n");
  } else {
    std::printf("WARNING: chunk-merge Gather&Sort did NOT beat the full-sort "
                "baseline at some k >= 1024 configuration\n");
  }

  const std::string dir = bench::json_out_dir();
  if (!dir.empty()) {
    const std::string path = dir + "/BENCH_ingest_micro.json";
    if (ingest_json.write_file(path)) std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
