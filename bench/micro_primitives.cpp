// Micro-benchmarks for the engine's primitives, centered on the query path:
// merge-based summary refresh vs. the old global-sort refresh, incremental
// (tritmap-diff) refresh vs. full re-copy, binary-search quantiles vs. the
// old linear scan, plus the ingest-side substrates (batch radix sort,
// tritmap arithmetic).  These quantify the constants behind fig06b/fig06c.
//
// Env: QC_SCALE/QC_KEYS, QC_K, QC_B.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <span>
#include <vector>

#include "atomics/tritmap.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "common/timer.hpp"
#include "core/batch_sort.hpp"
#include "core/quancurrent.hpp"
#include "core/run_merge.hpp"
#include "stream/generators.hpp"

namespace {

// Keeps `v` observable so the compiler cannot elide the benchmarked work.
template <typename T>
inline void keep(const T& v) {
  asm volatile("" : : "g"(v) : "memory");
}

// Average seconds per call of fn() over `iters` calls.
template <typename Fn>
double time_per_op(std::uint64_t iters, Fn&& fn) {
  qc::Timer t;
  for (std::uint64_t i = 0; i < iters; ++i) fn();
  return t.seconds() / static_cast<double>(iters);
}

std::string nanos(double seconds) { return qc::Table::num(seconds * 1e9, 1) + " ns"; }
std::string micros(double seconds) { return qc::Table::num(seconds * 1e6, 2) + " us"; }

}  // namespace

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 4096));
  const std::uint32_t b = static_cast<std::uint32_t>(env::get_u64("QC_B", 16));

  std::printf("=== micro_primitives ===\n");
  std::printf("k=%u b=%u n=%llu\n\n", k, b,
              static_cast<unsigned long long>(scale.keys));

  Table t({"case", "time/op", "note"});

  // ----- query path: refresh strategies on a quiesced sketch ---------------
  core::Options o;
  o.k = k;
  o.b = b;
  core::Quancurrent<double> sk(o);
  const auto data = stream::make_stream(stream::Distribution::kUniform, scale.keys, 7);
  bench::ingest_quancurrent(sk, data, 4, /*quiesce=*/true);
  const std::uint64_t retained = sk.retained();
  const std::uint64_t refresh_iters = std::clamp<std::uint64_t>(
      50'000'000 / std::max<std::uint64_t>(retained, 1), 10, 2000);

  auto q = sk.make_querier();
  q.set_sort_baseline(true);
  const double sort_refresh =
      time_per_op(refresh_iters, [&] { q.refresh_full(); });
  q.set_sort_baseline(false);
  const double merge_refresh =
      time_per_op(refresh_iters, [&] { q.refresh_full(); });
  const double incr_refresh = time_per_op(refresh_iters * 100, [&] { q.refresh(); });

  t.add_row({"refresh: global sort (old)", micros(sort_refresh),
             "R=" + Table::integer(retained)});
  t.add_row({"refresh: multiway merge", micros(merge_refresh),
             Table::num(sort_refresh / merge_refresh, 2) + "x vs sort"});
  t.add_row({"refresh: incremental (no change)", nanos(incr_refresh), "O(1) fast path"});

  // ----- query path: quantile/rank on a frozen snapshot --------------------
  q.refresh();
  const auto& summary = q.summary();
  double phi = 0.0;
  const double quantile_bsearch = time_per_op(1'000'000, [&] {
    phi += 0.001;
    if (phi >= 1.0) phi = 0.001;
    keep(q.quantile(phi));
  });
  // The old linear scan over the summary, for comparison.
  phi = 0.0;
  const double quantile_linear = time_per_op(
      retained > 4'000'000 ? 10'000 : 100'000, [&] {
        phi += 0.001;
        if (phi >= 1.0) phi = 0.001;
        const auto prefix = summary.prefix_weights();
        const double target = phi * static_cast<double>(summary.total_weight());
        std::size_t i = 0;
        while (i < prefix.size() && static_cast<double>(prefix[i]) < target) ++i;
        keep(summary.items()[std::min(i, summary.items().size() - 1)]);
      });
  double rv = 0.0;
  const double rank_bsearch = time_per_op(1'000'000, [&] {
    rv += 0.001;
    if (rv >= 1.0) rv = 0.001;
    keep(q.rank(rv));
  });
  t.add_row({"quantile: binary search", nanos(quantile_bsearch), "O(log R)"});
  t.add_row({"quantile: linear scan (old)", nanos(quantile_linear),
             Table::num(quantile_linear / quantile_bsearch, 1) + "x slower"});
  t.add_row({"rank: binary search", nanos(rank_bsearch), "O(log R)"});

  // ----- merge primitive on synthetic runs ---------------------------------
  {
    const std::size_t levels = 16;
    std::vector<std::vector<double>> run_data(levels);
    std::vector<core::RunRef<double>> runs;
    for (std::size_t l = 0; l < levels; ++l) {
      run_data[l] = stream::make_stream(stream::Distribution::kUniform, k, 100 + l);
      std::sort(run_data[l].begin(), run_data[l].end());
      runs.push_back({run_data[l].data(), run_data[l].size(), 1ULL << l});
    }
    core::WeightedSummary<double> out;
    core::RunMerger<double> merger;
    std::vector<std::pair<double, std::uint64_t>> scratch;
    const auto span = std::span<const core::RunRef<double>>(runs);
    const double merge_t =
        time_per_op(200, [&] { merger.merge(span, out); });
    const double sort_t =
        time_per_op(200, [&] { core::sort_merge_runs(span, out, scratch); });
    t.add_row({"merge_runs (16 x k)", micros(merge_t), "loser tree"});
    t.add_row({"sort_merge_runs (16 x k)", micros(sort_t),
               Table::num(sort_t / merge_t, 2) + "x vs merge"});
  }

  // ----- ingest substrates -------------------------------------------------
  {
    auto batch = stream::make_stream(stream::Distribution::kUniform, 2 * k, 3);
    std::vector<double> work(batch.size());
    std::vector<double> aux;
    const double radix_t = time_per_op(200, [&] {
      std::copy(batch.begin(), batch.end(), work.begin());
      core::batch_sort(std::span<double>(work), aux);
      keep(work.data());
    });
    const double std_t = time_per_op(200, [&] {
      std::copy(batch.begin(), batch.end(), work.begin());
      std::sort(work.begin(), work.end());
      keep(work.data());
    });
    t.add_row({"batch_sort (radix, 2k)", micros(radix_t), ""});
    t.add_row({"std::sort (2k)", micros(std_t),
               Table::num(std_t / radix_t, 2) + "x vs radix"});

    Tritmap tm(0);
    for (std::uint32_t i = 0; i < 20; ++i) tm = tm.with_trit(i, 1 + (i % 2));
    const double size_t_ = time_per_op(1'000'000, [&] { keep(tm.stream_size(k)); });
    const double trans_t = time_per_op(1'000'000, [&] {
      const Tritmap u = tm.with_trit(0, 0).after_batch_update();
      keep(u.after_install_propagation(0));
    });
    t.add_row({"tritmap stream_size", nanos(size_t_), ""});
    t.add_row({"tritmap batch+propagate", nanos(trans_t), ""});
  }

  t.print();

  if (merge_refresh < sort_refresh) {
    std::printf("\nmerge-based refresh beats sort-based refresh by %.2fx\n",
                sort_refresh / merge_refresh);
  } else {
    std::printf("\nWARNING: merge-based refresh did NOT beat sort-based refresh\n");
  }
  return 0;
}
