// Ablation A1: collaborative vs. serialized propagation.
// Quancurrent's §5.5 attributes FCDS's poor scaling to its single
// propagation thread.  This ablation re-creates that bottleneck *inside*
// Quancurrent by serializing all owner duties (batch update + propagation)
// behind one global lock, quantifying how much of the speedup comes from
// collaborative propagation alone.
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS/QC_MAX_THREADS, QC_K, QC_B.
#include <cstdio>
#include <string>

#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 4096));
  const std::uint32_t b = static_cast<std::uint32_t>(env::get_u64("QC_B", 16));

  std::printf("=== Ablation A1: collaborative vs serialized propagation ===\n");
  std::printf("k=%u b=%u n=%llu runs=%u\n\n", k, b,
              static_cast<unsigned long long>(scale.keys), scale.runs);

  const auto data = stream::make_stream(stream::Distribution::kUniform, scale.keys, 12);

  // Headline series: the collaborative arm's ingest throughput (the
  // regression-gated metric); the serialized arm rides along as counters so
  // the trajectory records the ratio without gating on the ablation arm.
  bench::JsonSeries json("abl_propagation", scale.name, "ops_per_sec");
  Table t({"threads", "collaborative", "serialized", "ratio"});
  for (std::uint32_t threads : bench::thread_sweep(scale.max_threads)) {
    auto measure = [&](bool serialize) {
      return bench::average_runs(scale.runs, [&] {
        core::Options o;
        o.k = k;
        o.b = b;
        o.serialize_propagation = serialize;
        o.topology = numa::Topology::virtual_nodes(4, 8);
        core::Quancurrent<double> sk(o);
        return throughput(data.size(), bench::ingest_quancurrent(sk, data, threads));
      });
    };
    const double collab = measure(false);
    const double serial = measure(true);
    json.add(threads, collab);
    json.counter("serialized_t" + std::to_string(threads), serial);
    t.add_row({Table::integer(threads), Table::mops(collab), Table::mops(serial),
               Table::num(collab / serial, 2) + "x"});
  }
  t.print();
  std::printf("\nexpected: ratio grows with threads — serialization caps scaling.\n");

  const std::string dir = bench::json_out_dir();
  if (!dir.empty()) {
    const std::string path = dir + "/BENCH_abl_propagation.json";
    if (json.write_file(path)) std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
