// Figure 6a: update-only throughput vs. number of update threads.
// Paper parameters: k = 4096, b = 16, 10M elements; Quancurrent scales
// linearly, reaching 12x the sequential sketch at 32 threads.
//
// Writes BENCH_ingest.json when QC_BENCH_JSON is set.
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS/QC_MAX_THREADS, QC_K, QC_B, QC_BENCH_JSON.
#include <cstdio>
#include <string>

#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 4096));
  const std::uint32_t b = static_cast<std::uint32_t>(env::get_u64("QC_B", 16));

  std::printf("=== Figure 6a: update-only throughput ===\n");
  std::printf("k=%u b=%u n=%llu runs=%u (paper: 12x sequential at 32 threads)\n\n", k, b,
              static_cast<unsigned long long>(scale.keys), scale.runs);

  const auto data = stream::make_stream(stream::Distribution::kUniform, scale.keys, 7);

  // Sequential baseline.
  const double seq_tput = bench::average_runs(scale.runs, [&] {
    sketch::QuantilesSketch<double> seq(k);
    return throughput(data.size(), bench::ingest_sequential(seq, data));
  });

  bench::JsonSeries json("fig06a_update_scaling", scale.name, "ops_per_sec");
  Table t({"threads", "quancurrent", "sequential", "speedup", "waits", "combines"});
  core::Stats last_stats;
  for (std::uint32_t threads : bench::thread_sweep(scale.max_threads)) {
    core::Stats run_stats;
    const double tput = bench::average_runs(scale.runs, [&] {
      core::Options o;
      o.k = k;
      o.b = b;
      o.collect_stats = true;
      o.topology = numa::Topology::virtual_nodes(4, 8);
      core::Quancurrent<double> sk(o);
      const double secs = bench::ingest_quancurrent(sk, data, threads);
      run_stats = sk.stats();
      return throughput(data.size(), secs);
    });
    last_stats = run_stats;  // contention profile at the widest thread count
    json.add(threads, tput);
    t.add_row({Table::integer(threads), Table::mops(tput), Table::mops(seq_tput),
               Table::num(tput / seq_tput, 2) + "x",
               Table::integer(run_stats.gather_waits + run_stats.latch_spins),
               Table::integer(run_stats.combined_installs)});
  }
  t.print();
  std::printf("\ncontention @ max threads: gather_waits=%llu latch_spins=%llu "
              "installs=%llu combined=%llu max_combine=%llu batches=%llu\n",
              static_cast<unsigned long long>(last_stats.gather_waits),
              static_cast<unsigned long long>(last_stats.latch_spins),
              static_cast<unsigned long long>(last_stats.installs),
              static_cast<unsigned long long>(last_stats.combined_installs),
              static_cast<unsigned long long>(last_stats.max_combine),
              static_cast<unsigned long long>(last_stats.batches));
  json.counter("gather_waits", static_cast<double>(last_stats.gather_waits));
  json.counter("latch_spins", static_cast<double>(last_stats.latch_spins));
  json.counter("installs", static_cast<double>(last_stats.installs));
  json.counter("combined_installs", static_cast<double>(last_stats.combined_installs));
  json.counter("max_combine", static_cast<double>(last_stats.max_combine));
  json.counter("batches", static_cast<double>(last_stats.batches));

  const std::string dir = bench::json_out_dir();
  if (!dir.empty()) {
    const std::string path = dir + "/BENCH_ingest.json";
    if (json.write_file(path)) std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
