// Figure 7c: query throughput and miss rate while varying the freshness
// threshold ρ = 1 + c·ε.
// Paper parameters: 8 update threads, 24 query threads, k = 1024, b = 16;
// ε is the sketch's error parameter; c sweeps {0, 0.5, 1, ..., 5}.
// Larger ρ serves more queries from the cache: throughput rises, miss rate
// falls.
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS/QC_MAX_THREADS, QC_K, QC_B.
#include <cstdio>

#include "analysis/error_bounds.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 1024));
  const std::uint32_t b = static_cast<std::uint32_t>(env::get_u64("QC_B", 16));
  const std::uint32_t upd = std::min<std::uint32_t>(
      static_cast<std::uint32_t>(env::get_u64("QC_UPD_THREADS", 8)), scale.max_threads);
  const std::uint32_t qry = std::min<std::uint32_t>(
      static_cast<std::uint32_t>(env::get_u64("QC_QRY_THREADS", 24)), scale.max_threads);

  const double eps = analysis::classic_sketch_epsilon(k);

  std::printf("=== Figure 7c: query throughput & miss rate vs rho ===\n");
  std::printf("k=%u b=%u upd=%u qry=%u eps(k)=%.5f\n\n", k, b, upd, qry, eps);

  const auto prefill = stream::make_stream(stream::Distribution::kUniform, scale.keys, 8);
  const auto updates = stream::make_stream(stream::Distribution::kUniform, scale.keys, 9);

  Table t({"rho", "query_tput", "update_tput", "miss_rate"});
  for (double c : {0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0}) {
    core::Options o;
    o.k = k;
    o.b = b;
    o.rho = 1.0 + c * eps;
    o.collect_stats = true;
    o.topology = numa::Topology::virtual_nodes(4, 8);
    core::Quancurrent<double> sk(o);
    bench::ingest_quancurrent(sk, prefill, std::min<std::uint32_t>(8, scale.max_threads),
                              /*quiesce=*/true);
    const auto r = bench::run_mixed(sk, updates, upd, qry);
    t.add_row({"1+" + Table::num(c, 1) + "e", Table::mops(r.query_throughput),
               Table::mops(r.update_throughput), Table::percent(r.query_miss_rate)});
  }
  t.print();
  std::printf("\npaper shape: higher rho -> higher query throughput, lower miss rate.\n");
  return 0;
}
