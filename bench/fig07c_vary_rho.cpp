// Figure 7c: throughput while varying ρ, the number of Gather&Sort buffers
// rotating per NUMA node.  ρ = 1 means every batch owner blocks ingestion
// into its buffer until Gather&Sort finishes; larger ρ lets writers roll to
// the next buffer while the owner merges, trading memory (ρ·nodes·2k items)
// for fewer gather waits.  Reported per ρ: update-only throughput, gather
// waits per batch, and mixed-workload update/query throughput.
//
// Writes BENCH_rho.json when QC_BENCH_JSON is set.
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS/QC_MAX_THREADS, QC_K, QC_B, QC_BENCH_JSON.
#include <cstdio>
#include <string>

#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 1024));
  const std::uint32_t b = static_cast<std::uint32_t>(env::get_u64("QC_B", 16));
  const std::uint32_t upd = std::min<std::uint32_t>(
      static_cast<std::uint32_t>(env::get_u64("QC_UPD_THREADS", 8)), scale.max_threads);
  const std::uint32_t qry = std::min<std::uint32_t>(
      static_cast<std::uint32_t>(env::get_u64("QC_QRY_THREADS", 4)), scale.max_threads);

  std::printf("=== Figure 7c: throughput vs rho (Gather&Sort buffers per node) ===\n");
  std::printf("k=%u b=%u upd=%u qry=%u n=%llu runs=%u\n\n", k, b, upd, qry,
              static_cast<unsigned long long>(scale.keys), scale.runs);

  const auto data = stream::make_stream(stream::Distribution::kUniform, scale.keys, 9);

  bench::JsonSeries json("fig07c_vary_rho", scale.name, "update_ops_per_sec_vs_rho");
  Table t({"rho", "update_tput", "waits/batch", "mixed_upd", "mixed_qry", "holes"});
  for (std::uint32_t rho : {1u, 2u, 3u, 4u, 6u, 8u}) {
    core::Stats upd_stats;
    const double upd_tput = bench::average_runs(scale.runs, [&] {
      core::Options o;
      o.k = k;
      o.b = b;
      o.rho = rho;
      o.collect_stats = true;
      o.topology = numa::Topology::virtual_nodes(4, 8);
      core::Quancurrent<double> sk(o);
      const double secs = bench::ingest_quancurrent(sk, data, upd);
      upd_stats = sk.stats();
      return throughput(data.size(), secs);
    });

    core::Options o;
    o.k = k;
    o.b = b;
    o.rho = rho;
    o.collect_stats = true;
    o.topology = numa::Topology::virtual_nodes(4, 8);
    core::Quancurrent<double> sk(o);
    const auto mixed = bench::run_mixed(sk, data, upd, qry);

    const double waits_per_batch =
        upd_stats.batches == 0 ? 0.0
                               : static_cast<double>(upd_stats.gather_waits) /
                                     static_cast<double>(upd_stats.batches);
    json.add(rho, upd_tput);
    t.add_row({Table::integer(rho), Table::mops(upd_tput),
               Table::num(waits_per_batch, 3), Table::mops(mixed.update_throughput),
               Table::mops(mixed.query_throughput), Table::integer(mixed.holes)});
    if (rho == 1 || rho == 8) {
      const std::string tag = "rho" + std::to_string(rho);
      json.counter(tag + "_gather_waits", static_cast<double>(upd_stats.gather_waits));
      json.counter(tag + "_batches", static_cast<double>(upd_stats.batches));
    }
  }
  t.print();
  std::printf("\npaper shape: gather waits fall as rho grows; throughput rises until "
              "buffers stop being the bottleneck.\n");

  const std::string dir = bench::json_out_dir();
  if (!dir.empty()) {
    const std::string path = dir + "/BENCH_rho.json";
    if (json.write_file(path)) std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
