// §4.1 holes analysis: the analytic bounds (E[H1] ≤ 1.4, halving per region,
// E[H] ≤ 2.8) tabulated per b, compared against empirical hole counts from
// Quancurrent's stats instrumentation.  Holes are counted by QUERIERS (a
// snapshot accepted after the retry budget), so the empirical column comes
// from a mixed workload — query threads refreshing as fast as they can while
// update threads install batches.
//
// Env: QC_SCALE/QC_KEYS/QC_MAX_THREADS, QC_K.
#include <cstdio>

#include "analysis/holes.hpp"
#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 1024));
  const std::uint32_t upd = std::min<std::uint32_t>(8, scale.max_threads);
  const std::uint32_t qry = std::min<std::uint32_t>(4, scale.max_threads);

  std::printf("=== Section 4.1: expected holes per 2k-batch ===\n");
  std::printf("k=%u upd=%u qry=%u n=%llu (bound assumes a uniform scheduler)\n\n", k, upd,
              qry, static_cast<unsigned long long>(scale.keys));

  const auto data = stream::make_stream(stream::Distribution::kUniform, scale.keys, 41);

  Table t({"b", "E[H1]_bound", "E[H2]_bound", "E[H]_bound", "holes/batch", "retries"});
  for (std::uint32_t b : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    core::Options o;
    o.k = k;
    o.b = b;
    o.collect_stats = true;
    o.topology = numa::Topology::virtual_nodes(1, 8);
    core::Quancurrent<double> sk(o);
    const auto r = bench::run_mixed(sk, data, upd, qry);
    const auto st = sk.stats();
    t.add_row({Table::integer(b), Table::num(analysis::expected_region_holes_bound(1, b), 4),
               Table::num(analysis::expected_region_holes_bound(2, b), 4),
               Table::num(analysis::expected_batch_holes_bound(k, b), 4),
               Table::num(st.hole_rate_per_batch(), 4), Table::integer(r.query_retries)});
  }
  t.print();
  std::printf("\npaper: E[H] <= 2.8 for every b (max E[H1] = 1.305 at b = 9).\n"
              "Empirical counts use a real (non-uniform) scheduler and bounded query\n"
              "retries; same order of magnitude is the expected outcome.\n");
  return 0;
}
