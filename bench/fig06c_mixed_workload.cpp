// Figure 6c: mixed update/query workload.
// Paper parameters: 1 or 2 update threads, a sweep of query threads,
// k = 1024, b = 16, 10M updates after a 10M prefill.  Shows how updates and
// queries interfere: installs force queriers off the O(1) incremental
// refresh path onto tritmap-diff re-copies, and snapshot retries/holes
// appear as installs race refreshes.
//
// Reports both throughputs plus refresh p50/p99 and hole/retry counts via
// the bench_util mixed-workload stats.
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS/QC_MAX_THREADS, QC_K, QC_B.
#include <algorithm>
#include <cstdio>

#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 1024));
  const std::uint32_t b = static_cast<std::uint32_t>(env::get_u64("QC_B", 16));

  std::printf("=== Figure 6c: mixed update/query workload ===\n");
  std::printf("k=%u b=%u prefill=%llu updates=%llu\n\n", k, b,
              static_cast<unsigned long long>(scale.keys),
              static_cast<unsigned long long>(scale.keys));

  const auto prefill = stream::make_stream(stream::Distribution::kUniform, scale.keys, 3);
  const auto updates = stream::make_stream(stream::Distribution::kUniform, scale.keys, 4);

  Table t({"upd", "qry", "rho", "update/s", "query/s", "p50_us", "p99_us", "holes",
           "retries"});
  for (std::uint32_t upd : {1u, 2u}) {
    for (std::uint32_t rho : {1u, 2u}) {
      for (std::uint32_t qry : {1u, 2u, 4u, 8u, 16u, 32u}) {
        if (upd + qry > scale.max_threads + 2) continue;
        core::Options o;
        o.k = k;
        o.b = b;
        o.rho = rho;
        o.collect_stats = true;
        o.topology = numa::Topology::virtual_nodes(4, 8);
        core::Quancurrent<double> sk(o);
        bench::ingest_quancurrent(sk, prefill,
                                  std::min<std::uint32_t>(8, scale.max_threads),
                                  /*quiesce=*/true);
        const auto r = bench::run_mixed(sk, updates, upd, qry);
        t.add_row({Table::integer(upd), Table::integer(qry), Table::integer(rho),
                   Table::mops(r.update_throughput), Table::mops(r.query_throughput),
                   Table::num(r.refresh_p50_us, 3), Table::num(r.refresh_p99_us, 3),
                   Table::integer(r.holes), Table::integer(r.query_retries)});
      }
    }
  }
  t.print();
  std::printf("\npaper shape: more update threads depress query throughput and vice\n"
              "versa; rho > 1 keeps ingestion (and thus interference) flowing.\n");
  return 0;
}
