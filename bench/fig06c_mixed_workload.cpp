// Figure 6c: mixed update/query workload.
// Paper parameters: 1 or 2 update threads, up to 32 query threads,
// k = 1024, b = 16, ε' ∈ {0.0, 0.05} (ρ = 1+ε'), 10M updates after a 10M
// prefill.  Shows that the snapshot cache (ρ > 0) is crucial for query
// throughput and that updates and queries interfere.
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS/QC_MAX_THREADS, QC_K, QC_B.
#include <cstdio>

#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 1024));
  const std::uint32_t b = static_cast<std::uint32_t>(env::get_u64("QC_B", 16));

  std::printf("=== Figure 6c: mixed update/query workload ===\n");
  std::printf("k=%u b=%u prefill=%llu updates=%llu (rho = 1 + eps')\n\n", k, b,
              static_cast<unsigned long long>(scale.keys),
              static_cast<unsigned long long>(scale.keys));

  const auto prefill = stream::make_stream(stream::Distribution::kUniform, scale.keys, 3);
  const auto updates = stream::make_stream(stream::Distribution::kUniform, scale.keys, 4);

  Table t({"upd_threads", "qry_threads", "eps'", "update_tput", "query_tput", "miss_rate"});
  for (std::uint32_t upd : {1u, 2u}) {
    for (double eps_prime : {0.0, 0.05}) {
      for (std::uint32_t qry : {1u, 2u, 4u, 8u, 16u, 24u, 32u}) {
        if (upd + qry > scale.max_threads + 2) continue;
        core::Options o;
        o.k = k;
        o.b = b;
        // Paper §5.2: "ρ = 0 (no caching)" — ε' = 0 disables the cache
        // entirely; ε' > 0 sets the freshness ratio ρ = 1 + ε'.
        o.rho = eps_prime == 0.0 ? 0.0 : 1.0 + eps_prime;
        o.collect_stats = true;
        o.topology = numa::Topology::virtual_nodes(4, 8);
        core::Quancurrent<double> sk(o);
        bench::ingest_quancurrent(sk, prefill,
                                  std::min<std::uint32_t>(8, scale.max_threads),
                                  /*quiesce=*/true);
        const auto r = bench::run_mixed(sk, updates, upd, qry);
        t.add_row({Table::integer(upd), Table::integer(qry), Table::num(eps_prime, 2),
                   Table::mops(r.update_throughput), Table::mops(r.query_throughput),
                   Table::percent(r.query_miss_rate)});
      }
    }
  }
  t.print();
  std::printf("\npaper shape: eps'=0.05 lifts query throughput by orders of magnitude;\n"
              "more update threads depress query throughput and vice versa.\n");
  return 0;
}
