// Extension E2: the paper's §6 future work — hole-tolerant concurrency for
// another sketch family.  Concurrent Θ (distinct counting) built from
// Quancurrent's Gather&Sort substrate vs. the obvious baseline (one
// sequential Θ sketch behind a mutex).
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS/QC_MAX_THREADS, QC_THETA_K.
#include <cmath>
#include <cstdio>
#include <mutex>
#include <string>

#include "bench_util/harness.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "common/timer.hpp"
#include "stream/generators.hpp"
#include "theta/concurrent_theta.hpp"
#include "theta/theta_sketch.hpp"

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k =
      static_cast<std::uint32_t>(env::get_u64("QC_THETA_K", 4096));

  std::printf("=== Extension E2: concurrent theta (distinct counting) ===\n");
  std::printf("k=%u n=%llu runs=%u distinct keys\n\n", k,
              static_cast<unsigned long long>(scale.keys), scale.runs);

  bench::JsonSeries series("ext_theta_scaling", scale.name, "concurrent_updates_per_sec");
  Table t({"threads", "concurrent", "mutex_baseline", "ratio", "est_rel_err"});
  for (std::uint32_t threads : bench::thread_sweep(scale.max_threads)) {
    const auto ranges = bench::split_ranges(scale.keys, threads);

    double est_err = 0;
    const double conc_tput = bench::average_runs(scale.runs, [&] {
      theta::ConcurrentTheta::Options o;
      o.k = k;
      o.b = 16;
      o.topology = numa::Topology::virtual_nodes(4, 8);
      theta::ConcurrentTheta sk(o);
      const double secs = bench::timed_parallel(threads, [&](std::uint32_t t) {
        auto up = sk.make_updater();
        for (std::size_t i = ranges[t].first; i < ranges[t].second; ++i) {
          up.update(static_cast<std::uint64_t>(i));
        }
        up.flush();
      });
      sk.drain();
      est_err = std::abs(sk.estimate() - static_cast<double>(scale.keys)) /
                static_cast<double>(scale.keys);
      return throughput(scale.keys, secs);
    });

    const double mutex_tput = bench::average_runs(scale.runs, [&] {
      theta::ThetaSketch sk(k);
      std::mutex mu;
      const double secs = bench::timed_parallel(threads, [&](std::uint32_t t) {
        for (std::size_t i = ranges[t].first; i < ranges[t].second; ++i) {
          std::lock_guard<std::mutex> lock(mu);
          sk.update(static_cast<std::uint64_t>(i));
        }
      });
      return throughput(scale.keys, secs);
    });

    t.add_row({Table::integer(threads), Table::mops(conc_tput), Table::mops(mutex_tput),
               Table::num(conc_tput / mutex_tput, 2) + "x", Table::num(est_err, 4)});
    series.add(threads, conc_tput);
    series.counter("mutex_mops_t" + std::to_string(threads), mutex_tput / 1e6);
    series.counter("est_rel_err_t" + std::to_string(threads), est_err);
  }
  t.print();
  const std::string json_dir = bench::json_out_dir();
  if (!json_dir.empty()) {
    const std::string path = json_dir + "/BENCH_theta.json";
    if (series.write_file(path)) std::printf("wrote %s\n", path.c_str());
  }
  std::printf("\nexpected: the theta-filtered, hole-tolerant design scales with\n"
              "threads while the mutex baseline is flat; estimates stay within\n"
              "KMV error (~%.4f for k=%u).\n", 3.0 / std::sqrt(k - 2.0), k);
  return 0;
}
