// Extension: the cost of durability (recovery/checkpoint.hpp).
//
// Two questions an operator sizing a checkpoint cadence needs answered:
//
//   1. Checkpoint latency vs sketch size — how long does one checkpoint()
//      (snapshot + CRC-framed encode + write + fsync + rename + dir fsync)
//      take as the sketch grows?  The snapshot rides the under-latch
//      serialize path, so retained bytes (~O(k log n)), not stream length,
//      set the encode cost; the fsyncs set the floor.
//   2. The ingest-throughput dip while checkpoints run — updaters contend
//      with serialize exactly as they do with merge_into, so back-to-back
//      checkpoints on a cadence shave some ingest throughput.  The dip, not
//      the latency, is what a production cadence trades against durability.
//
// Writes BENCH_checkpoint.json when QC_BENCH_JSON is set: the two ingest
// throughputs gate regressions (tput_ keys); the latency/size diagnostics
// ride along ungated (lower-is-better values must not use the tput_ prefix).
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS/QC_MAX_THREADS, QC_K, QC_B, QC_BENCH_JSON.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "common/timer.hpp"
#include "recovery/checkpoint.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 1024));
  const std::uint32_t b = static_cast<std::uint32_t>(env::get_u64("QC_B", 16));
  scale.keys = std::max<std::uint64_t>(scale.keys, 400'000);
  scale.runs = std::max(scale.runs, 3u);

  std::printf("=== ext: checkpoint latency and ingest dip ===\n");
  std::printf("k=%u b=%u n=%llu runs=%u\n\n", k, b,
              static_cast<unsigned long long>(scale.keys), scale.runs);

  const auto make_opts = [&] {
    core::Options o;
    o.k = k;
    o.b = b;
    o.topology = numa::Topology::virtual_nodes(2, 4);
    return o;
  };
  const auto data = stream::make_stream(stream::Distribution::kUniform, scale.keys, 29);
  const std::string dir = "qc_bench_ckpt";
  std::filesystem::remove_all(dir);

  bench::JsonKv json("ext_checkpoint", scale.name);

  // ----- 1. checkpoint latency vs sketch size -------------------------------
  const struct {
    const char* tag;
    std::uint64_t n;
  } sizes[] = {
      {"small", scale.keys / 16},
      {"medium", scale.keys / 4},
      {"large", scale.keys},
  };
  Table lat({"size", "elements", "image", "ckpt avg", "encode-only", "MB/s"});
  for (const auto& sz : sizes) {
    core::Quancurrent<double> sk(make_opts());
    {
      auto u = sk.make_updater(0);
      u.update(std::span<const double>(data.data(), sz.n));
    }
    sk.quiesce();
    recovery::Checkpointer ck(sk, {.dir = dir, .name = sz.tag, .keep = 2});
    const double ckpt_secs = bench::average_runs(scale.runs, [&] {
      Timer t;
      if (!ck.checkpoint()) std::printf("checkpoint FAILED (%s)\n", sz.tag);
      return t.seconds();
    });
    const double encode_secs = bench::average_runs(scale.runs, [&] {
      Timer t;
      const auto img = recovery::encode_checkpoint(sk, 0);
      (void)img;
      return t.seconds();
    });
    const double image_bytes =
        static_cast<double>(recovery::encode_checkpoint(sk, 0).size());
    lat.add_row({sz.tag, Table::integer(sz.n),
                 Table::num(image_bytes / 1024.0, 1) + " KiB",
                 Table::num(ckpt_secs * 1e3, 3) + " ms",
                 Table::num(encode_secs * 1e3, 3) + " ms",
                 Table::num(image_bytes / (1024.0 * 1024.0) / ckpt_secs, 1)});
    json.add(std::string("ckpt_ms_") + sz.tag, ckpt_secs * 1e3);
    json.add(std::string("encode_ms_") + sz.tag, encode_secs * 1e3);
    json.add(std::string("image_bytes_") + sz.tag, image_bytes);
  }
  lat.print();

  // ----- 2. ingest-throughput dip during checkpoints ------------------------
  const std::uint32_t threads = std::min(8u, std::max(2u, scale.max_threads));
  {  // warmup: keep first-touch faults and frequency ramp out of run 1
    core::Quancurrent<double> warm(make_opts());
    (void)bench::ingest_quancurrent(warm, data, threads);
  }
  const double steady = bench::average_runs(scale.runs, [&] {
    core::Quancurrent<double> sk(make_opts());
    return throughput(data.size(), bench::ingest_quancurrent(sk, data, threads));
  });
  std::uint64_t ckpts = 0;
  const double during = bench::average_runs(scale.runs, [&] {
    core::Quancurrent<double> sk(make_opts());
    recovery::Checkpointer ck(sk, {.dir = dir, .name = "dip", .keep = 2});
    std::atomic<bool> stop{false};
    std::thread snapper([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (ck.checkpoint()) ++ckpts;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
    const double secs = bench::ingest_quancurrent(sk, data, threads);
    stop.store(true, std::memory_order_release);
    snapper.join();
    return throughput(data.size(), secs);
  });
  const double dip_pct = steady <= 0.0 ? 0.0 : 100.0 * (1.0 - during / steady);
  std::printf("\ningest @%u threads: steady=%s with-checkpoints=%s dip=%.1f%% "
              "(%llu checkpoints taken)\n",
              threads, Table::mops(steady).c_str(), Table::mops(during).c_str(),
              dip_pct, static_cast<unsigned long long>(ckpts));

  json.add("tput_ingest_steady", steady);
  json.add("tput_ingest_during_ckpt", during);
  json.add("dip_pct", dip_pct);
  json.add("checkpoints_during_ingest", static_cast<double>(ckpts));

  std::filesystem::remove_all(dir);
  const std::string out = bench::json_out_dir();
  if (!out.empty()) {
    const std::string path = out + "/BENCH_checkpoint.json";
    if (json.write_file(path)) std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
