// Figure 6b: query-only throughput vs. number of query threads.
// Paper parameters: k = 4096, b = 16; 10M elements pre-filled, then 10M
// queries; linear scaling to 30x the sequential sketch at 32 threads.
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS/QC_MAX_THREADS, QC_K, QC_B, QC_QUERIES.
#include <cstdio>

#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 4096));
  const std::uint32_t b = static_cast<std::uint32_t>(env::get_u64("QC_B", 16));
  const std::uint64_t total_queries = env::get_u64("QC_QUERIES", scale.keys);

  std::printf("=== Figure 6b: query-only throughput ===\n");
  std::printf("k=%u b=%u prefill=%llu queries=%llu (paper: 30x sequential at 32)\n\n", k, b,
              static_cast<unsigned long long>(scale.keys),
              static_cast<unsigned long long>(total_queries));

  core::Options o;
  o.k = k;
  o.b = b;
  o.topology = numa::Topology::virtual_nodes(4, 8);
  core::Quancurrent<double> sk(o);
  const auto data = stream::make_stream(stream::Distribution::kUniform, scale.keys, 11);
  bench::ingest_quancurrent(sk, data, std::min<std::uint32_t>(8, scale.max_threads),
                            /*quiesce=*/true);

  // Sequential baseline: the sequential sketch rebuilds its sample view per
  // query (its query path per §2.2).
  sketch::QuantilesSketch<double> seq(k);
  for (double x : data) seq.update(x);
  const std::uint64_t seq_queries = std::max<std::uint64_t>(total_queries / 1000, 10);
  Timer seq_timer;
  for (std::uint64_t i = 0; i < seq_queries; ++i) {
    (void)seq.quantile(0.001 * static_cast<double>(i % 999 + 1));
  }
  const double seq_tput = throughput(seq_queries, seq_timer.elapsed_seconds());

  Table t({"threads", "quancurrent", "sequential", "speedup"});
  for (std::uint32_t threads : bench::thread_sweep(scale.max_threads)) {
    const std::uint64_t per_thread = total_queries / threads;
    const double tput = bench::average_runs(scale.runs, [&] {
      const double secs = bench::timed_parallel(threads, [&](std::uint32_t t) {
        auto q = sk.make_querier();
        double phi = 0.001 * (t + 1);
        for (std::uint64_t i = 0; i < per_thread; ++i) {
          (void)q.quantile(phi);
          phi += 0.001;
          if (phi >= 1.0) phi = 0.001;
        }
      });
      return throughput(per_thread * threads, secs);
    });
    t.add_row({Table::integer(threads), Table::mops(tput), Table::mops(seq_tput),
               Table::num(tput / seq_tput, 2) + "x"});
  }
  t.print();
  return 0;
}
