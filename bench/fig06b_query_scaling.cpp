// Figure 6b: query-only throughput vs. number of query threads.
// Paper parameters: k = 4096, b = 16; 10M elements pre-filled, then queries
// from up to 32 threads; linear scaling to 30x the sequential sketch.
//
// Each Quancurrent query is a snapshot refresh plus a quantile: refresh is
// the incremental tritmap-diff path (O(1) on a quiesced sketch), quantile a
// binary search over the frozen prefix-weight summary.  The sequential
// baseline answers from the same binary-searched summary representation,
// queried from one thread.
//
// Reports queries/sec, refresh p50/p99, and hole/retry counts via the
// bench_util query stats; writes BENCH_query.json when QC_BENCH_JSON is set.
//
// Env: QC_SCALE/QC_KEYS/QC_RUNS/QC_MAX_THREADS, QC_K, QC_B, QC_QUERIES,
// QC_BENCH_JSON.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util/harness.hpp"
#include "bench_util/workload.hpp"
#include "common/env.hpp"
#include "common/fmt_table.hpp"
#include "stream/generators.hpp"

int main() {
  using namespace qc;
  const auto scale = env::bench_scale();
  const std::uint32_t k = static_cast<std::uint32_t>(env::get_u64("QC_K", 4096));
  const std::uint32_t b = static_cast<std::uint32_t>(env::get_u64("QC_B", 16));
  const std::uint64_t total_queries = env::get_u64("QC_QUERIES", scale.keys);

  std::printf("=== Figure 6b: query-only throughput ===\n");
  std::printf("k=%u b=%u prefill=%llu queries=%llu (paper: 30x sequential at 32)\n\n", k, b,
              static_cast<unsigned long long>(scale.keys),
              static_cast<unsigned long long>(total_queries));

  core::Options o;
  o.k = k;
  o.b = b;
  o.collect_stats = true;
  o.topology = numa::Topology::virtual_nodes(4, 8);
  core::Quancurrent<double> sk(o);
  const auto data = stream::make_stream(stream::Distribution::kUniform, scale.keys, 11);
  bench::ingest_quancurrent(sk, data, std::min<std::uint32_t>(8, scale.max_threads),
                            /*quiesce=*/true);

  // Sequential baseline: one sketch queried from one thread.
  sketch::QuantilesSketch<double> seq(k);
  for (double x : data) seq.update(x);
  (void)seq.quantile(0.5);  // build the lazy summary outside the timed loop
  const std::uint64_t seq_queries = std::max<std::uint64_t>(total_queries / 100, 100);
  Timer seq_timer;
  double phi = 0.001;
  for (std::uint64_t i = 0; i < seq_queries; ++i) {
    (void)seq.quantile(phi);
    phi += 0.001;
    if (phi >= 1.0) phi = 0.001;
  }
  const double seq_tput = throughput(seq_queries, seq_timer.seconds());

  bench::JsonSeries json("fig06b_query_scaling", scale.name, "queries_per_sec");
  Table t({"threads", "queries/s", "speedup", "p50_us", "p99_us", "holes", "retries"});
  for (std::uint32_t threads : bench::thread_sweep(scale.max_threads)) {
    // Every column aggregates the same scale.runs runs: throughput and
    // latency percentiles are averaged, hole/retry counters summed.
    double qps = 0.0, p50 = 0.0, p99 = 0.0;
    std::uint64_t holes = 0, retries = 0;
    const std::uint32_t runs = std::max(scale.runs, 1u);
    for (std::uint32_t r = 0; r < runs; ++r) {
      const auto stats = bench::run_query_load(sk, threads, total_queries / threads);
      qps += stats.queries_per_sec / runs;
      p50 += stats.refresh_p50_us / runs;
      p99 += stats.refresh_p99_us / runs;
      holes += stats.holes;
      retries += stats.query_retries;
    }
    json.add(threads, qps);
    t.add_row({Table::integer(threads), Table::mops(qps),
               Table::num(qps / seq_tput, 2) + "x", Table::num(p50, 3),
               Table::num(p99, 3), Table::integer(holes), Table::integer(retries)});
  }
  t.print();
  std::printf("sequential baseline: %s\n", Table::mops(seq_tput).c_str());

  const std::string dir = bench::json_out_dir();
  if (!dir.empty()) {
    const std::string path = dir + "/BENCH_query.json";
    if (json.write_file(path)) std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
