#!/usr/bin/env python3
"""Gate CI on bench throughput regressions.

Compares the BENCH_*.json artifacts of the current run against a baseline
directory (normally the previous successful run's `bench-json` artifact) and
fails when any gated metric regressed by more than --threshold (default 30%,
sized for smoke-scale noise on shared CI runners).

Two artifact shapes exist (include/qc/bench_util/harness.hpp):

  JsonSeries  {"bench", "scale", "metric", "points": [{"threads", "value"}],
               "counters": {...}}   -> every point gates (throughput series);
                                       counters are diagnostic, never gated.
  JsonKv      {"bench", "scale", "values": {...}}
                                    -> only keys prefixed "tput_" gate; the
                                       rest (live_blocks_*, scans_*, ...) are
                                       diagnostic context.

All gated metrics are higher-is-better throughputs.

Modes:
  default    numeric gating — baseline and current came from the same runner
             class (artifact handoff between CI runs).
  --lenient  shape/presence gating only — used when falling back to the
             committed bench/baseline/ snapshot, which was recorded on
             different hardware, so absolute numbers are meaningless.  Still
             fails if an artifact or a gated key disappeared (that is a
             bench wiring regression, not noise).

A markdown delta table is printed to stdout; pass --summary FILE (e.g.
"$GITHUB_STEP_SUMMARY") to also append it there.
"""

import argparse
import json
import math
import pathlib
import sys


def load_artifacts(directory: pathlib.Path):
    """Map artifact filename -> parsed JSON for every BENCH_*.json present."""
    artifacts = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            artifacts[path.name] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"error: unreadable artifact {path}: {exc}")
    return artifacts


def gated_metrics(doc):
    """Extract {metric_name: value} for the regression-gated metrics."""
    metrics = {}
    if "points" in doc:
        for point in doc["points"]:
            metrics[f"t{point['threads']}"] = float(point["value"])
    if "values" in doc:
        for key, value in doc["values"].items():
            if key.startswith("tput_"):
                metrics[key] = float(value)
    return metrics


def fmt(value):
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.2f}k"
    return f"{value:.3g}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=pathlib.Path,
                        help="directory holding baseline BENCH_*.json files")
    parser.add_argument("current", type=pathlib.Path,
                        help="directory holding this run's BENCH_*.json files")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max allowed fractional drop (default 0.30)")
    parser.add_argument("--lenient", action="store_true",
                        help="presence/shape checks only (committed-baseline "
                             "fallback: cross-hardware numbers don't compare)")
    parser.add_argument("--summary", type=pathlib.Path, default=None,
                        help="also append the markdown table to this file")
    args = parser.parse_args()

    for d in (args.baseline, args.current):
        if not d.is_dir():
            raise SystemExit(f"error: {d} is not a directory")

    base = load_artifacts(args.baseline)
    curr = load_artifacts(args.current)
    if not base:
        raise SystemExit(f"error: no BENCH_*.json artifacts in {args.baseline}")
    if not curr:
        raise SystemExit(f"error: no BENCH_*.json artifacts in {args.current}")

    mode = "lenient (presence only)" if args.lenient else \
        f"numeric (fail below -{args.threshold:.0%})"
    rows = []
    failures = []

    for name in sorted(base):
        if name not in curr:
            failures.append(f"{name}: artifact missing from current run")
            continue
        base_metrics = gated_metrics(base[name])
        curr_metrics = gated_metrics(curr[name])
        for key in sorted(base_metrics):
            bval = base_metrics[key]
            if key not in curr_metrics:
                failures.append(f"{name}:{key}: gated metric disappeared")
                rows.append((name, key, bval, None, None, "missing"))
                continue
            cval = curr_metrics[key]
            if args.lenient:
                rows.append((name, key, bval, cval, None, "present"))
                continue
            if bval <= 0 or not math.isfinite(bval) or not math.isfinite(cval):
                rows.append((name, key, bval, cval, None, "skipped"))
                continue
            delta = cval / bval - 1.0
            if delta < -args.threshold:
                failures.append(
                    f"{name}:{key}: {fmt(bval)} -> {fmt(cval)} ({delta:+.1%})")
                rows.append((name, key, bval, cval, delta, "REGRESSED"))
            else:
                rows.append((name, key, bval, cval, delta, "ok"))

    new_artifacts = sorted(set(curr) - set(base))

    lines = [f"### Bench regression check — {mode}", ""]
    lines.append("| artifact | metric | baseline | current | delta | status |")
    lines.append("|---|---|---:|---:|---:|---|")
    for name, key, bval, cval, delta, status in rows:
        lines.append("| {} | {} | {} | {} | {} | {} |".format(
            name, key, fmt(bval),
            fmt(cval) if cval is not None else "—",
            f"{delta:+.1%}" if delta is not None else "—", status))
    for name in new_artifacts:
        lines.append(f"| {name} | — | — | — | — | new (unbaselined) |")
    lines.append("")
    if failures:
        lines.append(f"**{len(failures)} failure(s):**")
        lines.extend(f"- {f}" for f in failures)
    else:
        lines.append(f"All {len(rows)} gated metrics within threshold.")
    report = "\n".join(lines) + "\n"

    sys.stdout.write(report)
    if args.summary is not None:
        with open(args.summary, "a", encoding="utf-8") as f:
            f.write(report)

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
