#!/usr/bin/env python3
"""Gate CI on bench throughput regressions.

Compares the BENCH_*.json artifacts of the current run against a baseline
directory (normally the previous successful run's `bench-json` artifact) and
fails when any gated metric regressed by more than --threshold (default 30%,
sized for smoke-scale noise on shared CI runners).

Two artifact shapes exist (include/qc/bench_util/harness.hpp):

  JsonSeries  {"bench", "scale", "metric", "points": [{"threads", "value"}],
               "counters": {...}}   -> every point gates (throughput series);
                                       counters are diagnostic, never gated.
  JsonKv      {"bench", "scale", "values": {...}}
                                    -> only keys prefixed "tput_" gate; the
                                       rest (live_blocks_*, scans_*, ...) are
                                       diagnostic context.

All gated metrics are higher-is-better throughputs.

Asymmetric presence rules: anything in the current run but not the baseline
is an ADDITION — reported as "new (unbaselined)" and never a failure, both
for whole artifacts and for individual gated keys inside an existing
artifact (a bench that grew a new thread point or tput_ key must not fail
the gate that introduces it).  Anything in the baseline but missing from the
current run is a bench wiring regression and fails, unless that exact
artifact (or artifact:key) is named with --allow-removed in the same change
that deletes it.

Modes:
  default      numeric gating — baseline and current came from the same
               runner class (artifact handoff between CI runs).
  --lenient    shape/presence gating only — used when falling back to the
               committed bench/baseline/ snapshot, which was recorded on
               different hardware, so absolute numbers are meaningless.
               Presence rules above still apply.
  --self-test  run the comparison logic against built-in fixtures covering
               every rule (regression, addition, removal, allow-removed,
               lenient) and exit 0 iff all behave; registered as a ctest so
               the gate itself cannot bit-rot.

A markdown delta table is printed to stdout; pass --summary FILE (e.g.
"$GITHUB_STEP_SUMMARY") to also append it there.
"""

import argparse
import json
import math
import pathlib
import sys


def load_artifacts(directory: pathlib.Path):
    """Map artifact filename -> parsed JSON for every BENCH_*.json present."""
    artifacts = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            artifacts[path.name] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"error: unreadable artifact {path}: {exc}")
    return artifacts


def gated_metrics(doc):
    """Extract {metric_name: value} for the regression-gated metrics."""
    metrics = {}
    if "points" in doc:
        for point in doc["points"]:
            metrics[f"t{point['threads']}"] = float(point["value"])
    if "values" in doc:
        for key, value in doc["values"].items():
            if key.startswith("tput_"):
                metrics[key] = float(value)
    return metrics


def fmt(value):
    if value is None:
        return "—"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.2f}k"
    return f"{value:.3g}"


def compare(base, curr, *, threshold, lenient, allow_removed):
    """Core comparison. Returns (rows, failures).

    rows: (artifact, metric, baseline_val, current_val, delta, status)
    failures: human-readable strings; non-empty means the gate fails.
    allow_removed: set of names — either "ARTIFACT" or "ARTIFACT:key" —
    whose disappearance is an acknowledged removal, not a failure.
    """
    rows = []
    failures = []

    for name in sorted(base):
        if name not in curr:
            if name in allow_removed:
                rows.append((name, "—", None, None, None, "removed (allowed)"))
            else:
                failures.append(f"{name}: artifact missing from current run "
                                f"(pass --allow-removed {name} if intentional)")
                rows.append((name, "—", None, None, None, "MISSING"))
            continue
        base_metrics = gated_metrics(base[name])
        curr_metrics = gated_metrics(curr[name])
        for key in sorted(base_metrics):
            bval = base_metrics[key]
            if key not in curr_metrics:
                if f"{name}:{key}" in allow_removed or name in allow_removed:
                    rows.append((name, key, bval, None, None,
                                 "removed (allowed)"))
                    continue
                failures.append(
                    f"{name}:{key}: gated metric disappeared "
                    f"(pass --allow-removed {name}:{key} if intentional)")
                rows.append((name, key, bval, None, None, "MISSING"))
                continue
            cval = curr_metrics[key]
            if lenient:
                rows.append((name, key, bval, cval, None, "present"))
                continue
            if bval <= 0 or not math.isfinite(bval) or not math.isfinite(cval):
                rows.append((name, key, bval, cval, None, "skipped"))
                continue
            delta = cval / bval - 1.0
            if delta < -threshold:
                failures.append(
                    f"{name}:{key}: {fmt(bval)} -> {fmt(cval)} ({delta:+.1%})")
                rows.append((name, key, bval, cval, delta, "REGRESSED"))
            else:
                rows.append((name, key, bval, cval, delta, "ok"))
        # Gated keys present only in the current run are additions the next
        # baseline snapshot will pick up — report them so the table accounts
        # for every metric, but never fail on them.
        for key in sorted(set(curr_metrics) - set(base_metrics)):
            rows.append((name, key, None, curr_metrics[key], None,
                         "new (unbaselined)"))

    for name in sorted(set(curr) - set(base)):
        for key, cval in sorted(gated_metrics(curr[name]).items()):
            rows.append((name, key, None, cval, None, "new (unbaselined)"))
        if not gated_metrics(curr[name]):
            rows.append((name, "—", None, None, None, "new (unbaselined)"))

    return rows, failures


def render(rows, failures, mode):
    lines = [f"### Bench regression check — {mode}", ""]
    lines.append("| artifact | metric | baseline | current | delta | status |")
    lines.append("|---|---|---:|---:|---:|---|")
    for name, key, bval, cval, delta, status in rows:
        lines.append("| {} | {} | {} | {} | {} | {} |".format(
            name, key, fmt(bval), fmt(cval),
            f"{delta:+.1%}" if delta is not None else "—", status))
    lines.append("")
    if failures:
        lines.append(f"**{len(failures)} failure(s):**")
        lines.extend(f"- {f}" for f in failures)
    else:
        gated = sum(1 for r in rows if r[5] in ("ok", "present"))
        lines.append(f"All {gated} gated metrics within threshold.")
    return "\n".join(lines) + "\n"


def self_test():
    """Fixture-drive every comparison rule; exit 0 iff all hold."""
    series = lambda *pts: {"bench": "b", "scale": "smoke", "metric": "tput",
                           "points": [{"threads": t, "value": v}
                                      for t, v in pts]}
    kv = lambda **vals: {"bench": "b", "scale": "smoke", "values": vals}
    base = {
        "BENCH_a.json": series((1, 100.0), (4, 400.0)),
        "BENCH_b.json": kv(tput_update=50.0, live_blocks=7),
        "BENCH_gone.json": kv(tput_x=1.0),
    }
    checks = []

    def expect(label, cond):
        checks.append((label, bool(cond)))

    def statuses(rows, name):
        return [r[5] for r in rows if r[0] == name]

    # 1. Clean run: identical dirs pass, nothing flagged.
    rows, fails = compare(base, base, threshold=0.30, lenient=False,
                          allow_removed=set())
    expect("identical dirs pass", not fails)
    expect("identical dirs all ok",
           all(s == "ok" for r in rows for s in [r[5]]))

    # 2. Regression beyond threshold fails; within threshold passes.
    curr = dict(base)
    curr["BENCH_a.json"] = series((1, 100.0), (4, 200.0))  # -50% at t4
    rows, fails = compare(base, curr, threshold=0.30, lenient=False,
                          allow_removed=set())
    expect("regression fails", any("t4" in f for f in fails))
    expect("regression row flagged", "REGRESSED" in statuses(rows, "BENCH_a.json"))
    curr["BENCH_a.json"] = series((1, 100.0), (4, 320.0))  # -20% at t4
    _, fails = compare(base, curr, threshold=0.30, lenient=False,
                       allow_removed=set())
    expect("within-threshold passes", not any("t4" in f for f in fails))

    # 3. Additions never fail: new artifact AND new gated key in an existing
    #    artifact both surface as "new (unbaselined)".
    curr = dict(base)
    curr["BENCH_a.json"] = series((1, 100.0), (4, 400.0), (8, 800.0))
    curr["BENCH_b.json"] = kv(tput_update=50.0, tput_query=9.0, live_blocks=7)
    curr["BENCH_new.json"] = kv(tput_fresh=3.0)
    rows, fails = compare(base, curr, threshold=0.30, lenient=False,
                          allow_removed=set())
    expect("additions never fail", not fails)
    expect("new thread point reported",
           "new (unbaselined)" in statuses(rows, "BENCH_a.json"))
    expect("new gated key reported",
           "new (unbaselined)" in statuses(rows, "BENCH_b.json"))
    expect("new artifact reported",
           statuses(rows, "BENCH_new.json") == ["new (unbaselined)"])

    # 4. Removals fail loudly...
    curr = {k: v for k, v in base.items() if k != "BENCH_gone.json"}
    curr["BENCH_b.json"] = kv(live_blocks=7)  # tput_update removed too
    rows, fails = compare(base, curr, threshold=0.30, lenient=False,
                          allow_removed=set())
    expect("removed artifact fails", any("BENCH_gone.json" in f for f in fails))
    expect("removed key fails", any("tput_update" in f for f in fails))
    # ...unless explicitly acknowledged, per-artifact or per-key.
    rows, fails = compare(base, curr, threshold=0.30, lenient=False,
                          allow_removed={"BENCH_gone.json",
                                         "BENCH_b.json:tput_update"})
    expect("allow-removed suppresses both", not fails)
    expect("allowed removals still reported",
           "removed (allowed)" in statuses(rows, "BENCH_gone.json") and
           "removed (allowed)" in statuses(rows, "BENCH_b.json"))

    # 5. Lenient mode ignores numbers but still enforces presence.
    curr = dict(base)
    curr["BENCH_a.json"] = series((1, 1.0), (4, 1.0))  # catastrophic "drop"
    _, fails = compare(base, curr, threshold=0.30, lenient=True,
                       allow_removed=set())
    expect("lenient ignores numbers", not fails)
    del curr["BENCH_gone.json"]
    _, fails = compare(base, curr, threshold=0.30, lenient=True,
                       allow_removed=set())
    expect("lenient still enforces presence", bool(fails))

    # 6. Non-finite / zero baselines are skipped, not divided by.
    weird_base = {"BENCH_w.json": kv(tput_zero=0.0, tput_nan=float("nan"))}
    weird_curr = {"BENCH_w.json": kv(tput_zero=5.0, tput_nan=5.0)}
    rows, fails = compare(weird_base, weird_curr, threshold=0.30,
                          lenient=False, allow_removed=set())
    expect("degenerate baselines skipped",
           not fails and statuses(rows, "BENCH_w.json") == ["skipped"] * 2)

    failed = [label for label, ok in checks if not ok]
    for label, ok in checks:
        print(f"  {'ok  ' if ok else 'FAIL'} {label}")
    if failed:
        print(f"self-test: {len(failed)}/{len(checks)} checks failed")
        return 1
    print(f"self-test: all {len(checks)} checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=pathlib.Path, nargs="?",
                        help="directory holding baseline BENCH_*.json files")
    parser.add_argument("current", type=pathlib.Path, nargs="?",
                        help="directory holding this run's BENCH_*.json files")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max allowed fractional drop (default 0.30)")
    parser.add_argument("--lenient", action="store_true",
                        help="presence/shape checks only (committed-baseline "
                             "fallback: cross-hardware numbers don't compare)")
    parser.add_argument("--allow-removed", action="append", default=[],
                        metavar="ARTIFACT[:KEY]",
                        help="acknowledge an intentional removal (repeatable); "
                             "names a whole artifact file or one gated key")
    parser.add_argument("--self-test", action="store_true",
                        help="run built-in fixtures through the gate logic "
                             "and exit (no directories needed)")
    parser.add_argument("--summary", type=pathlib.Path, default=None,
                        help="also append the markdown table to this file")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        parser.error("baseline and current directories are required "
                     "(or use --self-test)")

    for d in (args.baseline, args.current):
        if not d.is_dir():
            raise SystemExit(f"error: {d} is not a directory")

    base = load_artifacts(args.baseline)
    curr = load_artifacts(args.current)
    if not base:
        raise SystemExit(f"error: no BENCH_*.json artifacts in {args.baseline}")
    if not curr:
        raise SystemExit(f"error: no BENCH_*.json artifacts in {args.current}")

    rows, failures = compare(base, curr, threshold=args.threshold,
                             lenient=args.lenient,
                             allow_removed=set(args.allow_removed))
    mode = "lenient (presence only)" if args.lenient else \
        f"numeric (fail below -{args.threshold:.0%})"
    report = render(rows, failures, mode)

    sys.stdout.write(report)
    if args.summary is not None:
        with open(args.summary, "a", encoding="utf-8") as f:
            f.write(report)

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
