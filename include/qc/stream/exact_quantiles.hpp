// Exact quantile oracle: sorts the full stream once and answers rank/quantile
// queries precisely.  Benches compare sketch estimates against this ground
// truth to report normalized rank error.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace qc::stream {

template <typename T>
class ExactQuantiles {
 public:
  explicit ExactQuantiles(std::vector<T> data) : sorted_(std::move(data)) {
    std::sort(sorted_.begin(), sorted_.end());
  }

  std::uint64_t size() const { return sorted_.size(); }

  // Number of stream elements strictly less than `v`.
  std::uint64_t rank(const T& v) const {
    return static_cast<std::uint64_t>(
        std::lower_bound(sorted_.begin(), sorted_.end(), v) - sorted_.begin());
  }

  // The exact phi-quantile: the element of rank floor(phi * n), clamped.
  T quantile(double phi) const {
    const auto n = sorted_.size();
    if (n == 0) return T{};
    auto idx = static_cast<std::uint64_t>(phi * static_cast<double>(n));
    if (idx >= n) idx = n - 1;
    return sorted_[idx];
  }

  // Normalized rank error of an estimate for the phi-quantile:
  // |rank(estimate)/n - phi|.
  double rank_error(const T& estimate, double phi) const {
    if (sorted_.empty()) return 0.0;
    const double n = static_cast<double>(sorted_.size());
    return std::fabs(static_cast<double>(rank(estimate)) / n - phi);
  }

 private:
  std::vector<T> sorted_;
};

}  // namespace qc::stream
