// Synthetic input streams for benches and tests.  Deterministic per seed so
// experiments are reproducible across runs and machines.
#pragma once

#include <cstdint>
#include <vector>

namespace qc::stream {

enum class Distribution {
  kUniform,  // uniform doubles in [0, 1)
  kNormal,   // standard normal
  kZipf,     // heavy-tailed, many duplicates (s = 1.1 over 1M distinct values)
  kSorted,   // ascending ramp — adversarial for buffer-based sketches
};

const char* distribution_name(Distribution d);

// Generates `n` doubles drawn from `d`, seeded deterministically.
std::vector<double> make_stream(Distribution d, std::uint64_t n, std::uint64_t seed);

}  // namespace qc::stream
