// Concurrent Theta sketch — the FCDS-style wrapper ext_theta_scaling drives,
// exploring Quancurrent §6's future work (concurrency for another sketch
// family) with the same ingredients as the quantiles engine: per-thread
// local buffers, batched hand-off to the shared structure, and a relaxed
// view in between.
//
// Design (after Rinberg et al.'s concurrent Theta): every updater hashes its
// keys locally and FILTERS them against a cached global theta (one relaxed
// atomic load — no shared write); survivors accumulate in a local buffer of
// b hashes that is handed to the shared sequential sketch in one short
// critical section, which also refreshes the published theta.  Because theta
// shrinks as ~k/n, the survivor rate — and with it, lock acquisitions —
// decays toward zero over the stream: updaters spend virtually all their
// time in private filtering, which is why the design scales with threads
// while the lock-per-update baseline stays flat.
//
// Relaxation: up to N*b locally buffered survivors (plus anything filtered
// by a stale cached theta, which the estimator tolerates by construction)
// are invisible to estimate() until flushed.
//
// Thread contract: one Updater per thread (flush() or destroy to publish the
// local buffer); estimate()/drain() are safe concurrently with updaters.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "numa/topology.hpp"
#include "theta/theta_sketch.hpp"

namespace qc::theta {

class ConcurrentTheta {
 public:
  struct Options {
    std::uint32_t k = 4096;  // summary size of the shared sketch
    std::uint32_t b = 16;    // local survivor buffer (hashes per hand-off)
    // Accepted for bench symmetry with core::Options; the shared sketch has
    // no per-node state (yet), so placement does not change behavior.
    numa::Topology topology = numa::Topology::single_node();
  };

  explicit ConcurrentTheta(Options opts) : opts_(opts), shared_(opts.k) {
    if (opts_.b == 0) opts_.b = 1;
  }

  ConcurrentTheta(const ConcurrentTheta&) = delete;
  ConcurrentTheta& operator=(const ConcurrentTheta&) = delete;

  const Options& options() const { return opts_; }

  // Per-thread ingestion handle; not thread-safe, create one per thread.
  class Updater {
   public:
    explicit Updater(ConcurrentTheta& sketch) : sketch_(&sketch), b_(sketch.opts_.b) {
      buf_.reserve(b_);
    }

    Updater(const Updater&) = delete;
    Updater& operator=(const Updater&) = delete;
    Updater(Updater&& other) noexcept
        : sketch_(std::exchange(other.sketch_, nullptr)),
          b_(other.b_),
          buf_(std::move(other.buf_)) {}
    Updater& operator=(Updater&&) = delete;

    ~Updater() { flush(); }

    void update(std::uint64_t key) {
      const std::uint64_t h = hash64(key);
      // The cached theta only ever shrinks, so a stale read admits a few
      // extra survivors (discarded by the shared sketch's own threshold) and
      // never loses one.
      if (h >= sketch_->theta_cache_.load(std::memory_order_relaxed)) return;
      buf_.push_back(h);
      if (buf_.size() >= b_) flush();
    }

    // Publishes the local survivor buffer to the shared sketch.
    void flush() {
      if (sketch_ == nullptr || buf_.empty()) return;
      sketch_->ingest_hashes(buf_);
      buf_.clear();
    }

   private:
    ConcurrentTheta* sketch_;
    std::size_t b_;
    std::vector<std::uint64_t> buf_;
  };

  Updater make_updater() { return Updater(*this); }

  // Compacts the shared sketch (local buffers are the updaters' to flush).
  void drain() QC_EXCLUDES(mu_) {
    const sync::MutexLock lock(mu_);
    shared_.compact();
  }

  double estimate() QC_EXCLUDES(mu_) {
    const sync::MutexLock lock(mu_);
    return shared_.estimate();
  }

  std::uint64_t theta() const { return theta_cache_.load(std::memory_order_acquire); }

 private:
  friend class Updater;

  void ingest_hashes(const std::vector<std::uint64_t>& hashes) QC_EXCLUDES(mu_) {
    const sync::MutexLock lock(mu_);
    for (const std::uint64_t h : hashes) shared_.update_hash(h);
    theta_cache_.store(shared_.theta(), std::memory_order_release);
  }

  Options opts_;
  // The hand-off mutex: updaters flush their local hash buffers into the
  // shared sketch under it.  theta_cache_ stays an unguarded atomic mirror —
  // updaters read it lock-free to pre-filter, tolerating staleness.
  sync::Mutex mu_;
  ThetaSketch shared_ QC_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> theta_cache_{~std::uint64_t{0}};
};

}  // namespace qc::theta
