// Sequential Theta sketch (KMV / K-Minimum-Values with a theta threshold) —
// distinct counting, the substrate for ext_theta_scaling's exploration of
// the paper's §6 future work (hole-tolerant concurrency for other sketch
// families).
//
// Invariant: `keep_` holds hashes strictly below `theta_` (possibly with
// buffered duplicates); after compact() it is deduplicated and truncated to
// the k smallest distinct hashes, with theta_ = the (k+1)-th smallest
// distinct hash seen.  The estimator retained / (theta / 2^64) is then the
// unbiased KMV estimate k / U_(k+1); before the sketch ever fills, theta
// stays at 2^64 and the estimate is the exact distinct count.  Updates
// cheaper than a comparison against theta_ are rejected outright, which is
// what the concurrent wrapper exploits: once theta is small, almost every
// update is filtered locally without touching shared state.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace qc::theta {

// 64-bit mix (splitmix64 finalizer): maps keys to i.i.d.-looking uniform
// hashes; shared by the sequential sketch and the concurrent wrapper's
// updater-side filter.
inline std::uint64_t hash64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class ThetaSketch {
 public:
  explicit ThetaSketch(std::uint32_t k) : k_(k < 2 ? 2 : k) {
    limit_ = 2 * static_cast<std::size_t>(k_);
    keep_.reserve(limit_ + 1);
  }

  void update(std::uint64_t key) { update_hash(hash64(key)); }

  // Pre-hashed insert (the concurrent wrapper hashes on updater threads).
  void update_hash(std::uint64_t h) {
    if (h >= theta_) return;
    keep_.push_back(h);
    if (keep_.size() >= limit_) compact();
  }

  // Current threshold: hashes at or above it are rejected unseen.
  std::uint64_t theta() const { return theta_; }

  std::uint32_t k() const { return k_; }

  // Distinct hashes currently retained (deduplicates the insert buffer).
  std::uint64_t retained() {
    dedup();
    return keep_.size();
  }

  // Deduplicates and, when over k distinct survivors, advances theta to the
  // (k+1)-th smallest and truncates to the k smallest.
  void compact() {
    dedup();
    if (keep_.size() > k_) {
      theta_ = keep_[k_];
      keep_.resize(k_);
    }
  }

  // Distinct-count estimate: exact while theta is still 2^64, otherwise the
  // unbiased KMV estimator retained / (theta / 2^64).
  double estimate() {
    dedup();
    if (theta_ == kMaxTheta) return static_cast<double>(keep_.size());
    const double theta_norm = static_cast<double>(theta_) * 0x1.0p-64;
    return static_cast<double>(keep_.size()) / theta_norm;
  }

 private:
  static constexpr std::uint64_t kMaxTheta = ~std::uint64_t{0};

  void dedup() {
    std::sort(keep_.begin(), keep_.end());
    keep_.erase(std::unique(keep_.begin(), keep_.end()), keep_.end());
  }

  std::uint32_t k_;
  std::size_t limit_ = 0;        // buffered inserts before an amortized compact
  std::uint64_t theta_ = kMaxTheta;
  std::vector<std::uint64_t> keep_;  // hashes < theta_, dups until dedup()
};

}  // namespace qc::theta
