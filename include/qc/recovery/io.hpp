// POSIX I/O for the checkpoint subsystem, with every failure mode behind a
// named fault point (fault/inject.hpp) so the crash harness can fail — or
// SIGKILL the process at — any individual syscall deterministically:
//
//   short_write  write_all(): a segment tears (half lands, then EIO)
//   fsync_fail   fsync_file() / fsync_dir(): data never reaches stable media
//   rename_fail  rename_file(): the atomic publish step fails
//   read_corrupt read_file(): a bit of the loaded image rots in transit
//
// All functions return false with errno set on failure and never throw;
// retry policy (bounded exponential backoff) belongs to the caller
// (recovery/checkpoint.hpp), not here.
#pragma once

#include <fcntl.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <vector>

#include "fault/inject.hpp"

namespace qc::recovery::io {

// Writes in bounded segments rather than one write(2): a crash (or an
// injected short_write) then lands mid-file with a real prefix on disk —
// exactly the torn state the container's commit record must catch — and
// partial-progress returns from write(2) are handled uniformly.
inline constexpr std::size_t kWriteSegmentBytes = 64 * 1024;

inline bool write_all(int fd, const std::byte* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const std::size_t len = std::min(kWriteSegmentBytes, n - off);
    if (QC_INJECT_IO_FAIL(short_write)) {
      // Torn write: half the segment reaches the file, then the device
      // errors.  The dirty temp file is left for recovery to judge.
      if (len / 2 > 0) {
        [[maybe_unused]] const ::ssize_t ignored = ::write(fd, data + off, len / 2);
      }
      errno = EIO;
      return false;
    }
    const ::ssize_t w = ::write(fd, data + off, len);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

inline bool fsync_file(int fd) {
  if (QC_INJECT_IO_FAIL(fsync_fail)) {
    errno = EIO;
    return false;
  }
  return ::fsync(fd) == 0;
}

// Durability of the rename itself: without fsyncing the parent directory a
// power cut can forget the new directory entry even though the file data is
// safe.  Shares the fsync_fail point with fsync_file(): in a checkpoint
// attempt the file fsync is hit 1 and the directory fsync hit 2, so arm_hit
// distinguishes a crash before the rename from one after it.
inline bool fsync_dir(const char* dir) {
  if (QC_INJECT_IO_FAIL(fsync_fail)) {
    errno = EIO;
    return false;
  }
  const int fd = ::open(dir, O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

inline bool rename_file(const char* from, const char* to) {
  if (QC_INJECT_IO_FAIL(rename_fail)) {
    errno = EIO;
    return false;
  }
  return ::rename(from, to) == 0;
}

// Loads a whole file into `out`.  read_corrupt models rot between write and
// read (a bad sector, a flipped bit in transit): one bit of the loaded image
// flips, which the container's chunk CRCs must then catch.
inline bool read_file(const char* path, std::vector<std::byte>& out) {
  const int fd = ::open(path, O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  out.clear();
  std::byte buf[1 << 16];
  for (;;) {
    const ::ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (r == 0) break;
    out.insert(out.end(), buf, buf + r);
  }
  ::close(fd);
  QC_INJECT_CORRUPT(read_corrupt, out.data(), out.size());
  return true;
}

}  // namespace qc::recovery::io
