// CRC32C (Castagnoli) — the checksum framing every checkpoint-container
// chunk (recovery/container.hpp).
//
// Why Castagnoli and not the zlib polynomial: 0x1EDC6F41 has better Hamming
// distance at the block sizes a checkpoint chunk actually is (up to a few MB)
// and is the polynomial storage formats standardized on (iSCSI, ext4, Btrfs,
// LevelDB tables), so a container inspected by external tooling checks out.
//
// Software path: a constexpr-generated 256-entry reflected table, one byte
// per step — ~1 GB/s, far above checkpoint I/O rates.  When the TU is built
// with SSE4.2 enabled the hardware crc32 instruction takes over (8 bytes per
// step); both paths produce identical digests (the known-answer test in
// test_recovery pins the standard vector "123456789" -> 0xE3069283).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace qc::recovery {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable = make_crc32c_table();

}  // namespace detail

// Digest of [data, data+n).  Pass a previous digest as `seed` to checksum a
// discontiguous byte sequence incrementally: crc32c(b, crc32c(a)) equals
// crc32c(a ++ b).
inline std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
#if defined(__SSE4_2__)
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    crc = static_cast<std::uint32_t>(_mm_crc32_u64(crc, word));
    p += 8;
    n -= 8;
  }
  while (n-- != 0) crc = _mm_crc32_u8(crc, *p++);
#else
  while (n-- != 0) crc = detail::kCrc32cTable[(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
#endif
  return ~crc;
}

}  // namespace qc::recovery
