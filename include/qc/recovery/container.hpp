// The checkpoint container: a CRC32C-framed, chunked file format wrapping
// the v3 serde so recovery can tell a committed checkpoint from a torn one.
//
// The unframed serde blob (serde/binary.hpp) is built for trusted in-memory
// exchange: it has no integrity check, so a crash mid-write leaves a prefix
// that deserialize() may happily decode into a silently truncated sketch.
// The container closes that hole with three independent defenses:
//
//   file      := header chunk*            (all integers little-endian)
//   header    := magic:u32 "QCKP" | version:u16 | flags:u16 | generation:u64
//   chunk     := type:u32 | crc32c(payload):u32 | payload_len:u64 | payload
//   manifest  := kind:u32 (single=1 | sharded=2) | shard_count:u32
//                | total_elements:u64          (chunk 0, exactly once)
//   shard     := shard_index:u32 | serde-v3 blob (one chunk per shard, in
//                index order — the "sharded serde" the ROADMAP names)
//   commit    := generation:u64 | chunk_count:u32 | reserved:u32
//                | payload_total:u64 | crc32c(chunk crc sequence):u32
//                (the LAST chunk, exactly once, nothing after it)
//
//   1. Per-chunk CRC32C: a bit flip or partial chunk is detected at chunk
//      granularity — verification names the offending chunk instead of
//      deserializing garbage.
//   2. The commit record: written last, so its mere well-formed presence at
//      EOF proves every preceding byte hit the file; a kill -9 between the
//      first byte and the last leaves a container without a valid commit.
//      Its payload re-states the generation, re-counts the chunks, re-totals
//      their payload bytes and checksums the SEQUENCE of their CRCs, so a
//      spliced file (chunks dropped, duplicated, reordered between two valid
//      images) cannot smuggle a stale commit record past verification.
//   3. Strict EOF: bytes after the commit (e.g. a duplicated commit record)
//      reject the file — an append-after-commit is not a committed state.
//
// This header is pure in-memory encode/verify; the durable write protocol
// (temp + fsync + rename) lives in recovery/checkpoint.hpp, the syscalls and
// their fault points in recovery/io.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "recovery/crc32c.hpp"

namespace qc::recovery {

inline constexpr std::uint32_t kContainerMagic = 0x504B4351u;  // "QCKP"
inline constexpr std::uint16_t kContainerVersion = 1;
inline constexpr std::size_t kFileHeaderBytes = 16;
inline constexpr std::size_t kChunkHeaderBytes = 16;
inline constexpr std::size_t kManifestPayloadBytes = 16;
inline constexpr std::size_t kCommitPayloadBytes = 28;

enum class ChunkType : std::uint32_t {
  manifest = 1,
  shard = 2,
  commit = 3,
};

enum class SketchKind : std::uint32_t {
  single = 1,   // one Quancurrent (or any engine): exactly one shard chunk
  sharded = 2,  // ShardedQuancurrent: one shard chunk per facade shard
};

// Container-level verification outcome.  Everything except `ok` rejects the
// file; RecoveryReport records the name so an operator can tell a torn write
// (expected after a crash) from rot (bad_chunk_crc on an old generation).
enum class Verify : std::uint8_t {
  ok = 0,
  short_header,         // fewer bytes than the 16-byte file header
  bad_magic,            // not a checkpoint container
  bad_version,          // written by an incompatible container revision
  torn_chunk,           // a chunk header or payload runs past EOF (torn write)
  bad_chunk_crc,        // a chunk's payload fails its CRC32C (bit rot)
  unknown_chunk,        // unrecognized chunk type
  bad_manifest,         // manifest missing, duplicated, malformed, or not first
  missing_commit,       // file ends cleanly but no commit record (never sealed)
  commit_mismatch,      // commit disagrees with the chunks preceding it
  trailing_data,        // bytes after the commit record (duplicate commit etc.)
  shard_chunk_mismatch,  // shard chunks out of order / count != manifest's
};

inline const char* verify_name(Verify v) {
  switch (v) {
    case Verify::ok: return "ok";
    case Verify::short_header: return "short_header";
    case Verify::bad_magic: return "bad_magic";
    case Verify::bad_version: return "bad_version";
    case Verify::torn_chunk: return "torn_chunk";
    case Verify::bad_chunk_crc: return "bad_chunk_crc";
    case Verify::unknown_chunk: return "unknown_chunk";
    case Verify::bad_manifest: return "bad_manifest";
    case Verify::missing_commit: return "missing_commit";
    case Verify::commit_mismatch: return "commit_mismatch";
    case Verify::trailing_data: return "trailing_data";
    case Verify::shard_chunk_mismatch: return "shard_chunk_mismatch";
  }
  return "unknown";
}

struct Manifest {
  SketchKind kind = SketchKind::single;
  std::uint32_t shard_count = 0;
  std::uint64_t total_elements = 0;  // advisory (facade size at snapshot time)
};

// A fully verified container, viewing (not owning) the input bytes.
struct Parsed {
  std::uint64_t generation = 0;
  Manifest manifest;
  std::vector<std::span<const std::byte>> shard_blobs;  // serde-v3 images
};

struct ParseResult {
  Verify status = Verify::ok;
  std::size_t chunk_index = 0;  // offending chunk for chunk-level statuses
  bool ok() const { return status == Verify::ok; }
};

namespace detail {

inline void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xFFu));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xFFu));
}
inline void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
}
inline void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
}
inline std::uint16_t get_u16(const std::byte* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}
inline std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
inline std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace detail

// Builds a container image in memory: header, then chunks in call order,
// then (finish()) the commit record.  The caller owns chunk ordering —
// manifest first, shard chunks in index order — which checkpoint encoding
// does and parse_container() enforces.
class ContainerWriter {
 public:
  explicit ContainerWriter(std::uint64_t generation) : generation_(generation) {
    detail::put_u32(bytes_, kContainerMagic);
    detail::put_u16(bytes_, kContainerVersion);
    detail::put_u16(bytes_, 0);  // flags: reserved
    detail::put_u64(bytes_, generation);
  }

  void add_manifest(SketchKind kind, std::uint32_t shard_count,
                    std::uint64_t total_elements) {
    std::vector<std::byte> payload;
    payload.reserve(kManifestPayloadBytes);
    detail::put_u32(payload, static_cast<std::uint32_t>(kind));
    detail::put_u32(payload, shard_count);
    detail::put_u64(payload, total_elements);
    add_chunk(ChunkType::manifest, payload);
  }

  void add_shard(std::uint32_t shard_index, std::span<const std::byte> blob) {
    std::vector<std::byte> payload;
    payload.reserve(4 + blob.size());
    detail::put_u32(payload, shard_index);
    payload.insert(payload.end(), blob.begin(), blob.end());
    add_chunk(ChunkType::shard, payload);
  }

  // Seals the container with the commit record and releases the image.
  std::vector<std::byte> finish() && {
    std::vector<std::byte> payload;
    payload.reserve(kCommitPayloadBytes);
    detail::put_u64(payload, generation_);
    detail::put_u32(payload, chunk_count_);
    detail::put_u32(payload, 0);  // reserved
    detail::put_u64(payload, payload_total_);
    detail::put_u32(payload, crc32c(crc_seq_.data(), crc_seq_.size()));
    add_chunk(ChunkType::commit, payload);
    return std::move(bytes_);
  }

 private:
  void add_chunk(ChunkType type, std::span<const std::byte> payload) {
    const std::uint32_t crc = crc32c(payload.data(), payload.size());
    detail::put_u32(bytes_, static_cast<std::uint32_t>(type));
    detail::put_u32(bytes_, crc);
    detail::put_u64(bytes_, payload.size());
    bytes_.insert(bytes_.end(), payload.begin(), payload.end());
    if (type != ChunkType::commit) {
      detail::put_u32(crc_seq_, crc);
      payload_total_ += payload.size();
      ++chunk_count_;
    }
  }

  std::uint64_t generation_;
  std::uint32_t chunk_count_ = 0;
  std::uint64_t payload_total_ = 0;
  std::vector<std::byte> crc_seq_;  // little-endian CRCs, in chunk order
  std::vector<std::byte> bytes_;
};

// Full verification in one pass: frame bounds, every chunk CRC, chunk
// grammar (manifest first, shards in order, commit last and alone), commit
// consistency, strict EOF.  `out` views `in` — it is only valid while the
// input bytes live, and only populated on Verify::ok.
inline ParseResult parse_container(std::span<const std::byte> in, Parsed& out) {
  out = Parsed{};
  if (in.size() < kFileHeaderBytes) return {Verify::short_header, 0};
  if (detail::get_u32(in.data()) != kContainerMagic) return {Verify::bad_magic, 0};
  if (detail::get_u16(in.data() + 4) != kContainerVersion) return {Verify::bad_version, 0};
  out.generation = detail::get_u64(in.data() + 8);

  std::size_t off = kFileHeaderBytes;
  std::size_t index = 0;
  bool have_manifest = false;
  std::uint32_t chunk_count = 0;
  std::uint64_t payload_total = 0;
  std::vector<std::byte> crc_seq;
  for (;; ++index) {
    if (off == in.size()) return {Verify::missing_commit, index};
    if (in.size() - off < kChunkHeaderBytes) return {Verify::torn_chunk, index};
    const std::byte* hdr = in.data() + off;
    const std::uint32_t type_raw = detail::get_u32(hdr);
    const std::uint32_t stored_crc = detail::get_u32(hdr + 4);
    const std::uint64_t len = detail::get_u64(hdr + 8);
    if (len > in.size() - off - kChunkHeaderBytes) return {Verify::torn_chunk, index};
    const std::byte* payload = hdr + kChunkHeaderBytes;
    if (crc32c(payload, static_cast<std::size_t>(len)) != stored_crc) {
      return {Verify::bad_chunk_crc, index};
    }
    off += kChunkHeaderBytes + static_cast<std::size_t>(len);

    switch (static_cast<ChunkType>(type_raw)) {
      case ChunkType::manifest: {
        if (have_manifest || index != 0 || len != kManifestPayloadBytes) {
          return {Verify::bad_manifest, index};
        }
        const std::uint32_t kind = detail::get_u32(payload);
        if (kind != static_cast<std::uint32_t>(SketchKind::single) &&
            kind != static_cast<std::uint32_t>(SketchKind::sharded)) {
          return {Verify::bad_manifest, index};
        }
        out.manifest.kind = static_cast<SketchKind>(kind);
        out.manifest.shard_count = detail::get_u32(payload + 4);
        out.manifest.total_elements = detail::get_u64(payload + 8);
        if (out.manifest.kind == SketchKind::single && out.manifest.shard_count != 1) {
          return {Verify::bad_manifest, index};
        }
        have_manifest = true;
        break;
      }
      case ChunkType::shard: {
        if (!have_manifest) return {Verify::bad_manifest, index};
        if (len < 4 || detail::get_u32(payload) != out.shard_blobs.size()) {
          return {Verify::shard_chunk_mismatch, index};
        }
        out.shard_blobs.emplace_back(payload + 4, static_cast<std::size_t>(len - 4));
        break;
      }
      case ChunkType::commit: {
        if (len != kCommitPayloadBytes) return {Verify::commit_mismatch, index};
        if (!have_manifest) return {Verify::bad_manifest, index};
        if (detail::get_u64(payload) != out.generation ||
            detail::get_u32(payload + 8) != chunk_count ||
            detail::get_u64(payload + 16) != payload_total ||
            detail::get_u32(payload + 24) != crc32c(crc_seq.data(), crc_seq.size())) {
          return {Verify::commit_mismatch, index};
        }
        if (off != in.size()) return {Verify::trailing_data, index};
        if (out.manifest.shard_count != out.shard_blobs.size()) {
          return {Verify::shard_chunk_mismatch, index};
        }
        return {Verify::ok, index};
      }
      default:
        return {Verify::unknown_chunk, index};
    }
    detail::put_u32(crc_seq, stored_crc);
    payload_total += len;
    ++chunk_count;
  }
}

}  // namespace qc::recovery
