// Durable checkpoint/restore for live sketches.
//
//   Checkpointer<Sketch>   periodic crash-safe snapshots of a Quancurrent or
//                          ShardedQuancurrent (any engine with the serde
//                          surface works; the sharded facade gets per-shard
//                          chunks) into <dir>/<name>.<generation>.qckp
//   recover<T>()           newest fully-verified single-sketch checkpoint
//   recover_sharded<T>()   same for the sharded facade, optionally restoring
//                          into a different shard count (re-routed via merge)
//   serialize_sharded() /
//   deserialize_sharded()  the container as an in-memory sharded serde — the
//                          ShardedQuancurrent round-trip the unframed v3
//                          serde never had
//
// Crash-consistency protocol (the classic one, with every step a named
// fault point — see recovery/io.hpp):
//
//   build image in memory -> write <final>.tmp (segmented) -> fsync(file)
//     -> rename(tmp, final) -> fsync(directory)
//
// A crash before the rename leaves only a .tmp (ignored and later swept); a
// crash after it leaves a complete, committed file.  The only window where a
// FINAL-named file can be incomplete is filesystem reordering the rename
// before the data blocks — which the pre-rename fsync forbids — so every
// surviving <name>.<gen>.qckp either passes full container verification or
// proves media-level corruption, and recovery falls back generation by
// generation until one verifies.  Snapshots ride the engine's under-latch
// serialize path: concurrent queriers stay wait-free for the whole
// checkpoint, updaters only contend with serialize exactly as they already
// do with merge_into.
//
// Transient I/O errors (and injected ones) retry the whole attempt with
// bounded exponential backoff — the sleeping cousin of common/backoff.hpp's
// pause->yield spin ladder, with the same geometric-escalation-to-a-cap
// shape at syscall timescales.
#pragma once

#include <algorithm>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/quancurrent.hpp"
#include "core/sharded.hpp"
#include "recovery/container.hpp"
#include "recovery/io.hpp"
#include "serde/binary.hpp"

namespace qc::recovery {

struct CheckpointOptions {
  std::string dir;              // checkpoint directory (created if missing)
  std::string name = "sketch";  // file stem: <name>.<generation>.qckp
  std::uint32_t keep = 3;       // committed generations retained on disk
  std::uint32_t attempts = 5;   // write attempts per checkpoint() (>= 1)
  std::uint32_t backoff_init_us = 100;     // first retry delay
  std::uint32_t backoff_cap_us = 20'000;   // retry delay ceiling
  bool fsync_directory = true;  // fsync the dir after rename (full durability)
};

struct CheckpointStats {
  std::uint64_t committed = 0;  // checkpoints durably renamed into place
  std::uint64_t failed = 0;     // checkpoint() calls that exhausted attempts
  std::uint64_t retries = 0;    // attempts retried after a transient I/O error
  std::uint64_t pruned = 0;     // expired generation files unlinked
};

// What recovery did and why: every rejected candidate with its reason
// (container Verify name, serde status, or "io_error"), newest first, plus
// the identity of the checkpoint that won.
struct RecoveryReport {
  struct Skipped {
    std::string file;
    std::string reason;
  };
  std::vector<Skipped> skipped;
  std::string recovered_file;  // empty: no recoverable checkpoint found
  std::uint64_t generation = 0;
  std::uint32_t stored_shards = 0;
  bool rerouted = false;  // shard-count change bridged via merge re-routing
  bool ok() const { return !recovered_file.empty(); }
};

// Engines whose checkpoint should be per-shard chunks (the sharded facade).
template <typename S>
concept ShardedEngine = requires(const S& s) {
  { s.num_shards() } -> std::convertible_to<std::uint32_t>;
  s.shard(std::uint32_t{0});
};

namespace detail {

// serialize with the size/serialize race retried, as qc::to_bytes does —
// under concurrent ingestion the payload can grow between the two calls.
//
// Capability note (common/annotations.hpp): serialize()/serialized_size()
// take the sketch's install latch internally (QC_EXCLUDES on their side), so
// the under-latch snapshot discipline — no allocation, no blocking while the
// ladder is frozen — is enforced where the latch lives.  This helper, and
// the Checkpointer above it, must therefore never be called with that latch
// held; holding it here would deadlock in write_payload's LatchGuard.
template <typename Sketch>
std::vector<std::byte> sketch_bytes(const Sketch& sk) {
  std::vector<std::byte> out;
  std::size_t written = 0;
  do {
    out.resize(sk.serialized_size());
    written = sk.serialize(out);
  } while (written == 0 && !out.empty());
  out.resize(written);
  return out;
}

inline std::string gen_filename(const std::string& name, std::uint64_t gen) {
  char digits[24];
  std::snprintf(digits, sizeof(digits), "%020llu",
                static_cast<unsigned long long>(gen));
  return name + "." + digits + ".qckp";
}

// Parses "<name>.<20 digits>.qckp[.tmp]"; false when `file` is not one of
// ours (recovery shares directories with anything).
inline bool parse_gen(const std::string& file, const std::string& name,
                      std::uint64_t& gen, bool& is_tmp) {
  const std::string prefix = name + ".";
  if (file.size() < prefix.size() + 20 + 5) return false;
  if (file.compare(0, prefix.size(), prefix) != 0) return false;
  gen = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    const char c = file[prefix.size() + i];
    if (c < '0' || c > '9') return false;
    gen = gen * 10 + static_cast<std::uint64_t>(c - '0');
  }
  const std::string rest = file.substr(prefix.size() + 20);
  if (rest == ".qckp") {
    is_tmp = false;
    return true;
  }
  if (rest == ".qckp.tmp") {
    is_tmp = true;
    return true;
  }
  return false;
}

// Committed checkpoints in `dir` for `name`, newest generation first.
inline std::vector<std::pair<std::uint64_t, std::string>> list_generations(
    const std::string& dir, const std::string& name) {
  namespace fs = std::filesystem;
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end; it.increment(ec)) {
    std::uint64_t gen = 0;
    bool is_tmp = false;
    if (parse_gen(it->path().filename().string(), name, gen, is_tmp) && !is_tmp) {
      out.emplace_back(gen, it->path().string());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

}  // namespace detail

// The full container image for one sketch at one generation.  Sharded
// engines get one chunk per shard (each shard serialized under its own
// latch — per-shard consistent, facade-level a momentary cut, same as any
// cross-shard query); everything else is a single-shard container.
template <typename Sketch>
std::vector<std::byte> encode_checkpoint(const Sketch& sketch,
                                         std::uint64_t generation) {
  ContainerWriter w(generation);
  if constexpr (ShardedEngine<Sketch>) {
    const std::uint32_t shards = sketch.num_shards();
    std::vector<std::vector<std::byte>> blobs;
    blobs.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
      blobs.push_back(detail::sketch_bytes(sketch.shard(s)));
    }
    w.add_manifest(SketchKind::sharded, shards, sketch.size());
    for (std::uint32_t s = 0; s < shards; ++s) w.add_shard(s, blobs[s]);
  } else {
    const std::vector<std::byte> blob = detail::sketch_bytes(sketch);
    w.add_manifest(SketchKind::single, 1, sketch.size());
    w.add_shard(0, blob);
  }
  return std::move(w).finish();
}

// Periodic durable snapshots of one live sketch.  Not thread-safe itself
// (one checkpointing thread), but checkpoint() runs concurrently with the
// sketch's updaters and queriers under the engine's normal contracts.
template <typename Sketch>
class Checkpointer {
 public:
  Checkpointer(const Sketch& sketch, CheckpointOptions opts)
      : sketch_(&sketch), opts_(std::move(opts)) {
    if (opts_.keep == 0) opts_.keep = 1;
    if (opts_.attempts == 0) opts_.attempts = 1;
    std::error_code ec;
    std::filesystem::create_directories(opts_.dir, ec);
    // Resume the generation sequence after a restart: newer numbers must
    // never collide with what a previous incarnation committed.
    const auto existing = detail::list_generations(opts_.dir, opts_.name);
    last_committed_ = existing.empty() ? 0 : existing.front().first;
  }

  // Snapshots the sketch and makes it durable; true when a new generation
  // committed.  False only after `attempts` tries each failed on I/O — the
  // previous generations on disk are untouched either way.
  bool checkpoint() {
    const std::uint64_t gen = last_committed_ + 1;
    std::uint32_t delay_us = opts_.backoff_init_us;
    for (std::uint32_t attempt = 0; attempt < opts_.attempts; ++attempt) {
      if (attempt != 0) {
        ++stats_.retries;
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        delay_us = std::min(delay_us * 2, opts_.backoff_cap_us);
      }
      if (try_once(gen)) {
        last_committed_ = gen;
        ++stats_.committed;
        prune();
        return true;
      }
    }
    ++stats_.failed;
    return false;
  }

  // Last generation known durably committed (0: none yet this incarnation's
  // dir).  After recover(), the RecoveryReport's generation says which of
  // these actually survived.
  std::uint64_t generation() const { return last_committed_; }
  const CheckpointStats& stats() const { return stats_; }
  const CheckpointOptions& options() const { return opts_; }

 private:
  bool try_once(std::uint64_t gen) {
    // Fresh snapshot every attempt: a retry after a failed write should ship
    // the sketch's CURRENT state, not a stale image.
    const std::vector<std::byte> image = encode_checkpoint(*sketch_, gen);
    const std::string final_path =
        (std::filesystem::path(opts_.dir) / detail::gen_filename(opts_.name, gen))
            .string();
    const std::string tmp_path = final_path + ".tmp";
    const int fd =
        ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return false;
    bool ok = io::write_all(fd, image.data(), image.size()) && io::fsync_file(fd);
    ok = (::close(fd) == 0) && ok;
    if (!ok || !io::rename_file(tmp_path.c_str(), final_path.c_str())) {
      ::unlink(tmp_path.c_str());
      return false;
    }
    // Publish durability: without this a power cut can forget the rename.
    // Failing here retries the whole attempt — re-writing and re-renaming
    // the same generation is idempotent.
    if (opts_.fsync_directory && !io::fsync_dir(opts_.dir.c_str())) return false;
    return true;
  }

  // Runs only after a successful commit: expire generations beyond `keep`
  // and sweep stray temp files (any .tmp present now is a dead attempt —
  // ours was either renamed or already unlinked).
  void prune() {
    namespace fs = std::filesystem;
    const auto existing = detail::list_generations(opts_.dir, opts_.name);
    for (std::size_t i = opts_.keep; i < existing.size(); ++i) {
      if (::unlink(existing[i].second.c_str()) == 0) ++stats_.pruned;
    }
    std::error_code ec;
    for (fs::directory_iterator it(opts_.dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      std::uint64_t gen = 0;
      bool is_tmp = false;
      if (detail::parse_gen(it->path().filename().string(), opts_.name, gen,
                            is_tmp) &&
          is_tmp) {
        ::unlink(it->path().string().c_str());
      }
    }
  }

  const Sketch* sketch_;
  CheckpointOptions opts_;
  CheckpointStats stats_;
  std::uint64_t last_committed_ = 0;
};

namespace detail {

// Walks committed checkpoints newest-first.  Each candidate must pass FULL
// verification — readable, every chunk CRC, commit record, and an engine
// decode that accepts every payload — before it wins; any failure records
// the file and reason and falls back to the next-older generation.
template <typename Decode>
auto recover_scan(const std::string& dir, const std::string& name,
                  RecoveryReport* report, Decode&& decode) {
  using Result = std::invoke_result_t<Decode&, const Parsed&, std::string&>;
  RecoveryReport local;
  RecoveryReport& rep = report != nullptr ? *report : local;
  rep = RecoveryReport{};
  for (const auto& [gen, path] : list_generations(dir, name)) {
    std::vector<std::byte> bytes;
    if (!io::read_file(path.c_str(), bytes)) {
      rep.skipped.push_back({path, "io_error"});
      continue;
    }
    Parsed parsed;
    const ParseResult pr = parse_container(bytes, parsed);
    if (!pr.ok()) {
      rep.skipped.push_back({path, verify_name(pr.status)});
      continue;
    }
    std::string why;
    Result sk = decode(parsed, why);
    if (sk == nullptr) {
      rep.skipped.push_back({path, why.empty() ? "payload_rejected" : why});
      continue;
    }
    rep.recovered_file = path;
    rep.generation = parsed.generation;
    rep.stored_shards = static_cast<std::uint32_t>(parsed.shard_blobs.size());
    return sk;
  }
  return Result{};
}

// Shard blobs -> a facade.  want_shards == 0 or == stored adopts the
// deserialized shards directly (bit-exact restore); any other width rebuilds
// at the requested count and re-routes the stored shards round-robin via
// merge_into — total weight is conserved and answers stay within the
// per-sketch rank-error envelope (merge error composes within O(1/k)).
template <typename T, typename Compare>
std::unique_ptr<core::ShardedQuancurrent<T, Compare>> decode_sharded(
    const Parsed& parsed, std::uint32_t want_shards, std::string& why,
    bool* rerouted) {
  using Sharded = core::ShardedQuancurrent<T, Compare>;
  using Shard = core::Quancurrent<T, Compare>;
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(parsed.shard_blobs.size());
  for (std::size_t s = 0; s < parsed.shard_blobs.size(); ++s) {
    serde::Status st = serde::Status::ok;
    auto sk = Shard::deserialize(parsed.shard_blobs[s], &st);
    if (sk == nullptr) {
      why = "shard " + std::to_string(s) + ": " + serde::status_name(st);
      return nullptr;
    }
    shards.push_back(std::move(sk));
  }
  const std::uint32_t stored = static_cast<std::uint32_t>(shards.size());
  if (stored == 0) {
    why = "no_shard_chunks";
    return nullptr;
  }
  if (want_shards == 0 || want_shards == stored) {
    auto out = Sharded::adopt(std::move(shards));
    if (out == nullptr) why = "adopt_failed";
    return out;
  }
  const core::Options opts = shards[0]->options();
  auto out = std::make_unique<Sharded>(want_shards, opts);
  for (std::uint32_t s = 0; s < stored; ++s) {
    if (!shards[s]->merge_into(out->shard(s % want_shards))) {
      why = "shard " + std::to_string(s) + ": merge_reroute_failed";
      return nullptr;
    }
  }
  if (rerouted != nullptr) *rerouted = true;
  return out;
}

}  // namespace detail

// Newest fully-verified single-sketch checkpoint under <dir>/<name>.*, or
// nullptr when none survives (report says what was tried and why each
// candidate lost).
template <typename T, typename Compare = std::less<T>>
std::unique_ptr<core::Quancurrent<T, Compare>> recover(
    const std::string& dir, const std::string& name,
    RecoveryReport* report = nullptr) {
  return detail::recover_scan(
      dir, name, report,
      [](const Parsed& parsed,
         std::string& why) -> std::unique_ptr<core::Quancurrent<T, Compare>> {
        if (parsed.manifest.kind != SketchKind::single) {
          why = "kind_mismatch";
          return nullptr;
        }
        serde::Status st = serde::Status::ok;
        auto sk = core::Quancurrent<T, Compare>::deserialize(parsed.shard_blobs[0], &st);
        if (sk == nullptr) why = serde::status_name(st);
        return sk;
      });
}

// Sharded restore.  `shards` == 0 restores at the stored width (bit-exact
// per shard); a different width re-routes via merge (report->rerouted).
// Accepts single-kind checkpoints too — a lone sketch can be promoted into a
// sharded serving tier.
template <typename T, typename Compare = std::less<T>>
std::unique_ptr<core::ShardedQuancurrent<T, Compare>> recover_sharded(
    const std::string& dir, const std::string& name, std::uint32_t shards = 0,
    RecoveryReport* report = nullptr) {
  bool rerouted = false;
  auto sk = detail::recover_scan(
      dir, name, report,
      [&](const Parsed& parsed, std::string& why) {
        bool rr = false;
        auto out = detail::decode_sharded<T, Compare>(parsed, shards, why, &rr);
        if (out != nullptr) rerouted = rr;
        return out;
      });
  if (sk != nullptr && report != nullptr) report->rerouted = rerouted;
  return sk;
}

// The container as an in-memory sharded serde — the ShardedQuancurrent
// round-trip the unframed v3 serde never had.  Same bytes a checkpoint file
// holds, minus the file.
template <typename T, typename Compare>
std::vector<std::byte> serialize_sharded(
    const core::ShardedQuancurrent<T, Compare>& sketch,
    std::uint64_t generation = 0) {
  return encode_checkpoint(sketch, generation);
}

template <typename T, typename Compare = std::less<T>>
std::unique_ptr<core::ShardedQuancurrent<T, Compare>> deserialize_sharded(
    std::span<const std::byte> in, std::uint32_t shards = 0,
    std::string* why = nullptr) {
  Parsed parsed;
  const ParseResult pr = parse_container(in, parsed);
  if (!pr.ok()) {
    if (why != nullptr) *why = verify_name(pr.status);
    return nullptr;
  }
  std::string local;
  auto sk = detail::decode_sharded<T, Compare>(parsed, shards, local, nullptr);
  if (sk == nullptr && why != nullptr) *why = local;
  return sk;
}

}  // namespace qc::recovery
