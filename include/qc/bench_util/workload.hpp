// Canned ingestion and query workloads shared by the figure benches.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "bench_util/harness.hpp"
#include "common/timer.hpp"
#include "core/quancurrent.hpp"
#include "sequential/quantiles_sketch.hpp"

namespace qc::bench {

// Feeds `data` into a sequential sketch; returns wall seconds.
template <typename Sketch>
double ingest_sequential(Sketch& sketch, const std::vector<double>& data) {
  Timer timer;
  for (const double v : data) sketch.update(v);
  return timer.seconds();
}

// Feeds `data` into a concurrent sketch (Quancurrent or ShardedQuancurrent —
// anything with make_updater/quiesce) from `threads` update threads, each
// owning a contiguous slice; returns wall seconds.  With quiesce=true the
// measured interval also covers draining local/gather buffers, after which
// sketch.size() == data.size().
template <typename Sketch, typename T = typename Sketch::value_type>
double ingest_quancurrent(Sketch& sketch, const std::vector<T>& data,
                          std::uint32_t threads, bool quiesce = false) {
  if (threads == 0) threads = 1;
  const auto ranges = split_ranges(data.size(), threads);
  const double seconds = timed_parallel(threads, [&](std::uint32_t tid) {
    auto updater = sketch.make_updater(tid);
    const auto [begin, end] = ranges[tid];
    updater.update(std::span<const T>(data.data() + begin, end - begin));
  });
  if (!quiesce) return seconds;
  Timer drain_timer;
  sketch.quiesce();
  return seconds + drain_timer.seconds();
}

// Feeds `data` into an FCDS-style baseline (anything whose make_updater
// takes a worker index and whose updaters drain on destruction — see
// baselines/fcds.hpp) from `threads` worker threads, each owning a
// contiguous slice; returns wall seconds of the worker phase.  Mirrors
// ingest_quancurrent without quiesce: the propagator keeps consuming after
// the workers return, leaving at most the design's relaxation bound (2NB)
// unconsumed — the same measurement convention fig10 uses for both engines.
template <typename Sketch, typename T = typename Sketch::value_type>
double ingest_fcds(Sketch& sketch, const std::vector<T>& data, std::uint32_t threads) {
  if (threads == 0) threads = 1;
  const auto ranges = split_ranges(data.size(), threads);
  return timed_parallel(threads, [&](std::uint32_t tid) {
    auto updater = sketch.make_updater(tid);
    const auto [begin, end] = ranges[tid];
    for (std::uint64_t i = begin; i < end; ++i) updater.update(data[i]);
  });
}

// Refresh-latency sampling cadence: timing every refresh would swamp the
// fast incremental path, so workloads time one refresh in every
// kLatencySamplePeriod queries.
inline constexpr std::uint64_t kLatencySamplePeriod = 64;

// The query inner loop shared by the query-only and mixed workloads: one
// refresh + one quantile per query, phi sweeping (0, 1), one timed refresh
// per kLatencySamplePeriod.  Runs while keep_going(count); returns the query
// count.  full_refresh = true bypasses the querier's incremental snapshot
// cache (refresh_full) on every query — the cache-off arm of the
// abl_structures ablation; queriers without a refresh_full (e.g. the
// sharded facade's) silently keep the cached path.
template <typename Querier, typename KeepGoing>
std::uint64_t query_loop(Querier& querier, std::vector<double>& latency_us,
                         double phi_start, KeepGoing&& keep_going,
                         bool full_refresh = false) {
  const auto do_refresh = [&querier, full_refresh] {
    if constexpr (requires { querier.refresh_full(); }) {
      if (full_refresh) {
        querier.refresh_full();
        return;
      }
    }
    querier.refresh();
  };
  std::uint64_t count = 0;
  double phi = phi_start;
  while (keep_going(count)) {
    if (count % kLatencySamplePeriod == 0) {
      Timer rt;
      do_refresh();
      latency_us.push_back(rt.seconds() * 1e6);
    } else {
      do_refresh();
    }
    (void)querier.quantile(phi);
    ++count;
    phi += 0.001;
    if (phi >= 1.0) phi = 0.001;
  }
  return count;
}

// Pools per-thread latency samples and returns their {p50, p99} in microseconds.
inline std::pair<double, double> pooled_refresh_percentiles(
    std::vector<std::vector<double>>& per_thread) {
  std::vector<double> all;
  for (auto& v : per_thread) all.insert(all.end(), v.begin(), v.end());
  return {percentile(all, 0.50), percentile(all, 0.99)};
}

// Query-only load: `threads` queriers each issue `queries_per_thread`
// snapshot-and-quantile operations (refresh + quantile per query, as the
// paper's query threads do).  Holes/retries are the sketch-stat deltas over
// the run, so the sketch should be constructed with collect_stats=true for
// them to be meaningful.
template <typename Sketch>
QueryLoadStats run_query_load(Sketch& sketch, std::uint32_t threads,
                              std::uint64_t queries_per_thread) {
  if (threads == 0) threads = 1;
  const auto before = sketch.stats();
  std::vector<std::vector<double>> latencies(threads);
  const double seconds = timed_parallel(threads, [&](std::uint32_t t) {
    auto querier = sketch.make_querier();
    latencies[t].reserve(queries_per_thread / kLatencySamplePeriod + 1);
    query_loop(querier, latencies[t], 0.001 * (t + 1),
               [queries_per_thread](std::uint64_t count) {
                 return count < queries_per_thread;
               });
  });
  const auto after = sketch.stats();

  QueryLoadStats stats;
  stats.queries = queries_per_thread * threads;
  stats.queries_per_sec = throughput(stats.queries, seconds);
  std::tie(stats.refresh_p50_us, stats.refresh_p99_us) =
      pooled_refresh_percentiles(latencies);
  stats.holes = after.holes - before.holes;
  stats.query_retries = after.query_retries - before.query_retries;
  return stats;
}

// Mixed update/query workload result (fig06c).
struct MixedResult {
  double update_throughput = 0.0;
  double query_throughput = 0.0;
  double refresh_p50_us = 0.0;
  double refresh_p99_us = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t holes = 0;
  std::uint64_t query_retries = 0;
  // Derived: holes / queries — the fraction of query snapshots (scaled by
  // arrays per acceptance) that had to accept an unvalidated array.  The
  // snapshot-cache ablation (abl_structures) reads it directly.
  double query_miss_rate = 0.0;
};

// Runs `upd_threads` updaters pushing all of `updates` while `qry_threads`
// queriers issue refresh+quantile operations until the updates finish.
// full_refresh forces the cache-bypassing query path (see query_loop).
template <typename Sketch, typename T = typename Sketch::value_type>
MixedResult run_mixed(Sketch& sketch, const std::vector<T>& updates,
                      std::uint32_t upd_threads, std::uint32_t qry_threads,
                      bool full_refresh = false) {
  if (upd_threads == 0) upd_threads = 1;
  const auto before = sketch.stats();
  const auto ranges = split_ranges(updates.size(), upd_threads);
  std::atomic<std::uint32_t> updaters_left{upd_threads};
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> total_queries{0};
  std::vector<std::vector<double>> latencies(qry_threads);

  const double seconds = timed_parallel(upd_threads + qry_threads, [&](std::uint32_t t) {
    if (t < upd_threads) {
      {
        auto updater = sketch.make_updater(t);
        const auto [begin, end] = ranges[t];
        updater.update(std::span<const T>(updates.data() + begin, end - begin));
      }
      if (updaters_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        done.store(true, std::memory_order_release);
      }
    } else {
      auto querier = sketch.make_querier();
      const std::uint64_t count =
          query_loop(querier, latencies[t - upd_threads], 0.001 * (t + 1),
                     [&done](std::uint64_t) {
                       return !done.load(std::memory_order_acquire);
                     },
                     full_refresh);
      total_queries.fetch_add(count, std::memory_order_acq_rel);
    }
  });
  const auto after = sketch.stats();

  MixedResult r;
  r.update_throughput = throughput(updates.size(), seconds);
  r.queries = total_queries.load(std::memory_order_acquire);
  r.query_throughput = throughput(r.queries, seconds);
  std::tie(r.refresh_p50_us, r.refresh_p99_us) = pooled_refresh_percentiles(latencies);
  r.holes = after.holes - before.holes;
  r.query_retries = after.query_retries - before.query_retries;
  r.query_miss_rate =
      r.queries == 0 ? 0.0 : static_cast<double>(r.holes) / static_cast<double>(r.queries);
  return r;
}

}  // namespace qc::bench
