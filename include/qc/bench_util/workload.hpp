// Canned ingestion workloads shared by the figure benches.
#pragma once

#include <cstdint>
#include <vector>

#include "bench_util/harness.hpp"
#include "common/timer.hpp"
#include "core/quancurrent.hpp"
#include "sequential/quantiles_sketch.hpp"

namespace qc::bench {

// Feeds `data` into a sequential sketch; returns wall seconds.
template <typename Sketch>
double ingest_sequential(Sketch& sketch, const std::vector<double>& data) {
  Timer timer;
  for (const double v : data) sketch.update(v);
  return timer.seconds();
}

// Feeds `data` into a Quancurrent sketch from `threads` update threads, each
// owning a contiguous slice; returns wall seconds.  With quiesce=true the
// measured interval also covers draining local/gather buffers, after which
// sketch.size() == data.size().
template <typename T>
double ingest_quancurrent(core::Quancurrent<T>& sketch, const std::vector<T>& data,
                          std::uint32_t threads, bool quiesce = false) {
  if (threads == 0) threads = 1;
  const auto ranges = split_ranges(data.size(), threads);
  const double seconds = timed_parallel(threads, [&](std::uint32_t tid) {
    auto updater = sketch.make_updater(tid);
    const auto [begin, end] = ranges[tid];
    for (std::uint64_t i = begin; i < end; ++i) updater.update(data[i]);
  });
  if (!quiesce) return seconds;
  Timer drain_timer;
  sketch.quiesce();
  return seconds + drain_timer.seconds();
}

}  // namespace qc::bench
