// Shared measurement scaffolding for the figure benches: run averaging,
// thread sweeps, phi grids, throughput conversion, latency percentiles, and
// the JSON series emitter CI tracks perf trajectories with.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "common/timer.hpp"

namespace qc {

// Operations per second for `ops` operations completed in `seconds`.
inline double throughput(std::uint64_t ops, double seconds) {
  return seconds <= 0.0 ? 0.0 : static_cast<double>(ops) / seconds;
}

namespace bench {

// Averages `fn()` (returning a double metric) over `runs` repetitions.
template <typename Fn>
double average_runs(std::uint32_t runs, Fn&& fn) {
  if (runs == 0) runs = 1;
  double sum = 0.0;
  for (std::uint32_t r = 0; r < runs; ++r) sum += fn();
  return sum / static_cast<double>(runs);
}

// Powers of two up to max_threads, plus max_threads itself if not a power of
// two: 1, 2, 4, ..., max.
inline std::vector<std::uint32_t> thread_sweep(std::uint32_t max_threads) {
  if (max_threads == 0) max_threads = 1;
  std::vector<std::uint32_t> sweep;
  for (std::uint32_t t = 1; t <= max_threads; t *= 2) sweep.push_back(t);
  if (sweep.back() != max_threads) sweep.push_back(max_threads);
  return sweep;
}

// `points` quantile fractions spread evenly over (0, 1).
inline std::vector<double> phi_grid(std::uint32_t points) {
  std::vector<double> grid;
  grid.reserve(points);
  for (std::uint32_t i = 0; i < points; ++i) {
    grid.push_back((static_cast<double>(i) + 0.5) / static_cast<double>(points));
  }
  return grid;
}

// Splits [0, n) into `parts` contiguous half-open ranges of near-equal size.
inline std::vector<std::pair<std::uint64_t, std::uint64_t>> split_ranges(
    std::uint64_t n, std::uint32_t parts) {
  if (parts == 0) parts = 1;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  ranges.reserve(parts);
  std::uint64_t begin = 0;
  for (std::uint32_t p = 0; p < parts; ++p) {
    const std::uint64_t end = begin + n / parts + (p < n % parts ? 1 : 0);
    ranges.emplace_back(begin, end);
    begin = end;
  }
  return ranges;
}

// Runs fn(thread_index) on `threads` std::threads; returns wall seconds of
// the working phase.  Threads rendezvous on a start barrier before the clock
// starts, so thread-creation cost is excluded (steady-state throughput, as
// the paper measures).
template <typename Fn>
double timed_parallel(std::uint32_t threads, Fn&& fn) {
  if (threads == 0) threads = 1;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  std::atomic<std::uint32_t> ready{0};
  std::atomic<bool> go{false};
  for (std::uint32_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      fn(t);
    });
  }
  while (ready.load(std::memory_order_acquire) != threads) std::this_thread::yield();
  Timer timer;
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  return timer.seconds();
}

// The q-th percentile (q in [0, 1]) of an unsorted sample set, by partial
// selection; reorders `samples`.  Returns 0 for an empty set.
inline double percentile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::size_t idx = std::min(
      samples.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1) + 0.5));
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(idx), samples.end());
  return samples[idx];
}

// Concurrent-query measurements reported by the query/mixed workloads:
// throughput plus snapshot-refresh latency percentiles and the sketch's
// hole/retry counters over the measured interval.
struct QueryLoadStats {
  double queries_per_sec = 0.0;
  double refresh_p50_us = 0.0;
  double refresh_p99_us = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t holes = 0;
  std::uint64_t query_retries = 0;
};

// Directory benches drop BENCH_*.json files into; "" (unset) disables JSON
// output.  Set by bench/run_all.sh and CI via QC_BENCH_JSON.
inline std::string json_out_dir() { return env::get_str("QC_BENCH_JSON", ""); }

// Accumulates a (threads -> value) series plus optional named counters and
// writes them as a small JSON document — the machine-readable perf trajectory
// CI uploads as an artifact.  Counters carry run diagnostics alongside the
// headline metric (e.g. fig06a's ingest contention counters: gather_waits,
// latch_spins, combined_installs, ...), so a trajectory diff can say *why*
// throughput moved.
class JsonSeries {
 public:
  JsonSeries(std::string bench, std::string scale, std::string metric)
      : bench_(std::move(bench)), scale_(std::move(scale)), metric_(std::move(metric)) {}

  void add(std::uint32_t threads, double value) { points_.emplace_back(threads, value); }

  void counter(std::string name, double value) {
    counters_.emplace_back(std::move(name), value);
  }

  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"scale\": \"%s\",\n  \"metric\": \"%s\",\n",
                 bench_.c_str(), scale_.c_str(), metric_.c_str());
    std::fprintf(f, "  \"points\": [");
    for (std::size_t i = 0; i < points_.size(); ++i) {
      std::fprintf(f, "%s\n    {\"threads\": %u, \"value\": %.17g}", i == 0 ? "" : ",",
                   points_[i].first, points_[i].second);
    }
    std::fprintf(f, "\n  ]");
    if (!counters_.empty()) {
      std::fprintf(f, ",\n  \"counters\": {");
      for (std::size_t i = 0; i < counters_.size(); ++i) {
        std::fprintf(f, "%s\n    \"%s\": %.17g", i == 0 ? "" : ",",
                     counters_[i].first.c_str(), counters_[i].second);
      }
      std::fprintf(f, "\n  }");
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::string bench_;
  std::string scale_;
  std::string metric_;
  std::vector<std::pair<std::uint32_t, double>> points_;
  std::vector<std::pair<std::string, double>> counters_;
};

// Flat (name -> value) JSON emitter for benches whose results are keyed by
// configuration rather than thread count (e.g. micro_primitives' gather-path
// sweep over (k, b) and the install-combining depth sweep).
class JsonKv {
 public:
  JsonKv(std::string bench, std::string scale)
      : bench_(std::move(bench)), scale_(std::move(scale)) {}

  void add(std::string name, double value) {
    values_.emplace_back(std::move(name), value);
  }

  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"scale\": \"%s\",\n  \"values\": {",
                 bench_.c_str(), scale_.c_str());
    for (std::size_t i = 0; i < values_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %.17g", i == 0 ? "" : ",",
                   values_[i].first.c_str(), values_[i].second);
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::string bench_;
  std::string scale_;
  std::vector<std::pair<std::string, double>> values_;
};

}  // namespace bench
}  // namespace qc
