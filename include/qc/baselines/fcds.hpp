// FCDS-style concurrent quantiles baseline (Rinberg & Keidar, "Fast
// Concurrent Data Sketches") — the design Figure 10 compares Quancurrent
// against at matched relaxation.
//
// Architecture, as in the FCDS paper:
//
//   * N WORKERS, each owning TWO buffers of B elements.  A worker fills its
//     current buffer; when full it pre-sorts the buffer in place
//     (core/batch_sort.hpp — sort work stays on the worker, exactly as
//     Quancurrent's updaters pre-sort their b-chunks), marks it ready with
//     one release store, and switches to its other buffer.  If that buffer
//     is still awaiting the propagator, the worker BLOCKS — the bottleneck
//     Quancurrent's §5.5 analysis attributes FCDS's flat scaling to.
//   * ONE PROPAGATOR thread round-robins over the workers, consuming ready
//     buffers in per-worker FIFO order into a classic compaction ladder: the
//     sorted buffers accumulate as runs of a 2k base; a full base is
//     multiway-merged (core/run_merge.hpp RunMerger — the same primitive as
//     Quancurrent's Gather&Sort, so the baseline is not a strawman), halved
//     by odd/even sampling, and propagated up k-sized levels.
//   * DOUBLE-BUFFERED SNAPSHOTS, WAIT-FREE READERS.  Every `publish_every`
//     propagated elements the propagator rebuilds the query summary into the
//     inactive snapshot buffer and flips the active index with one atomic
//     store.  Readers take no lock: they pin the buffer they answer from
//     with a per-buffer counter (pin, re-check the index, read, unpin), and
//     the propagator waits for the inactive buffer's pins to drain before
//     rebuilding it — so queries are wait-free (a reader retries at most
//     once per flip it races) and the fig10 mixed-workload comparison is no
//     longer handicapped by a snapshot mutex on the baseline's query path.
//     Between publishes, queries see a stale view — FCDS's query-side
//     relaxation.
//
// Relaxation: up to 2NB ingested elements (two B-buffers per worker) are
// invisible to the propagator at any time (analysis/relaxation.hpp).
//
// Determinism: with a single worker, B dividing 2k, and a quiesced sketch,
// every compaction block holds the same 2k stream elements a sequential
// QuantilesSketch would compact, and the compaction coin stream (one xoshiro
// bool per compaction, same seed) aligns — so quantile() and rank() match
// the sequential sketch bit-for-bit (tested).  A non-dividing B partitions
// the stream into different (equally valid) 2k blocks — worker buffers are
// pre-sorted, so a buffer straddling the boundary contributes its smallest
// items first — and answers stay within the same O(1/k) envelope.
//
// Thread contract: one Updater per worker index, one thread per Updater.
// quiesce() and the destructor require all updaters to have drained
// (destroyed or drain()ed); queries are safe concurrently with everything.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/backoff.hpp"
#include "common/rng.hpp"
#include "core/batch_sort.hpp"
#include "core/run_merge.hpp"
#include "sequential/quantiles_sketch.hpp"

namespace qc::fcds {

template <typename T, typename Compare = std::less<T>>
class FcdsQuantiles {
  static_assert(std::is_trivially_copyable_v<T>,
                "worker buffers hand raw items across threads");

 private:
  struct Slot;  // per-worker double buffer, defined with the engine state below

 public:
  using value_type = T;

  struct Options {
    std::uint32_t k = 4096;              // summary size (level arrays hold k items)
    std::uint64_t worker_buffer = 1024;  // B: elements per worker buffer (two per worker)
    std::uint32_t num_workers = 1;       // N: worker slots (one Updater each)
    std::uint64_t publish_every = 4096;  // propagated elements between snapshot publishes
    std::uint64_t seed = 0x5eed5eed5eed5eedULL;  // compaction coin stream
  };

  explicit FcdsQuantiles(Options opts) : opts_(opts), rng_(opts.seed) {
    if (opts_.k < 2) opts_.k = 2;
    if (opts_.worker_buffer == 0) opts_.worker_buffer = 1;
    if (opts_.num_workers == 0) opts_.num_workers = 1;
    if (opts_.publish_every == 0) opts_.publish_every = 1;
    cap_ = 2 * static_cast<std::uint64_t>(opts_.k);
    base_.reserve(cap_);
    merged_.resize(cap_);
    slots_.reserve(opts_.num_workers);
    for (std::uint32_t w = 0; w < opts_.num_workers; ++w) {
      slots_.push_back(std::make_unique<Slot>(opts_.worker_buffer));
    }
    propagator_ = std::thread([this] { propagate_loop(); });
  }

  FcdsQuantiles(const FcdsQuantiles&) = delete;
  FcdsQuantiles& operator=(const FcdsQuantiles&) = delete;

  ~FcdsQuantiles() {
    stop_.store(true, std::memory_order_release);
    propagator_.join();
  }

  const Options& options() const { return opts_; }

  // ----- ingestion ---------------------------------------------------------

  // Per-worker ingestion handle; not thread-safe, one per worker index.
  class Updater {
   public:
    Updater(FcdsQuantiles& sketch, std::uint32_t worker_index)
        : sketch_(&sketch),
          slot_(sketch.slots_[worker_index % sketch.opts_.num_workers].get()),
          b_(sketch.opts_.worker_buffer) {
      // Two updaters sharing a slot race on its buffers; the modulo above
      // keeps a release build in-bounds, but the misuse must fail fast.
      // qc-lint-allow(qc-check-over-assert): the modulo makes Release
      // memory-safe regardless; the assert only names the misuse in debug.
      assert(worker_index < sketch.opts_.num_workers &&
             "one Updater per worker slot: index must be < num_workers");
    }

    Updater(const Updater&) = delete;
    Updater& operator=(const Updater&) = delete;
    Updater(Updater&& other) noexcept
        : sketch_(std::exchange(other.sketch_, nullptr)),
          slot_(other.slot_),
          b_(other.b_),
          cur_(other.cur_),
          count_(std::exchange(other.count_, 0)),
          sort_aux_(std::move(other.sort_aux_)) {}
    Updater& operator=(Updater&&) = delete;

    ~Updater() { drain(); }

    void update(const T& v) {
      slot_->bufs[cur_].items[count_++] = v;
      if (count_ == b_) seal();
    }

    // Seals any partial buffer so every ingested element reaches the
    // propagator; called automatically on destruction.
    void drain() {
      if (sketch_ != nullptr && count_ != 0) seal();
    }

   private:
    // Pre-sorts the current buffer (worker-side sort, as FCDS prescribes),
    // publishes it to the propagator, and switches to the other buffer —
    // blocking until the propagator has consumed it (the 2NB relaxation
    // bound: a worker never holds more than two unconsumed buffers).
    void seal() {
      Buffer& buf = slot_->bufs[cur_];
      core::batch_sort(std::span<T>(buf.items.data(), count_), sort_aux_, sketch_->cmp_);
      buf.count = count_;
      buf.full.store(true, std::memory_order_release);
      cur_ ^= 1;
      count_ = 0;
      Backoff backoff;
      while (slot_->bufs[cur_].full.load(std::memory_order_acquire)) backoff.spin();
    }

    FcdsQuantiles* sketch_;
    Slot* slot_;
    std::uint64_t b_;
    std::uint32_t cur_ = 0;
    std::uint64_t count_ = 0;
    std::vector<T> sort_aux_;  // radix scratch for the worker-side sort
  };

  Updater make_updater(std::uint32_t worker_index) { return Updater(*this, worker_index); }

  // Waits until the propagator has consumed every sealed buffer, then forces
  // a snapshot publish, so queries see all ingested elements.
  // Precondition: no concurrent update() calls (updaters must have drained).
  void quiesce() {
    Backoff backoff;
    for (auto& slot : slots_) {
      for (const Buffer& buf : slot->bufs) {
        while (buf.full.load(std::memory_order_acquire)) backoff.spin();
      }
    }
    publish_req_.store(true, std::memory_order_release);
    while (publish_req_.load(std::memory_order_acquire)) backoff.spin();
  }

  // ----- queries (from the active published snapshot) ----------------------

  // Elements visible to queries right now (total weight of the active
  // snapshot); lags ingestion until the next publish or quiesce().
  std::uint64_t size() const {
    return with_snapshot(
        [](const WeightedSummaryT& snap) { return snap.total_weight(); });
  }

  T quantile(double phi) const {
    return with_snapshot([&](const WeightedSummaryT& snap) {
      return core::summary_quantile(snap, phi);
    });
  }

  std::uint64_t rank(const T& v) const {
    return with_snapshot([&](const WeightedSummaryT& snap) {
      return core::summary_rank(snap, v, cmp_);
    });
  }

  double cdf(const T& v) const {
    return with_snapshot([&](const WeightedSummaryT& snap) {
      const std::uint64_t total = snap.total_weight();
      return total == 0 ? 0.0
                        : static_cast<double>(core::summary_rank(snap, v, cmp_)) /
                              static_cast<double>(total);
    });
  }

  // Snapshot publishes performed so far (diagnostics).
  std::uint64_t publishes() const { return publishes_.load(std::memory_order_acquire); }

 private:
  friend class Updater;

  // One worker buffer.  `count` is written by the worker before the `full`
  // release store and read by the propagator after its acquire load, so it
  // needs no atomicity of its own; the worker only refills after observing
  // the propagator's `full = false` release store.
  struct Buffer {
    explicit Buffer(std::uint64_t b) : items(b) {}
    std::vector<T> items;
    std::uint64_t count = 0;
    std::atomic<bool> full{false};
  };

  struct Slot {
    explicit Slot(std::uint64_t b) : bufs{Buffer(b), Buffer(b)} {}
    alignas(64) Buffer bufs[2];
  };

  // The single propagation thread: consumes ready buffers (per-worker FIFO —
  // workers seal alternately starting at buffer 0, so alternating consumption
  // preserves each worker's stream order), feeds the ladder, and publishes
  // snapshots on cadence or on request.
  void propagate_loop() {
    // Assume the propagator role: every QC_GUARDED_BY(propagator_role_)
    // field below is now legal to touch, and ONLY from this function's call
    // tree — "a second thread rebuilds the ladder" (the PR 8 flip-race class)
    // becomes a compile error under -Wthread-safety instead of a TSan find.
    propagator_role_.assume();
    std::vector<std::uint32_t> next(slots_.size(), 0);
    Backoff idle;
    for (;;) {
      bool any = false;
      for (std::size_t w = 0; w < slots_.size(); ++w) {
        Buffer& buf = slots_[w]->bufs[next[w]];
        if (!buf.full.load(std::memory_order_acquire)) continue;
        ingest_sorted(std::span<const T>(buf.items.data(), buf.count));
        buf.full.store(false, std::memory_order_release);
        next[w] ^= 1;
        any = true;
      }
      if (publish_req_.load(std::memory_order_acquire)) {
        publish();
        publish_req_.store(false, std::memory_order_release);
      } else if (since_publish_ >= opts_.publish_every) {
        publish();
      }
      if (any) {
        idle.reset();
        continue;
      }
      if (stop_.load(std::memory_order_acquire)) {
        propagator_role_.release();
        return;
      }
      idle.spin();
    }
  }

  // Appends one sorted worker buffer to the 2k base as (up to two) sorted
  // runs, compacting whenever the base fills.  Propagator-only.
  void ingest_sorted(std::span<const T> sorted) QC_REQUIRES(propagator_role_) {
    std::size_t off = 0;
    while (off < sorted.size()) {
      const std::size_t take =
          std::min<std::size_t>(sorted.size() - off, cap_ - base_.size());
      base_starts_.push_back(base_.size());
      base_.insert(base_.end(), sorted.begin() + static_cast<std::ptrdiff_t>(off),
                   sorted.begin() + static_cast<std::ptrdiff_t>(off + take));
      off += take;
      if (base_.size() == cap_) compact_base();
    }
    since_publish_ += sorted.size();
  }

  // Multiway-merges the base's sorted runs into the sorted 2k batch (the
  // same RunMerger primitive Quancurrent's query engine uses), halves it by
  // odd/even sampling, and propagates the carry up the ladder.
  void compact_base() QC_REQUIRES(propagator_role_) {
    runs_.clear();
    for (std::size_t i = 0; i < base_starts_.size(); ++i) {
      const std::size_t start = base_starts_[i];
      const std::size_t end = i + 1 < base_starts_.size() ? base_starts_[i + 1] : cap_;
      runs_.push_back({base_.data() + start, end - start, 1});
    }
    merger_.merge_items(std::span<const core::RunRef<T>>(runs_), std::span<T>(merged_),
                        cmp_);
    std::vector<T> carry = sequential::sample_odd_or_even(
        std::span<const T>(merged_.data(), cap_), rng_.next_bool());
    base_.clear();
    base_starts_.clear();
    // The shared classic ladder (sequential/quantiles_sketch.hpp), so the
    // baseline's compaction can never drift from the sequential sketch's.
    sequential::ladder_propagate(levels_, std::move(carry), 1u, rng_, cmp_);
  }

  // Reader side of the pin protocol: pick the active snapshot, pin it, then
  // RE-CHECK the index — a flip between the load and the pin would otherwise
  // let the propagator rebuild the buffer under the reader.  seq_cst on the
  // four racing operations (pin, re-check, flip, drain-check) closes the
  // classic store/load reordering window where the reader still sees the old
  // index while the propagator already sees a zero pin count — the same
  // discipline the engine's IBR announce/publish pair uses.  Readers never
  // block: a lost race costs one retry, and the index cannot flip again
  // until the propagator has drained this buffer's pins, so the second
  // attempt always lands.
  template <typename Fn>
  auto with_snapshot(Fn&& fn) const {
    for (;;) {
      const std::uint32_t idx = active_.load(std::memory_order_seq_cst);
      snap_pins_[idx].fetch_add(1, std::memory_order_seq_cst);
      if (active_.load(std::memory_order_seq_cst) == idx) {
        auto result = fn(snaps_[idx]);
        snap_pins_[idx].fetch_sub(1, std::memory_order_release);
        return result;
      }
      snap_pins_[idx].fetch_sub(1, std::memory_order_relaxed);
    }
  }

  // Rebuilds the query summary into the inactive snapshot buffer, then flips
  // the active index — no mutex anywhere (wait-free readers, see
  // with_snapshot).  The wait below is propagator-only and bounded: it
  // drains stragglers still pinning the buffer about to be rebuilt; new
  // readers pin the active buffer, so the count can only fall.
  void publish() QC_REQUIRES(propagator_role_) {
    const std::uint32_t next = active_.load(std::memory_order_relaxed) ^ 1;
    Backoff drain;
    while (snap_pins_[next].load(std::memory_order_seq_cst) != 0) drain.spin();
    WeightedSummaryT& snap = snaps_[next];
    runs_.clear();
    for (std::size_t i = 0; i < base_starts_.size(); ++i) {
      const std::size_t start = base_starts_[i];
      const std::size_t end =
          i + 1 < base_starts_.size() ? base_starts_[i + 1] : base_.size();
      runs_.push_back({base_.data() + start, end - start, 1});
    }
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      if (levels_[i].empty()) continue;
      runs_.push_back({levels_[i].data(), levels_[i].size(), 1ULL << (i + 1)});
    }
    snap_merger_.merge(std::span<const core::RunRef<T>>(runs_), snap, cmp_);
    active_.store(next, std::memory_order_seq_cst);
    publishes_.fetch_add(1, std::memory_order_acq_rel);
    since_publish_ = 0;
  }

  using WeightedSummaryT = core::WeightedSummary<T>;

  Options opts_;
  std::uint64_t cap_ = 0;  // base batch size: 2k
  Compare cmp_;
  Xoshiro256 rng_ QC_GUARDED_BY(propagator_role_);  // compaction coins

  std::vector<std::unique_ptr<Slot>> slots_;

  // Propagator-private ladder state, statically fenced off behind a phantom
  // role capability (common/annotations.hpp): the writer-side flip in
  // publish() and every ladder rebuild require the role only propagate_loop
  // assumes.
  sync::Role propagator_role_;
  // weight-1 items, a sequence of sorted runs
  std::vector<T> base_ QC_GUARDED_BY(propagator_role_);
  // start offset of each sorted run
  std::vector<std::size_t> base_starts_ QC_GUARDED_BY(propagator_role_);
  // sorted 2k batch scratch
  std::vector<T> merged_ QC_GUARDED_BY(propagator_role_);
  // levels_[i]: k items of weight 2^(i+1)
  std::vector<std::vector<T>> levels_ QC_GUARDED_BY(propagator_role_);
  std::vector<core::RunRef<T>> runs_ QC_GUARDED_BY(propagator_role_);
  core::RunMerger<T, Compare> merger_ QC_GUARDED_BY(propagator_role_);
  core::RunMerger<T, Compare> snap_merger_ QC_GUARDED_BY(propagator_role_);
  std::uint64_t since_publish_ QC_GUARDED_BY(propagator_role_) = 0;

  // Double-buffered published snapshots.  Readers pin the buffer they answer
  // from (snap_pins_), so a flip is one atomic index store and queries are
  // wait-free — the snapshot mutex this slot used to hold is gone.
  WeightedSummaryT snaps_[2];
  mutable std::array<std::atomic<std::uint64_t>, 2> snap_pins_{};
  std::atomic<std::uint32_t> active_{0};
  std::atomic<std::uint64_t> publishes_{0};

  std::atomic<bool> publish_req_{false};
  std::atomic<bool> stop_{false};
  std::thread propagator_;
};

}  // namespace qc::fcds
