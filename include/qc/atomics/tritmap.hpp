// The tritmap: a single 64-bit word encoding the occupancy of the levels
// array, two bits ("one trit") per level.  Trit i counts the k-sized sorted
// arrays currently installed at level i (0, 1, or 2); an array at level i
// carries weight 2^i per item, so the word alone determines the installed
// stream size:
//
//   stream_size(k) = sum_i trit(i) * k * 2^i
//
// State transitions mirror the paper's protocol:
//  * after_batch_update()            — a sorted 2k Gather&Sort batch lands at
//                                      level 0 as two k-arrays (trit 0 += 2);
//                                      stream size grows by exactly 2k.
//  * after_install_propagation(i)    — the two arrays at level i are merged,
//                                      compacted to one k-array, and installed
//                                      one level up (trit i -> 0,
//                                      trit i+1 += 1); stream size is
//                                      unchanged, which is what lets queries
//                                      read a consistent size from a single
//                                      atomic load at any point mid-cascade.
//
// Tritmap is a trivially copyable value type, so std::atomic<Tritmap> is
// lock-free on 64-bit targets and a writer can publish a whole batch (install
// plus full propagation cascade) with a single CAS.
#pragma once

#include <cassert>
#include <cstdint>

namespace qc {

class Tritmap {
 public:
  static constexpr std::uint32_t kMaxLevels = 32;
  static constexpr std::uint32_t kTritMask = 0x3;

  constexpr Tritmap() = default;
  constexpr explicit Tritmap(std::uint64_t raw) : raw_(raw) {}

  constexpr std::uint64_t raw() const { return raw_; }

  // Number of k-arrays installed at `level` (0..2).
  constexpr std::uint32_t trit(std::uint32_t level) const {
    // qc-lint-allow(qc-check-over-assert): constexpr context — QC_CHECK's
    // fprintf/abort path is not constant-evaluable, and an oversized level
    // only yields a wrong shift result here, not a wrong memory access.
    assert(level < kMaxLevels);
    return static_cast<std::uint32_t>(raw_ >> (2 * level)) & kTritMask;
  }

  constexpr Tritmap with_trit(std::uint32_t level, std::uint32_t value) const {
    // qc-lint-allow(qc-check-over-assert): constexpr context (see trit()).
    assert(level < kMaxLevels);
    assert(value <= 2);
    const std::uint64_t mask = static_cast<std::uint64_t>(kTritMask) << (2 * level);
    return Tritmap((raw_ & ~mask) | (static_cast<std::uint64_t>(value) << (2 * level)));
  }

  // A full 2k batch is installed at level 0.  Requires level 0 empty (the
  // propagation cascade always drains level 0 before the next batch).
  constexpr Tritmap after_batch_update() const {
    // qc-lint-allow(qc-check-over-assert): constexpr context, and a
    // violated cascade invariant miscounts levels — wrong answer, no unsafe
    // access (the memory-safety checks live at the install sites).
    assert(trit(0) == 0);
    return with_trit(0, 2);
  }

  // The two arrays at `level` are compacted into one array at `level + 1`.
  constexpr Tritmap after_install_propagation(std::uint32_t level) const {
    // qc-lint-allow(qc-check-over-assert): constexpr context (see above).
    assert(trit(level) == 2);
    assert(trit(level + 1) < 2);
    return with_trit(level, 0).with_trit(level + 1, trit(level + 1) + 1);
  }

  // Installed stream size implied by the occupancy word.
  constexpr std::uint64_t stream_size(std::uint64_t k) const {
    std::uint64_t total = 0;
    for (std::uint32_t level = 0; level < kMaxLevels; ++level) {
      total += static_cast<std::uint64_t>(trit(level)) * (k << level);
    }
    return total;
  }

  // Index one past the highest occupied level (0 when empty).
  constexpr std::uint32_t num_levels() const {
    std::uint32_t top = 0;
    for (std::uint32_t level = 0; level < kMaxLevels; ++level) {
      if (trit(level) != 0) top = level + 1;
    }
    return top;
  }

  friend constexpr bool operator==(Tritmap a, Tritmap b) { return a.raw_ == b.raw_; }

 private:
  std::uint64_t raw_ = 0;
};

}  // namespace qc
