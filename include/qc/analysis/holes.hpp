// §4.1 hole analysis: analytic bounds on the expected number of arrays a
// query must accept unvalidated ("holes") under concurrent ingestion.
//
// The paper's result, for a uniform scheduler: the expected number of holes
// in the first region is bounded by E[H1] <= 1.4 (the maximum, ~1.305, is
// attained near b = 9), each subsequent region contributes at most half the
// previous one's bound (a region at level i is rewritten only once per 2^i
// batches, so a racing install is half as likely to land there), and the
// total is therefore E[H] <= 2 * E[H1] <= 2.8 regardless of b.
//
// The exact closed form depends on the scheduler model; for the bench table
// we use a smooth surrogate calibrated to the paper's reported extremes
// (E[H1](1) = 0 — single-element flushes publish atomically w.r.t. the
// copy, E[H1](9) ~= 1.305 at the maximum, 1.4 global ceiling):
//
//   E[H1](b) ~= 1.305 * x * e^(1 - x),  x = (b - 1) / 8.
//
// tbl_holes juxtaposes these bounds with the empirical Stats::holes counters
// from a real (non-uniform) scheduler; same order of magnitude is the
// expected outcome, not equality.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace qc::analysis {

// Bound on E[H_region]: the expected holes contributed by the region-th most
// recently rewritten part of a snapshot (region 1 = the batch's entry
// levels), halving per region.
inline double expected_region_holes_bound(std::uint32_t region, std::uint32_t b) {
  if (region == 0 || b == 0) return 0.0;
  const double x = (static_cast<double>(b) - 1.0) / 8.0;
  const double h1 = std::min(1.4, 1.305 * x * std::exp(1.0 - x));
  return h1 / static_cast<double>(std::uint64_t{1} << std::min(region - 1, 62u));
}

// Bound on E[H]: total expected holes per accepted 2k-batch snapshot, summed
// over the ladder's regions.  The geometric halving caps this at 2 * E[H1]
// <= 2.8 for any k; k only sets how many regions exist before the sum has
// converged.
inline double expected_batch_holes_bound(std::uint32_t k, std::uint32_t b) {
  std::uint32_t regions = 1;
  while ((std::uint64_t{1} << regions) < 2 * static_cast<std::uint64_t>(k) &&
         regions < 62) {
    ++regions;
  }
  double total = 0.0;
  for (std::uint32_t region = 1; region <= regions; ++region) {
    total += expected_region_holes_bound(region, b);
  }
  return total;
}

}  // namespace qc::analysis
