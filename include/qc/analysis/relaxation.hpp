// Relaxation accounting for the Figure 10 comparison (Quancurrent §5.4 vs.
// FCDS, Rinberg & Keidar's Fast Concurrent Data Sketches).
//
// A relaxed sketch may hide a bounded number of already-ingested elements
// from queries.  Both designs trade relaxation for throughput, but through
// different knobs, so the fair comparison fixes a target relaxation r and
// derives each design's buffer size from it:
//
//   Quancurrent:  r = 4kS + (N - S) * b
//     Each of the S NUMA nodes hides up to rho = 2 Gather&Sort buffers of 2k
//     elements (4kS total), and each of the N update threads hides a local
//     buffer of b elements; the paper folds the S batch owners' buffers into
//     the gather term, leaving (N - S) * b.
//
//   FCDS:         r = 2NB
//     Each of the N workers owns two B-sized buffers (one filling, one
//     awaiting the propagator), all invisible until propagated.
//
// The *_buffer_for_relaxation helpers invert the formulas: the largest
// integer buffer size whose relaxation does not exceed the target (0 when no
// positive buffer fits).  They are exact inverses on achievable points:
// buffer_for_relaxation(relaxation(b)) == b.
#pragma once

#include <cstdint>

namespace qc::analysis {

// r = 4kS + (N - S) * b for N update threads over S nodes with local buffer b.
inline std::uint64_t quancurrent_relaxation(std::uint64_t k, std::uint64_t nodes,
                                            std::uint64_t threads, std::uint64_t b) {
  const std::uint64_t locals = threads > nodes ? (threads - nodes) * b : 0;
  return 4 * k * nodes + locals;
}

// Largest b with quancurrent_relaxation(k, nodes, threads, b) <= r; 0 when
// even b = 1 overshoots (the gather term alone exceeds r) or no thread has a
// local buffer to size (threads <= nodes).
inline std::uint64_t quancurrent_buffer_for_relaxation(std::uint64_t r, std::uint64_t k,
                                                       std::uint64_t nodes,
                                                       std::uint64_t threads) {
  const std::uint64_t gather = 4 * k * nodes;
  if (threads <= nodes || r < gather) return 0;
  return (r - gather) / (threads - nodes);
}

// r = 2NB for N workers with worker buffer B (two B-buffers per worker).
inline std::uint64_t fcds_relaxation(std::uint64_t workers, std::uint64_t B) {
  return 2 * workers * B;
}

// Largest B with fcds_relaxation(workers, B) <= r; 0 when r < 2N.
inline std::uint64_t fcds_buffer_for_relaxation(std::uint64_t r, std::uint64_t workers) {
  return workers == 0 ? 0 : r / (2 * workers);
}

}  // namespace qc::analysis
