// Sequential quantiles sketch with k-sized levels — the single-threaded base
// design that Quancurrent parallelizes (Karnin–Lang–Liberty-style compaction,
// as used by the paper's sequential baseline).
//
// Structure: a 2k-element base buffer of weight-1 items plus a ladder of
// levels, where level i holds at most one sorted array of exactly k items,
// each carrying weight 2^i.  When the base buffer fills, it is sorted and
// compacted (every other element, random parity) into a weight-2 array that
// propagates up the ladder, merging and re-compacting wherever a level is
// already occupied.  The expected normalized rank error is O(1/k).
//
// The base buffer is kept as a sequence of pre-sorted chunks: every time it
// crosses a `presort_chunk` boundary the newest chunk is sorted in place
// while it is still cache-hot, and the compaction/query paths produce the
// fully sorted base with the same chunk-merge primitive Quancurrent's
// Gather&Sort uses (core/run_merge.hpp ChunkMerger) instead of a
// from-scratch full sort — the Ivkin-style amortization of update-time sort
// work.  The
// merged output is the same value sequence a full sort would produce, so the
// sketch's state and answers are bit-identical either way (presort_chunk = 0
// restores the plain full-sort path).
//
// Queries go through the same merge-based engine as Quancurrent's Querier
// (core/run_merge.hpp): the levels are sorted runs already, so the summary is
// a multiway merge into a prefix-weight array, and quantile/rank are binary
// searches over it.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/options.hpp"
#include "core/run_merge.hpp"
#include "fault/inject.hpp"
#include "serde/binary.hpp"

namespace qc::sequential {

// Merges two sorted runs into one sorted vector.
template <typename T, typename Compare = std::less<T>>
std::vector<T> merge_sorted(std::span<const T> a, std::span<const T> b,
                            Compare cmp = Compare()) {
  std::vector<T> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out), cmp);
  return out;
}

// Keeps the odd- or even-indexed half of a sorted run (the KLL compaction
// step); the surviving items double their weight.
template <typename T>
std::vector<T> sample_odd_or_even(std::span<const T> sorted, bool keep_odd) {
  std::vector<T> out;
  out.reserve((sorted.size() + (keep_odd ? 0 : 1)) / 2);
  for (std::size_t i = keep_odd ? 1 : 0; i < sorted.size(); i += 2) {
    out.push_back(sorted[i]);
  }
  return out;
}

// Installs a k-sized sorted carry at `level` of a classic ladder (levels[i]
// holds one run of weight 2^(i+1)), merging and re-compacting upward while
// occupied — one rng coin per re-compaction.  Shared by QuantilesSketch and
// the FCDS baseline (baselines/fcds.hpp), whose single-worker bit-for-bit
// equivalence depends on the two ladders staying in lockstep.
template <typename T, typename Compare, typename Rng>
void ladder_propagate(std::vector<std::vector<T>>& levels, std::vector<T> carry,
                      std::uint32_t level, Rng& rng, Compare cmp) {
  for (;; ++level) {
    if (levels.size() < level) levels.resize(level);
    auto& slot = levels[level - 1];
    if (slot.empty()) {
      slot = std::move(carry);
      return;
    }
    const auto merged =
        merge_sorted(std::span<const T>(slot), std::span<const T>(carry), cmp);
    slot.clear();
    carry = sample_odd_or_even(std::span<const T>(merged), rng.next_bool());
  }
}

template <typename T, typename Compare = std::less<T>>
class QuantilesSketch {
  static_assert(std::is_trivially_copyable_v<T>,
                "binary serde ships items as raw bytes");

 public:
  using value_type = T;

  explicit QuantilesSketch(std::uint32_t k, std::uint64_t seed = 0x5eed5eed5eed5eedULL,
                           std::uint32_t presort_chunk = 256)
      // Same k ceiling as the concurrent engine (core::Options::kMaxK), so
      // serialized images of either engine never carry a k that deserialize
      // must reject.
      : k_(std::min(k == 0 ? 1 : k, core::Options::kMaxK)), rng_(seed), cmp_() {
    base_.reserve(2 * static_cast<std::size_t>(k_));
    chunk_ = std::min<std::size_t>(presort_chunk, 2 * static_cast<std::size_t>(k_));
    if (chunk_ == 2 * static_cast<std::size_t>(k_)) chunk_ = 0;  // one chunk = full sort
  }

  void update(const T& v) {
    base_.push_back(v);
    ++n_;
    dirty_ = true;
    if (chunk_ > 1 && base_.size() % chunk_ == 0) {
      // Sort the just-completed chunk while it is cache-hot; the base buffer
      // stays a sequence of sorted chunk_-runs plus an unsorted tail.
      std::sort(base_.end() - static_cast<std::ptrdiff_t>(chunk_), base_.end(), cmp_);
    }
    if (base_.size() == 2 * static_cast<std::size_t>(k_)) compact_base();
  }

  // Total number of elements fed into the sketch.
  std::uint64_t size() const { return n_; }

  // Number of items physically stored.
  std::uint64_t retained() const {
    std::uint64_t r = base_.size();
    for (const auto& level : levels_) r += level.size();
    return r;
  }

  std::uint32_t k() const { return k_; }

  // Estimated number of stream elements strictly less than `v`.
  std::uint64_t rank(const T& v) const {
    build_summary();
    return core::summary_rank(summary_, v, cmp_);
  }

  double cdf(const T& v) const {
    return n_ == 0 ? 0.0 : static_cast<double>(rank(v)) / static_cast<double>(n_);
  }

  // Estimated phi-quantile: the smallest retained item whose cumulative
  // weight reaches phi * n.
  T quantile(double phi) const {
    if (n_ == 0) return T{};
    build_summary();
    return core::summary_quantile(summary_, phi);
  }

  // The merged prefix-weight summary (rebuilt lazily after updates).
  const core::WeightedSummary<T>& summary() const {
    build_summary();
    return summary_;
  }

  // ----- merge --------------------------------------------------------------

  // Folds this sketch's contents into `target`: every occupied level becomes
  // a weight-preserving carry propagated up target's ladder (merging and
  // re-compacting where occupied, exactly as if the runs had been produced
  // there), and the base buffer replays as weight-1 updates.  Requires equal
  // k (level arrays are k-sized); returns false (and changes nothing) on a
  // k mismatch or self-merge.  The error bound composes: merging sketches
  // built from streams A and B yields a sketch whose rank error on A ∪ B is
  // within the same O(1/k) envelope as a single sketch fed both streams.
  bool merge_into(QuantilesSketch& target) const {
    if (target.k_ != k_ || &target == this) return false;
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      if (levels_[i].empty()) continue;
      target.propagate(levels_[i], static_cast<std::uint32_t>(i + 1));
      target.n_ += static_cast<std::uint64_t>(k_) << (i + 1);
    }
    for (const T& v : base_) target.update(v);
    target.dirty_ = true;
    return true;
  }

  // ----- binary serde -------------------------------------------------------

  // Bytes serialize() will emit for the current state.
  std::size_t serialized_size() const {
    serde::Writer counter;
    write_payload(counter);
    return counter.bytes();
  }

  // Writes the versioned binary image (see serde/binary.hpp) into `out`;
  // returns the bytes written, or 0 when `out` is too small.  The image
  // captures the full query-visible state plus the compaction rng, so a
  // deserialized sketch answers bit-identically AND continues ingesting with
  // the same coin sequence the source would have used.
  std::size_t serialize(std::span<std::byte> out) const {
    serde::Writer w(out);
    write_payload(w);
    return w.ok() ? w.bytes() : 0;
  }

  // Reconstructs a sketch from serialize()'s image; empty optional on any
  // malformed input, with the precise reason in *status when provided.
  static std::optional<QuantilesSketch> deserialize(std::span<const std::byte> in,
                                                    serde::Status* status = nullptr) {
    serde::Reader r(in);
    const serde::Status hs = serde::read_header(r, serde::Engine::sequential,
                                                static_cast<std::uint8_t>(sizeof(T)));
    if (hs != serde::Status::ok) {
      serde::set_status(status, hs);
      return std::nullopt;
    }
    std::uint32_t k = 0;
    std::uint64_t chunk = 0;
    std::uint64_t n = 0;
    std::array<std::uint64_t, 4> rng_state{};
    if (!r.get(k) || !r.get(chunk) || !r.get(n) || !r.get(rng_state)) {
      serde::set_status(status, serde::Status::short_buffer);
      return std::nullopt;
    }
    // The constructor clamps k to core::Options::kMaxK, so no genuine image
    // carries a larger value — and rejecting it here keeps a crafted blob
    // from demanding a k-proportional allocation.
    if (k == 0 || k > core::Options::kMaxK ||
        chunk > 2 * static_cast<std::uint64_t>(k)) {
      serde::set_status(status, serde::Status::bad_payload);
      return std::nullopt;
    }
    // Every allocation below is bounded by the bytes actually present, but a
    // malformed input must still yield nullopt, never an escaping bad_alloc —
    // the same contract (and the same injection point) as the concurrent
    // engine's deserialize.
    try {
      QC_INJECT_OOM(deserialize_alloc);
      QuantilesSketch sk(k);
      sk.chunk_ = static_cast<std::size_t>(chunk);
      sk.n_ = n;
      sk.rng_.set_state(rng_state);
      std::uint64_t base_count = 0;
      if (!r.get(base_count)) {
        serde::set_status(status, serde::Status::short_buffer);
        return std::nullopt;
      }
      if (base_count > 2 * static_cast<std::uint64_t>(k)) {
        serde::set_status(status, serde::Status::bad_payload);
        return std::nullopt;
      }
      // Bound the allocation by the bytes actually present (division so a
      // crafted count cannot overflow the check) BEFORE resizing.
      if (base_count > r.remaining() / sizeof(T)) {
        serde::set_status(status, serde::Status::short_buffer);
        return std::nullopt;
      }
      sk.base_.resize(static_cast<std::size_t>(base_count));
      if (!r.get_bytes(sk.base_.data(), sk.base_.size() * sizeof(T))) {
        serde::set_status(status, serde::Status::short_buffer);
        return std::nullopt;
      }
      // The base ships in ingestion order, but its completed chunk_-sized
      // blocks are sorted in place by update() — the chunk-merge query path
      // trusts exactly that, so a crafted image violating it is malformed.
      if (sk.chunk_ > 1) {
        for (std::size_t off = 0; off + sk.chunk_ <= sk.base_.size();
             off += sk.chunk_) {
          const auto first = sk.base_.begin() + static_cast<std::ptrdiff_t>(off);
          if (!std::is_sorted(first, first + static_cast<std::ptrdiff_t>(sk.chunk_),
                              sk.cmp_)) {
            serde::set_status(status, serde::Status::bad_payload);
            return std::nullopt;
          }
        }
      }
      std::uint32_t num_levels = 0;
      if (!r.get(num_levels)) {
        serde::set_status(status, serde::Status::short_buffer);
        return std::nullopt;
      }
      if (num_levels > 64) {
        serde::set_status(status, serde::Status::bad_payload);
        return std::nullopt;
      }
      sk.levels_.resize(num_levels);
      for (auto& level : sk.levels_) {
        std::uint8_t occupied = 0;
        if (!r.get(occupied)) {
          serde::set_status(status, serde::Status::short_buffer);
          return std::nullopt;
        }
        if (occupied > 1) {
          serde::set_status(status, serde::Status::bad_payload);
          return std::nullopt;
        }
        if (occupied == 0) continue;
        if (k > r.remaining() / sizeof(T)) {
          serde::set_status(status, serde::Status::short_buffer);
          return std::nullopt;
        }
        level.resize(k);
        if (!r.get_bytes(level.data(), level.size() * sizeof(T))) {
          serde::set_status(status, serde::Status::short_buffer);
          return std::nullopt;
        }
        // Level arrays are sorted runs by construction; see the base check.
        if (!std::is_sorted(level.begin(), level.end(), sk.cmp_)) {
          serde::set_status(status, serde::Status::bad_payload);
          return std::nullopt;
        }
      }
      sk.dirty_ = true;
      serde::set_status(status, serde::Status::ok);
      return sk;
    } catch (const std::bad_alloc&) {
      serde::set_status(status, serde::Status::bad_payload);
      return std::nullopt;
    }
  }

 private:
  void write_payload(serde::Writer& w) const {
    serde::write_header(w, serde::Engine::sequential,
                        static_cast<std::uint8_t>(sizeof(T)));
    w.put(k_);
    w.put(static_cast<std::uint64_t>(chunk_));
    w.put(n_);
    w.put(rng_.state());
    w.put(static_cast<std::uint64_t>(base_.size()));
    // The base buffer ships in ingestion order so its sorted-chunk invariant
    // (every completed chunk_ block is sorted in place) survives the round
    // trip and future updates resume mid-chunk correctly.
    w.put_bytes(base_.data(), base_.size() * sizeof(T));
    w.put(static_cast<std::uint32_t>(levels_.size()));
    for (const auto& level : levels_) {
      w.put(static_cast<std::uint8_t>(level.empty() ? 0 : 1));
      w.put_bytes(level.data(), level.size() * sizeof(T));
    }
  }

  void compact_base() {
    sorted_base_into(compact_scratch_);
    std::vector<T> carry =
        sample_odd_or_even(std::span<const T>(compact_scratch_), rng_.next_bool());
    base_.clear();
    propagate(std::move(carry), 1);
  }

  // Installs a k-sized array at `level`, merging upward while occupied.
  void propagate(std::vector<T> carry, std::uint32_t level) {
    ladder_propagate(levels_, std::move(carry), level, rng_, cmp_);
  }

  // Produces the fully sorted contents of the base buffer in `out`.  With
  // chunk pre-sorting on, base_ is already a sequence of sorted chunk_-runs
  // (plus an unsorted tail below the last chunk boundary), so this is the
  // shared chunk-merge primitive, not a full sort; either path yields the
  // identical sorted value sequence.
  void sorted_base_into(std::vector<T>& out) const {
    const std::size_t n = base_.size();
    if (chunk_ <= 1 || n <= chunk_) {
      out = base_;
      std::sort(out.begin(), out.end(), cmp_);
      return;
    }
    chunk_scratch_ = base_;
    const std::size_t tail = n % chunk_;
    if (tail != 0) {
      std::sort(chunk_scratch_.end() - static_cast<std::ptrdiff_t>(tail),
                chunk_scratch_.end(), cmp_);
    }
    out.resize(n);
    chunk_merger_.merge(std::span<const T>(chunk_scratch_), chunk_, std::span<T>(out),
                        cmp_);
  }

  void build_summary() const {
    if (!dirty_) return;
    // The base buffer's sorted image is the one weight-1 run; every other
    // run (the occupied levels) is already sorted, and the multiway merge
    // assembles the summary.
    sorted_base_into(sorted_base_);
    runs_.clear();
    if (!sorted_base_.empty()) {
      runs_.push_back({sorted_base_.data(), sorted_base_.size(), 1});
    }
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      if (levels_[i].empty()) continue;
      runs_.push_back({levels_[i].data(), levels_[i].size(), 1ULL << (i + 1)});
    }
    merger_.merge(std::span<const core::RunRef<T>>(runs_), summary_, cmp_);
    dirty_ = false;
  }

  std::uint32_t k_;
  Xoshiro256 rng_;
  Compare cmp_;
  std::size_t chunk_ = 0;  // pre-sorted chunk length; <= 1 disables
  std::uint64_t n_ = 0;
  std::vector<T> base_;                 // weight-1 items, sorted chunk-wise
  std::vector<std::vector<T>> levels_;  // levels_[i]: k items of weight 2^(i+1)
  std::vector<T> compact_scratch_;
  mutable std::vector<T> sorted_base_;
  mutable std::vector<T> chunk_scratch_;
  mutable core::ChunkMerger<T, Compare> chunk_merger_;
  mutable std::vector<core::RunRef<T>> runs_;
  mutable core::RunMerger<T, Compare> merger_;
  mutable core::WeightedSummary<T> summary_;
  mutable bool dirty_ = true;
};

}  // namespace qc::sequential

namespace qc {
// Former name of the namespace; existing code and tests keep compiling.
namespace sketch = sequential;
}  // namespace qc
