// KLL sketch (Karnin–Lang–Liberty, "Optimal Quantile Approximation in
// Streams") — the modern successor of the classic quantiles sketch the paper
// builds Quancurrent on, kept here as the single-threaded accuracy/space
// baseline for ext_kll_compare.
//
// Where the classic sketch keeps every level at exactly k items (retained
// space k * popcount(n / 2k)), KLL lets compactor capacities SHRINK
// geometrically below the top level: level h holds up to
// ceil(k * c^(H-1-h)) items (c = 2/3, floor 2), so total retained space is
// ~k * 1/(1-c) = 3k regardless of stream length, at the same O(1/k) rank
// error.  This is the variant with full-buffer compaction (each over-full
// compactor is sorted, halved by odd/even sampling — an odd item is held
// back, never up-weighted — and the survivors pushed one level up), the
// standard simplification of the paper's scheme and the shape DataSketches
// ships.
//
// Queries reuse the merge-based engine (core/run_merge.hpp): each compactor
// is sorted into a scratch run (compactors are unsorted between
// compactions), multiway-merged into a prefix-weight summary, and
// quantile/rank/cdf answer by binary search, exactly like QuantilesSketch.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/run_merge.hpp"

namespace qc::sequential {

template <typename T, typename Compare = std::less<T>>
class KllSketch {
 public:
  using value_type = T;

  explicit KllSketch(std::uint32_t k, std::uint64_t seed = 0x5eed5eed5eed5eedULL)
      : k_(k < 2 ? 2 : k), rng_(seed) {
    compactors_.emplace_back();
    compactors_[0].reserve(k_);
    cap0_ = capacity(0);
  }

  void update(const T& v) {
    compactors_[0].push_back(v);
    ++n_;
    dirty_ = true;
    if (compactors_[0].size() >= cap0_) compress();
  }

  // Total number of elements fed into the sketch.
  std::uint64_t size() const { return n_; }

  // Number of items physically stored; stays ~3k for any stream length.
  std::uint64_t retained() const {
    std::uint64_t r = 0;
    for (const auto& level : compactors_) r += level.size();
    return r;
  }

  std::uint32_t k() const { return k_; }
  std::uint32_t num_levels() const { return static_cast<std::uint32_t>(compactors_.size()); }

  // Estimated number of stream elements strictly less than `v`.
  std::uint64_t rank(const T& v) const {
    build_summary();
    return core::summary_rank(summary_, v, cmp_);
  }

  double cdf(const T& v) const {
    return n_ == 0 ? 0.0 : static_cast<double>(rank(v)) / static_cast<double>(n_);
  }

  // Estimated phi-quantile: the smallest retained item whose cumulative
  // weight reaches phi * n.
  T quantile(double phi) const {
    if (n_ == 0) return T{};
    build_summary();
    return core::summary_quantile(summary_, phi);
  }

  // The merged prefix-weight summary (rebuilt lazily after updates).
  const core::WeightedSummary<T>& summary() const {
    build_summary();
    return summary_;
  }

 private:
  static constexpr double kShrink = 2.0 / 3.0;  // capacity decay per level below the top

  // Capacity of compactor h: k at the current top level, shrinking by 2/3
  // per level below it, floored at 2.  Adding a top level shrinks every
  // lower capacity; the lazily-triggered compactions absorb the excess.
  std::size_t capacity(std::size_t h) const {
    double cap = static_cast<double>(k_);
    for (std::size_t i = h + 1; i < compactors_.size(); ++i) cap *= kShrink;
    return std::max<std::size_t>(2, static_cast<std::size_t>(std::ceil(cap)));
  }

  // One bottom-up sweep: every over-capacity compactor is sorted and halved
  // into the level above (weight doubles), so a cascade triggered at level 0
  // settles every level it spills into.
  void compress() {
    for (std::size_t h = 0; h < compactors_.size(); ++h) {
      if (compactors_[h].size() < capacity(h)) continue;
      if (h + 1 == compactors_.size()) compactors_.emplace_back();
      auto& level = compactors_[h];
      // An odd item is held back at its level (weight preserved), never
      // up-weighted — compaction must conserve total weight exactly.
      std::optional<T> held;
      if (level.size() % 2 == 1) {
        held = level.back();
        level.pop_back();
      }
      std::sort(level.begin(), level.end(), cmp_);
      const bool keep_odd = rng_.next_bool();
      auto& up = compactors_[h + 1];
      for (std::size_t i = keep_odd ? 1 : 0; i < level.size(); i += 2) {
        up.push_back(level[i]);
      }
      level.clear();
      if (held) level.push_back(*held);
    }
    // Level additions shrink every lower capacity; refresh the cached
    // level-0 trigger once per sweep instead of per update (the hot path).
    cap0_ = capacity(0);
  }

  void build_summary() const {
    if (!dirty_) return;
    sorted_levels_.resize(compactors_.size());
    runs_.clear();
    for (std::size_t h = 0; h < compactors_.size(); ++h) {
      sorted_levels_[h] = compactors_[h];
      std::sort(sorted_levels_[h].begin(), sorted_levels_[h].end(), cmp_);
      if (sorted_levels_[h].empty()) continue;
      runs_.push_back({sorted_levels_[h].data(), sorted_levels_[h].size(), 1ULL << h});
    }
    merger_.merge(std::span<const core::RunRef<T>>(runs_), summary_, cmp_);
    dirty_ = false;
  }

  std::uint32_t k_;
  Xoshiro256 rng_;
  Compare cmp_;
  std::uint64_t n_ = 0;
  std::size_t cap0_ = 2;  // cached capacity(0): the per-update fill trigger
  std::vector<std::vector<T>> compactors_;  // compactors_[h]: items of weight 2^h
  mutable std::vector<std::vector<T>> sorted_levels_;
  mutable std::vector<core::RunRef<T>> runs_;
  mutable core::RunMerger<T, Compare> merger_;
  mutable core::WeightedSummary<T> summary_;
  mutable bool dirty_ = true;
};

}  // namespace qc::sequential
