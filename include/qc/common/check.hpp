// QC_CHECK: an always-on invariant check that aborts with context.
//
// assert() compiles out under NDEBUG, which is exactly the build every
// production binary uses — so an assert guarding MEMORY SAFETY (an index
// about to walk off the slot array, a null block pointer about to be
// dereferenced, a tritmap CAS whose failure means a torn publication) turns
// into silent heap corruption in Release.  QC_CHECK is for that class of
// invariant only: it stays active in every build, costs one predictable
// branch, and on violation prints the expression, location, and a short
// explanation before aborting — a crash report a human can act on instead of
// a corrupted-heap core three frames later.
//
// Policy (enforced by the test suite's expectations, documented here):
//   * QC_CHECK   — invariants whose violation would corrupt or overrun
//                  memory.  Always on, O(1) conditions only.
//   * assert     — algorithmic pre/postconditions that are expensive
//                  (is_sorted over k items) or whose violation produces a
//                  wrong answer, not a wrong memory access.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace qc::detail {

[[noreturn]] inline void check_fail(const char* file, int line, const char* expr,
                                    const char* why) {
  std::fprintf(stderr, "qc: FATAL invariant violation at %s:%d\n  check: %s\n  why:   %s\n",
               file, line, expr, why);
  std::abort();
}

}  // namespace qc::detail

#if defined(__GNUC__) || defined(__clang__)
#define QC_CHECK_LIKELY(x) __builtin_expect(static_cast<bool>(x), 1)
#else
#define QC_CHECK_LIKELY(x) static_cast<bool>(x)
#endif

#define QC_CHECK(cond, why)                                        \
  (QC_CHECK_LIKELY(cond)                                           \
       ? static_cast<void>(0)                                      \
       : ::qc::detail::check_fail(__FILE__, __LINE__, #cond, why))
