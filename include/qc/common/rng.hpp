// xoshiro256** — the fast, small-state generator used everywhere randomness is
// needed (stream synthesis, compaction coin flips).  Satisfies
// std::uniform_random_bit_generator so it plugs into <random> distributions.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace qc {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      word = x ^ (x >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Fair coin, used for odd/even compaction sampling.
  constexpr bool next_bool() noexcept { return ((*this)() >> 63) != 0; }

  // Raw state snapshot/restore, so serialized sketches resume their
  // compaction coin sequence exactly where the source left off.
  constexpr std::array<std::uint64_t, 4> state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  constexpr void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = s[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace qc
