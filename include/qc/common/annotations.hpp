// Clang Thread Safety Analysis annotations, plus the annotated lock wrappers
// the analysis needs to see through libstdc++ primitives.
//
// The engine's concurrency contract is mostly invisible to the compiler:
// "nothing allocates or blocks while the install latch is held", "tail_ is
// only touched under tail_mu_", "only the propagator thread rebuilds the
// FCDS ladder".  These macros make that contract machine-checked wherever
// Clang is the compiler (-Wthread-safety is enabled automatically for Clang
// builds, and CI compiles with -Werror), and compile to nothing under GCC —
// the annotations are documentation there, never a semantic change.
//
// ## The capability model used across qc
//
//   * install latch (core/quancurrent.hpp) — `sync::LatchFlag latch_` is a
//     QC_CAPABILITY.  `acquire_latch()` / `try_acquire_latch()` /
//     `release_latch()` carry QC_ACQUIRE / QC_TRY_ACQUIRE / QC_RELEASE, and
//     `LatchGuard` is the QC_SCOPED_CAPABILITY RAII form.  Everything the
//     latch serializes — block allocation/retirement, the free list, the
//     stash, the cascade scratch buffer, the RNG, IBR epoch advancement —
//     is QC_GUARDED_BY(latch_), and every function on that path is
//     QC_REQUIRES(latch_).  Public entry points that acquire the latch
//     internally (install, drain, merge, serialize, quiesce) are
//     QC_EXCLUDES(latch_): calling them while holding the latch would
//     deadlock in `drain_until` or double-acquire in `LatchGuard`.
//
//   * tail_mu_ (core/quancurrent.hpp) — a `sync::Mutex` guarding the
//     unsorted tail vector; lock-free mirrors (`tail_size_`,
//     `tail_version_`) stay plain atomics and are intentionally unguarded.
//
//   * ConcurrentTheta hand-off (theta/concurrent_theta.hpp) — `mu_` guards
//     the shared ThetaSketch; `theta_cache_` is the unguarded relaxed
//     mirror updaters read.
//
//   * FCDS propagator role (baselines/fcds.hpp) — a `sync::Role` phantom
//     capability.  The ladder state (base buffer, levels, mergers, RNG) is
//     QC_GUARDED_BY(propagator_role_) and the rebuild/publish path is
//     QC_REQUIRES(propagator_role_), so "only the propagator flips the
//     snapshot" — the invariant whose violation was the PR 8 flip race —
//     is a compile error under Clang, not a TSan-schedule-permitting bug.
//
// `std::mutex` from libstdc++ carries no capability attribute, so naming it
// in QC_GUARDED_BY would trip -Wthread-safety-attributes.  `sync::Mutex` /
// `sync::MutexLock` below are zero-cost annotated wrappers (the usual
// pattern, cf. abseil's Mutex); use them for any mutex that guards data.
#pragma once

#include <atomic>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define QC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef QC_THREAD_ANNOTATION
#define QC_THREAD_ANNOTATION(x)  // no-op: GCC/MSVC see plain declarations
#endif

// A type that acts as a lock/role; variables of the type name the capability.
#define QC_CAPABILITY(name) QC_THREAD_ANNOTATION(capability(name))
// RAII type whose constructor acquires and destructor releases a capability.
#define QC_SCOPED_CAPABILITY QC_THREAD_ANNOTATION(scoped_lockable)
// Data member readable/writable only while holding the named capability.
#define QC_GUARDED_BY(x) QC_THREAD_ANNOTATION(guarded_by(x))
// Pointer member whose *pointee* is guarded by the named capability.
#define QC_PT_GUARDED_BY(x) QC_THREAD_ANNOTATION(pt_guarded_by(x))
// Function precondition: capability held on entry (and still held on exit).
#define QC_REQUIRES(...) QC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// Function acquires the capability; it was not held on entry.
#define QC_ACQUIRE(...) QC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
// Function releases the capability; it was held on entry.
#define QC_RELEASE(...) QC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// Function acquires the capability iff it returns `result`.
#define QC_TRY_ACQUIRE(result, ...) \
  QC_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))
// Function precondition: capability NOT held (acquiring inside would deadlock).
#define QC_EXCLUDES(...) QC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Caller asserts the capability is held without the analysis seeing how.
#define QC_ASSERT_CAPABILITY(x) QC_THREAD_ANNOTATION(assert_capability(x))
// Returns a reference to the named capability (for lock accessors).
#define QC_RETURN_CAPABILITY(x) QC_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch: skip analysis of this function body (constructors touching
// guarded members before publication, role-assumption shims).
#define QC_NO_THREAD_SAFETY_ANALYSIS QC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace qc::sync {

// std::mutex with the capability attribute the analysis needs.  Same size,
// same codegen: every method is a single inlined forward.
class QC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QC_ACQUIRE() { mu_.lock(); }
  void unlock() QC_RELEASE() { mu_.unlock(); }
  bool try_lock() QC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// std::lock_guard is invisible to the analysis (libstdc++ ships it without
// annotations), so guarded-data access under it would still warn.  MutexLock
// is the annotated equivalent.
class QC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() QC_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// An atomic_flag that doubles as a capability, for spin latches whose
// acquire/release protocol lives in hand-written helpers (the install
// latch).  The flag itself stays exposed: the owning class annotates its
// own acquire/release functions against the LatchFlag member.
class QC_CAPABILITY("latch") LatchFlag {
 public:
  std::atomic_flag flag = ATOMIC_FLAG_INIT;
};

// A phantom capability modelling a thread role rather than a lock: no
// runtime state at all, but data QC_GUARDED_BY a Role member can only be
// touched by functions that QC_REQUIRES it, and only the function that
// `assume()`d the role satisfies that.  Used for "propagator-only" state in
// the FCDS baseline.
class QC_CAPABILITY("role") Role {
 public:
  // The analysis cannot see how a role is obtained (it is a fact about
  // which thread is running, not about a lock), so the shims assert the
  // transition and skip their own analysis.
  void assume() QC_ACQUIRE() QC_NO_THREAD_SAFETY_ANALYSIS {}
  void release() QC_RELEASE() QC_NO_THREAD_SAFETY_ANALYSIS {}
};

}  // namespace qc::sync
