// Fixed-width ASCII table printer used by every figure bench.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace qc {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> row);

  void print(std::FILE* out = stdout) const;

  // Cell formatters.
  static std::string integer(std::uint64_t v);
  static std::string num(double v, int precision);
  static std::string mops(double ops_per_sec);  // e.g. "12.34 Mop/s"
  static std::string percent(double fraction);  // e.g. "42.0%"

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qc
