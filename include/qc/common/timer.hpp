// Wall-clock stopwatch used by the bench harness.
#pragma once

#include <chrono>

namespace qc {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  // Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace qc
