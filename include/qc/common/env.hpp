// Environment-variable configuration shared by benches and tests.
//
// Every bench reads its workload size from QC_* variables so CI can run the
// same binaries in "smoke" mode while local experiments use paper-scale runs.
#pragma once

#include <cstdint>
#include <string>

namespace qc::env {

// Workload scale resolved from QC_SCALE with per-field overrides.
struct BenchScale {
  const char* name;
  std::uint64_t keys;         // elements ingested per run
  std::uint32_t runs;         // repetitions averaged per data point
  std::uint32_t max_threads;  // upper bound for thread sweeps
};

// Reads `name` as an unsigned integer; returns `fallback` when unset/invalid.
std::uint64_t get_u64(const char* name, std::uint64_t fallback);

// Reads `name` as a double; returns `fallback` when unset or invalid.
double get_double(const char* name, double fallback);

// Reads `name` as a string; returns `fallback` when unset.
std::string get_str(const char* name, const std::string& fallback);

// Resolves QC_SCALE ("smoke", "small", "paper"; default "small"), then applies
// QC_KEYS / QC_RUNS / QC_MAX_THREADS overrides on top of the preset.
BenchScale bench_scale();

}  // namespace qc::env
