// Shared exponential backoff for the engine's short spin loops (gather-buffer
// ordinal waits, the install latch).  Escalates cheap CPU pauses into
// scheduler yields: the first kPauseRounds spins issue 1, 2, 4, ... pause
// instructions — keeping the waiter on-core for the common case where the
// owner finishes within a few hundred cycles — and only then starts yielding,
// so a descheduled owner cannot livelock its waiters.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace qc {

// One pause/spin hint; ~tens of cycles on x86 (_mm_pause), a scheduler hint
// elsewhere.
inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("isb" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

class Backoff {
 public:
  // Call once per failed wait iteration.
  void spin() {
    if (round_ < kPauseRounds) {
      const std::uint32_t pauses = 1u << round_;
      for (std::uint32_t i = 0; i < pauses; ++i) cpu_pause();
      ++round_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() { round_ = 0; }

 private:
  // 2^6 - 1 = 63 pauses total before the first yield.
  static constexpr std::uint32_t kPauseRounds = 6;
  std::uint32_t round_ = 0;
};

}  // namespace qc
