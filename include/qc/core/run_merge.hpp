// Merge-based construction of weighted quantile summaries.
//
// A sketch snapshot is not an unordered bag of items: every level slot is a
// sorted k-run by construction (the KLL compactor invariant), and the only
// unsorted part is the small weight-1 tail.  Building the query summary is
// therefore a multiway merge of R items spread over L sorted runs — O(R log L)
// with a tournament (loser) tree — not an O(R log R) global sort.
//
// The summary itself is stored structure-of-arrays: a sorted item array plus
// a prefix-summed weight array.  That turns
//   quantile(phi) into a binary search over prefix weights, and
//   rank(v)/cdf(v) into a binary search over items,
// O(log R) per call instead of the previous O(R) linear scans.
//
// Ties between runs break by run index, so for a fixed run order the merge
// output is fully deterministic — which is what lets an incremental refresh
// (cached runs) and a full refresh (fresh copies) produce bit-identical
// summaries.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace qc::core {

// One sorted run: `size` items at `data`, each carrying the same weight.
template <typename T>
struct RunRef {
  const T* data = nullptr;
  std::size_t size = 0;
  std::uint64_t weight = 1;
};

// Value-sorted weighted summary, structure-of-arrays: items() ascending and
// prefix_weights()[i] = total weight of items()[0..i].
template <typename T>
class WeightedSummary {
 public:
  void clear() {
    items_.clear();
    prefix_.clear();
  }

  void reserve(std::size_t n) {
    items_.reserve(n);
    prefix_.reserve(n);
  }

  void append(const T& item, std::uint64_t weight) {
    items_.push_back(item);
    prefix_.push_back(total_weight() + weight);
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::uint64_t total_weight() const { return prefix_.empty() ? 0 : prefix_.back(); }
  std::span<const T> items() const { return items_; }
  std::span<const std::uint64_t> prefix_weights() const { return prefix_; }

  friend bool operator==(const WeightedSummary& a, const WeightedSummary& b) {
    return a.items_ == b.items_ && a.prefix_ == b.prefix_;
  }

 private:
  std::vector<T> items_;
  std::vector<std::uint64_t> prefix_;
};

// Smallest item whose cumulative weight reaches phi * total_weight, by binary
// search over the prefix-weight array.
template <typename T>
T summary_quantile(const WeightedSummary<T>& summary, double phi) {
  if (summary.empty()) return T{};
  const double target =
      std::clamp(phi, 0.0, 1.0) * static_cast<double>(summary.total_weight());
  const auto prefix = summary.prefix_weights();
  const auto it = std::partition_point(
      prefix.begin(), prefix.end(),
      [target](std::uint64_t c) { return static_cast<double>(c) < target; });
  const auto items = summary.items();
  return it == prefix.end() ? items.back()
                            : items[static_cast<std::size_t>(it - prefix.begin())];
}

// Total weight of items strictly less than `v`, by binary search over items.
template <typename T, typename Compare = std::less<T>>
std::uint64_t summary_rank(const WeightedSummary<T>& summary, const T& v,
                           Compare cmp = Compare()) {
  const auto items = summary.items();
  const auto idx = static_cast<std::size_t>(
      std::lower_bound(items.begin(), items.end(), v, cmp) - items.begin());
  return idx == 0 ? 0 : summary.prefix_weights()[idx - 1];
}

// Reusable L-way merge.  Holds its cursor and tree storage across calls so a
// refresh loop does not allocate once the vectors reach steady-state size.
//
// Two front ends share the loser tree:
//   merge()       — weighted summary output, run-index tie-break (the query
//                   engine; deterministic for cache/full refresh equivalence).
//   merge_items() — raw item output, no weights and no tie-break (equal items
//                   are interchangeable values), one comparison per tree node.
//                   This is the ingest path's Gather&Sort primitive: the batch
//                   owner merges the gather buffer's pre-sorted b-chunks
//                   instead of sorting 2k items from scratch.
template <typename T, typename Compare = std::less<T>>
class RunMerger {
 public:
  // Merges `runs` (each individually sorted under `cmp`) into `out`,
  // replacing its contents.  Ties break toward the lower run index.
  void merge(std::span<const RunRef<T>> runs, WeightedSummary<T>& out,
             Compare cmp = Compare()) {
    out.clear();
    std::size_t total = 0;
    for (const auto& r : runs) total += r.size;
    out.reserve(total);
    if (total == 0) return;
    if (runs.size() == 1) {
      const auto& r = runs[0];
      for (std::size_t i = 0; i < r.size; ++i) out.append(r.data[i], r.weight);
      return;
    }
    runs_ = runs;
    cmp_ = cmp;
    run_tree(
        [this](std::size_t i, std::size_t j) {
          const T& a = runs_[i].data[pos_[i]];
          const T& b = runs_[j].data[pos_[j]];
          if (cmp_(a, b)) return true;
          if (cmp_(b, a)) return false;
          return i < j;
        },
        [this, &out](std::size_t w) {
          out.append(runs_[w].data[pos_[w]], runs_[w].weight);
        });
  }

  // Merges S value-sorted weighted summaries (e.g. one per shard of a
  // ShardedQuancurrent) into one combined summary, preserving each item's
  // individual weight.  Ties break toward the lower part index, so the
  // cross-shard summary is deterministic for a fixed shard order.
  void merge_weighted(std::span<const WeightedSummary<T>* const> parts,
                      WeightedSummary<T>& out, Compare cmp = Compare()) {
    out.clear();
    std::size_t total = 0;
    wrefs_.clear();
    for (const WeightedSummary<T>* p : parts) {
      wrefs_.push_back({p->items().data(), p->size(), 1});
      total += p->size();
    }
    out.reserve(total);
    if (total == 0) return;
    if (parts.size() == 1) {
      const auto items = parts[0]->items();
      const auto prefix = parts[0]->prefix_weights();
      for (std::size_t i = 0; i < items.size(); ++i) {
        out.append(items[i], prefix[i] - (i == 0 ? 0 : prefix[i - 1]));
      }
      return;
    }
    runs_ = wrefs_;
    cmp_ = cmp;
    run_tree(
        [this](std::size_t i, std::size_t j) {
          const T& a = runs_[i].data[pos_[i]];
          const T& b = runs_[j].data[pos_[j]];
          if (cmp_(a, b)) return true;
          if (cmp_(b, a)) return false;
          return i < j;
        },
        [this, parts, &out](std::size_t w) {
          const auto prefix = parts[w]->prefix_weights();
          const std::size_t i = pos_[w];
          out.append(runs_[w].data[i], prefix[i] - (i == 0 ? 0 : prefix[i - 1]));
        });
  }

  // Merges `runs` into the raw item array `out` (weights ignored), which must
  // hold at least the runs' total size.  Returns the number of items written.
  std::size_t merge_items(std::span<const RunRef<T>> runs, std::span<T> out,
                          Compare cmp = Compare()) {
    std::size_t total = 0;
    for (const auto& r : runs) total += r.size;
    // Memory safety, not a debug nicety: the copy/merge below writes `total`
    // items through out.data(), so an undersized span is an overrun in
    // Release — exactly the class of invariant the policy reserves QC_CHECK
    // for (common/check.hpp).
    QC_CHECK(out.size() >= total, "merge_items output span smaller than input total");
    if (total == 0) return 0;
    if (runs.size() == 1) {
      std::copy_n(runs[0].data, runs[0].size, out.data());
      return total;
    }
    runs_ = runs;
    cmp_ = cmp;
    T* dst = out.data();
    run_tree(
        [this](std::size_t i, std::size_t j) {
          // No tie-break: equal raw items are interchangeable.
          return !cmp_(runs_[j].data[pos_[j]], runs_[i].data[pos_[i]]);
        },
        [this, &dst](std::size_t w) { *dst++ = runs_[w].data[pos_[w]]; });
    return total;
  }

 private:
  static constexpr std::size_t kExhausted = static_cast<std::size_t>(-1);

  // Builds the loser tree over runs_ and drains it, calling emit(run) once
  // per output item.  `less` compares the current fronts of two non-exhausted
  // leaves; exhausted leaves always lose.
  //
  // Loser tree over the implicit complete binary tree whose internal nodes
  // are 1..L-1 and whose leaves are L..2L-1 (leaf x = run x-L, parent x/2):
  // tree_[x] holds the loser of node x's subtree, tree_[0] the overall
  // winner.  kExhausted is an always-losing sentinel.  Built bottom-up via a
  // scratch winner array.
  template <typename Less, typename Emit>
  void run_tree(Less less, Emit emit) {
    const std::size_t num_runs = runs_.size();
    const auto wins = [&less](std::size_t i, std::size_t j) {
      if (i == kExhausted) return false;
      if (j == kExhausted) return true;
      return less(i, j);
    };
    pos_.assign(num_runs, 0);
    tree_.assign(num_runs, kExhausted);
    win_.assign(2 * num_runs, kExhausted);
    for (std::size_t i = 0; i < num_runs; ++i) {
      if (runs_[i].size != 0) win_[num_runs + i] = i;
    }
    for (std::size_t x = num_runs - 1; x >= 1; --x) {
      const std::size_t a = win_[2 * x];
      const std::size_t b = win_[2 * x + 1];
      if (wins(a, b)) {
        win_[x] = a;
        tree_[x] = b;
      } else {
        win_[x] = b;
        tree_[x] = a;
      }
    }
    tree_[0] = win_[1];

    while (tree_[0] != kExhausted) {
      const std::size_t w = tree_[0];
      emit(w);
      ++pos_[w];
      // Replay the path from leaf w to the root, leaving the new overall
      // winner in tree_[0] and losers along the path.
      std::size_t winner = pos_[w] < runs_[w].size ? w : kExhausted;
      for (std::size_t node = (w + num_runs) / 2; node > 0; node /= 2) {
        if (wins(tree_[node], winner)) std::swap(tree_[node], winner);
      }
      tree_[0] = winner;
    }
  }

  std::span<const RunRef<T>> runs_;
  std::vector<RunRef<T>> wrefs_;  // merge_weighted's synthesized run views
  Compare cmp_{};
  std::vector<std::size_t> pos_;
  std::vector<std::size_t> tree_;
  std::vector<std::size_t> win_;  // init-time scratch
};

// Views `data` as consecutive sorted chunks of `chunk` items (the last chunk
// may be shorter) and appends one weight-1 RunRef per chunk to `runs` — the
// generic chunk-merge front end (pairs with RunMerger::merge_items).
template <typename T>
void chunk_runs(std::span<const T> data, std::size_t chunk,
                std::vector<RunRef<T>>& runs) {
  if (chunk == 0) chunk = data.size();
  for (std::size_t off = 0; off < data.size(); off += chunk) {
    runs.push_back({data.data() + off, std::min(chunk, data.size() - off), 1});
  }
}

// Specialized high-throughput merge of consecutive pre-sorted chunks — the
// ingest hot path's Gather&Sort primitive (the batch owner merges the gather
// buffer's 2k/b updater-sorted b-chunks into the sorted 2k install batch) and
// the sequential sketch's base-buffer compaction.
//
// Strategy: bottom-up pairwise merge passes (ping-ponged between `out` and an
// internal buffer, parity chosen so the final pass lands in `out`).  A
// two-way branchless merge is latency-bound — each step's loads depend on the
// previous comparison (~10 cycles/item/pass) — so every pass runs FOUR
// independent merge tasks interleaved in one loop, overlapping their
// dependency chains (~3x the single-chain throughput).  Late passes with
// fewer than four pairs are cut into independent tasks by merge-path
// partitioning (binary search for the output-midpoint split), so the chain
// count stays at four all the way to the last pass.  Early passes are
// cache-local by construction: a pass at chunk length c merges adjacent runs
// that are contiguous in memory.
//
// Unlike the loser tree this is O(R log(R/chunk)) total work rather than
// O(R log L) comparisons with pointer-chasing constants; on uniform doubles
// it beats even the radix batch_sort baseline across k x b (see
// micro_primitives).  The output value sequence is exactly what a full sort
// of `data` would produce.
template <typename T, typename Compare = std::less<T>>
class ChunkMerger {
 public:
  // Merges `data` (consecutive sorted `chunk`-length runs, last may be
  // short) into `out`; out.size() must equal data.size() and must not
  // overlap data.  chunk == 0 means data is one sorted run.
  void merge(std::span<const T> data, std::size_t chunk, std::span<T> out,
             Compare cmp = Compare()) {
    const std::size_t n = data.size();
    // Guards every write of the merge passes below; an undersized out would
    // be an out-of-bounds write in Release, so this is QC_CHECK territory.
    QC_CHECK(out.size() == n, "ChunkMerger::merge output span must match input size");
    cmp_ = cmp;
    if (chunk == 0) chunk = n;
    std::size_t passes = 0;
    for (std::size_t c = chunk; c < n; c *= 2) ++passes;
    if (passes == 0) {
      std::copy(data.begin(), data.end(), out.begin());
      return;
    }
    if (tmp_.size() < n) tmp_.resize(n);
    T* bufs[2] = {tmp_.data(), out.data()};
    const T* src = data.data();
    std::size_t pi = (passes % 2) ^ 1;  // parity: the last pass writes `out`
    for (std::size_t c = chunk; c < n; c *= 2) {
      T* dst = bufs[pi ^ 1];
      tasks_.clear();
      const std::size_t pairs = (n + 2 * c - 1) / (2 * c);
      const std::size_t ways = pairs >= kChains ? 1 : (kChains + pairs - 1) / pairs;
      for (std::size_t lo = 0; lo < n; lo += 2 * c) {
        const T* xe = src + std::min(lo + c, n);
        const T* ye = src + std::min(lo + 2 * c, n);
        push_split({src + lo, xe, xe, ye, dst + lo}, ways);
      }
      run_tasks();
      src = dst;
      pi ^= 1;
    }
  }

 private:
  static constexpr std::size_t kChains = 4;

  struct Task {
    const T *x, *xe, *y, *ye;
    T* o;
  };
  struct Chain {
    const T *x = nullptr, *xe = nullptr, *y = nullptr, *ye = nullptr;
    T* o = nullptr;
    bool active = false;
  };

  // Splits `t` into `ways` tasks of near-equal output size by merge-path
  // partitioning: binary-search the split (i, j), i + j = mid, such that
  // x[0..i) and y[0..j) are exactly the first `mid` outputs of the merge.
  void push_split(Task t, std::size_t ways) {
    const std::size_t p = static_cast<std::size_t>(t.xe - t.x);
    const std::size_t q = static_cast<std::size_t>(t.ye - t.y);
    if (ways <= 1 || p + q < 128) {
      tasks_.push_back(t);
      return;
    }
    const std::size_t mid = (p + q) / 2;
    std::size_t lo = mid > q ? mid - q : 0;
    std::size_t hi = std::min(mid, p);
    while (lo < hi) {
      const std::size_t i = (lo + hi) / 2;
      const std::size_t j = mid - i;
      if (i < p && j > 0 && cmp_(t.x[i], t.y[j - 1])) {
        lo = i + 1;
      } else if (i > 0 && j < q && cmp_(t.y[j], t.x[i - 1])) {
        hi = i;
      } else {
        lo = i;
        break;
      }
    }
    const std::size_t i = lo;
    const std::size_t j = mid - lo;
    push_split({t.x, t.x + i, t.y, t.y + j, t.o}, ways / 2);
    push_split({t.x + i, t.xe, t.y + j, t.ye, t.o + mid}, ways - ways / 2);
  }

  // Single-chain branchless drain of one task; the inner loop is guard-free
  // because neither side can exhaust within min(remaining_x, remaining_y)
  // steps.
  void finish(Chain& ch) {
    const T* x = ch.x;
    const T* y = ch.y;
    T* o = ch.o;
    for (;;) {
      const std::size_t m = static_cast<std::size_t>(
          std::min(ch.xe - x, ch.ye - y));
      if (m == 0) break;
      for (std::size_t i = 0; i < m; ++i) {
        const T vx = *x;
        const T vy = *y;
        const bool t = cmp_(vy, vx);
        *o++ = t ? vy : vx;
        x += !t;
        y += t;
      }
    }
    while (x != ch.xe) *o++ = *x++;
    while (y != ch.ye) *o++ = *y++;
    ch.active = false;
  }

  // Runs the pass's tasks on four interleaved chains.  Each block iteration
  // advances every chain by one guard-free step; a chain whose task ends is
  // tail-drained and refilled from the task list.
  void run_tasks() {
    std::size_t next = 0;
    Chain c0, c1, c2, c3;
    const auto feed = [&](Chain& ch) {
      if (!ch.active && next < tasks_.size()) {
        const Task& t = tasks_[next++];
        ch = {t.x, t.xe, t.y, t.ye, t.o, true};
      }
    };
    feed(c0);
    feed(c1);
    feed(c2);
    feed(c3);
    while (c0.active && c1.active && c2.active && c3.active) {
      const std::size_t m0 = static_cast<std::size_t>(std::min(c0.xe - c0.x, c0.ye - c0.y));
      const std::size_t m1 = static_cast<std::size_t>(std::min(c1.xe - c1.x, c1.ye - c1.y));
      const std::size_t m2 = static_cast<std::size_t>(std::min(c2.xe - c2.x, c2.ye - c2.y));
      const std::size_t m3 = static_cast<std::size_t>(std::min(c3.xe - c3.x, c3.ye - c3.y));
      const std::size_t m = std::min(std::min(m0, m1), std::min(m2, m3));
      const T *x0 = c0.x, *y0 = c0.y, *x1 = c1.x, *y1 = c1.y;
      const T *x2 = c2.x, *y2 = c2.y, *x3 = c3.x, *y3 = c3.y;
      T *o0 = c0.o, *o1 = c1.o, *o2 = c2.o, *o3 = c3.o;
      for (std::size_t i = 0; i < m; ++i) {
        const T a0 = *x0, b0 = *y0;
        const bool t0 = cmp_(b0, a0);
        const T a1 = *x1, b1 = *y1;
        const bool t1 = cmp_(b1, a1);
        const T a2 = *x2, b2 = *y2;
        const bool t2 = cmp_(b2, a2);
        const T a3 = *x3, b3 = *y3;
        const bool t3 = cmp_(b3, a3);
        o0[i] = t0 ? b0 : a0;
        x0 += !t0;
        y0 += t0;
        o1[i] = t1 ? b1 : a1;
        x1 += !t1;
        y1 += t1;
        o2[i] = t2 ? b2 : a2;
        x2 += !t2;
        y2 += t2;
        o3[i] = t3 ? b3 : a3;
        x3 += !t3;
        y3 += t3;
      }
      c0.x = x0, c0.y = y0, c0.o = o0 + m;
      c1.x = x1, c1.y = y1, c1.o = o1 + m;
      c2.x = x2, c2.y = y2, c2.o = o2 + m;
      c3.x = x3, c3.y = y3, c3.o = o3 + m;
      if (c0.x == c0.xe || c0.y == c0.ye) {
        finish(c0);
        feed(c0);
      }
      if (c1.x == c1.xe || c1.y == c1.ye) {
        finish(c1);
        feed(c1);
      }
      if (c2.x == c2.xe || c2.y == c2.ye) {
        finish(c2);
        feed(c2);
      }
      if (c3.x == c3.xe || c3.y == c3.ye) {
        finish(c3);
        feed(c3);
      }
    }
    if (c0.active) finish(c0);
    if (c1.active) finish(c1);
    if (c2.active) finish(c2);
    if (c3.active) finish(c3);
  }

  Compare cmp_{};
  std::vector<T> tmp_;
  std::vector<Task> tasks_;
};

// The pre-merge-engine summary construction — flatten every run into (item,
// weight) pairs and globally sort.  Kept as (a) the fallback for snapshots
// accepted with holes, whose runs may contain torn items and so may not be
// sorted, and (b) the baseline micro_primitives benches against.
template <typename T, typename Compare = std::less<T>>
void sort_merge_runs(std::span<const RunRef<T>> runs, WeightedSummary<T>& out,
                     std::vector<std::pair<T, std::uint64_t>>& scratch,
                     Compare cmp = Compare()) {
  scratch.clear();
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size;
  scratch.reserve(total);
  for (const auto& r : runs) {
    for (std::size_t i = 0; i < r.size; ++i) scratch.emplace_back(r.data[i], r.weight);
  }
  std::sort(scratch.begin(), scratch.end(),
            [&cmp](const auto& a, const auto& b) { return cmp(a.first, b.first); });
  out.clear();
  out.reserve(total);
  for (const auto& [item, weight] : scratch) out.append(item, weight);
}

}  // namespace qc::core
