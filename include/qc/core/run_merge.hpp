// Merge-based construction of weighted quantile summaries.
//
// A sketch snapshot is not an unordered bag of items: every level slot is a
// sorted k-run by construction (the KLL compactor invariant), and the only
// unsorted part is the small weight-1 tail.  Building the query summary is
// therefore a multiway merge of R items spread over L sorted runs — O(R log L)
// with a tournament (loser) tree — not an O(R log R) global sort.
//
// The summary itself is stored structure-of-arrays: a sorted item array plus
// a prefix-summed weight array.  That turns
//   quantile(phi) into a binary search over prefix weights, and
//   rank(v)/cdf(v) into a binary search over items,
// O(log R) per call instead of the previous O(R) linear scans.
//
// Ties between runs break by run index, so for a fixed run order the merge
// output is fully deterministic — which is what lets an incremental refresh
// (cached runs) and a full refresh (fresh copies) produce bit-identical
// summaries.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

namespace qc::core {

// One sorted run: `size` items at `data`, each carrying the same weight.
template <typename T>
struct RunRef {
  const T* data = nullptr;
  std::size_t size = 0;
  std::uint64_t weight = 1;
};

// Value-sorted weighted summary, structure-of-arrays: items() ascending and
// prefix_weights()[i] = total weight of items()[0..i].
template <typename T>
class WeightedSummary {
 public:
  void clear() {
    items_.clear();
    prefix_.clear();
  }

  void reserve(std::size_t n) {
    items_.reserve(n);
    prefix_.reserve(n);
  }

  void append(const T& item, std::uint64_t weight) {
    items_.push_back(item);
    prefix_.push_back(total_weight() + weight);
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::uint64_t total_weight() const { return prefix_.empty() ? 0 : prefix_.back(); }
  std::span<const T> items() const { return items_; }
  std::span<const std::uint64_t> prefix_weights() const { return prefix_; }

  friend bool operator==(const WeightedSummary& a, const WeightedSummary& b) {
    return a.items_ == b.items_ && a.prefix_ == b.prefix_;
  }

 private:
  std::vector<T> items_;
  std::vector<std::uint64_t> prefix_;
};

// Smallest item whose cumulative weight reaches phi * total_weight, by binary
// search over the prefix-weight array.
template <typename T>
T summary_quantile(const WeightedSummary<T>& summary, double phi) {
  if (summary.empty()) return T{};
  const double target =
      std::clamp(phi, 0.0, 1.0) * static_cast<double>(summary.total_weight());
  const auto prefix = summary.prefix_weights();
  const auto it = std::partition_point(
      prefix.begin(), prefix.end(),
      [target](std::uint64_t c) { return static_cast<double>(c) < target; });
  const auto items = summary.items();
  return it == prefix.end() ? items.back()
                            : items[static_cast<std::size_t>(it - prefix.begin())];
}

// Total weight of items strictly less than `v`, by binary search over items.
template <typename T, typename Compare = std::less<T>>
std::uint64_t summary_rank(const WeightedSummary<T>& summary, const T& v,
                           Compare cmp = Compare()) {
  const auto items = summary.items();
  const auto idx = static_cast<std::size_t>(
      std::lower_bound(items.begin(), items.end(), v, cmp) - items.begin());
  return idx == 0 ? 0 : summary.prefix_weights()[idx - 1];
}

// Reusable L-way merge.  Holds its cursor and tree storage across calls so a
// refresh loop does not allocate once the vectors reach steady-state size.
template <typename T, typename Compare = std::less<T>>
class RunMerger {
 public:
  // Merges `runs` (each individually sorted under `cmp`) into `out`,
  // replacing its contents.  Ties break toward the lower run index.
  void merge(std::span<const RunRef<T>> runs, WeightedSummary<T>& out,
             Compare cmp = Compare()) {
    out.clear();
    const std::size_t num_runs = runs.size();
    std::size_t total = 0;
    for (const auto& r : runs) total += r.size;
    out.reserve(total);
    if (total == 0) return;
    if (num_runs == 1) {
      const auto& r = runs[0];
      for (std::size_t i = 0; i < r.size; ++i) out.append(r.data[i], r.weight);
      return;
    }

    runs_ = runs;
    cmp_ = cmp;
    pos_.assign(num_runs, 0);
    // Loser tree over the implicit complete binary tree whose internal nodes
    // are 1..L-1 and whose leaves are L..2L-1 (leaf x = run x-L, parent x/2):
    // tree_[x] holds the loser of node x's subtree, tree_[0] the overall
    // winner.  kExhausted is an always-losing sentinel.  Built bottom-up via
    // a scratch winner array.
    tree_.assign(num_runs, kExhausted);
    win_.assign(2 * num_runs, kExhausted);
    for (std::size_t i = 0; i < num_runs; ++i) {
      if (runs[i].size != 0) win_[num_runs + i] = i;
    }
    for (std::size_t x = num_runs - 1; x >= 1; --x) {
      const std::size_t a = win_[2 * x];
      const std::size_t b = win_[2 * x + 1];
      if (wins(a, b)) {
        win_[x] = a;
        tree_[x] = b;
      } else {
        win_[x] = b;
        tree_[x] = a;
      }
    }
    tree_[0] = win_[1];

    while (tree_[0] != kExhausted) {
      const std::size_t w = tree_[0];
      out.append(runs_[w].data[pos_[w]], runs_[w].weight);
      ++pos_[w];
      replay(w);
    }
  }

 private:
  static constexpr std::size_t kExhausted = static_cast<std::size_t>(-1);

  // True when leaf `i`'s current front should be emitted before leaf `j`'s.
  bool wins(std::size_t i, std::size_t j) const {
    if (i == kExhausted) return false;
    if (j == kExhausted) return true;
    const T& a = runs_[i].data[pos_[i]];
    const T& b = runs_[j].data[pos_[j]];
    if (cmp_(a, b)) return true;
    if (cmp_(b, a)) return false;
    return i < j;
  }

  // Replays the path from leaf `leaf` to the root, leaving the new overall
  // winner in tree_[0] and losers along the path.
  void replay(std::size_t leaf) {
    std::size_t winner = pos_[leaf] < runs_[leaf].size ? leaf : kExhausted;
    for (std::size_t node = (leaf + runs_.size()) / 2; node > 0; node /= 2) {
      if (wins(tree_[node], winner)) std::swap(tree_[node], winner);
    }
    tree_[0] = winner;
  }

  std::span<const RunRef<T>> runs_;
  Compare cmp_{};
  std::vector<std::size_t> pos_;
  std::vector<std::size_t> tree_;
  std::vector<std::size_t> win_;  // init-time scratch
};

// The pre-merge-engine summary construction — flatten every run into (item,
// weight) pairs and globally sort.  Kept as (a) the fallback for snapshots
// accepted with holes, whose runs may contain torn items and so may not be
// sorted, and (b) the baseline micro_primitives benches against.
template <typename T, typename Compare = std::less<T>>
void sort_merge_runs(std::span<const RunRef<T>> runs, WeightedSummary<T>& out,
                     std::vector<std::pair<T, std::uint64_t>>& scratch,
                     Compare cmp = Compare()) {
  scratch.clear();
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size;
  scratch.reserve(total);
  for (const auto& r : runs) {
    for (std::size_t i = 0; i < r.size; ++i) scratch.emplace_back(r.data[i], r.weight);
  }
  std::sort(scratch.begin(), scratch.end(),
            [&cmp](const auto& a, const auto& b) { return cmp(a.first, b.first); });
  out.clear();
  out.reserve(total);
  for (const auto& [item, weight] : scratch) out.append(item, weight);
}

}  // namespace qc::core
