// Quancurrent: the concurrent quantiles sketch (Elias-Zada, Rinberg, Keidar,
// SPAA 2023) over the KLL-style compaction ladder in
// sequential/quantiles_sketch.hpp.
//
// Ingestion pipeline
//   update threads -> per-thread local buffer (b items, no sharing)
//                  -> Gather&Sort buffer of the thread's NUMA node: an F&A
//                     reserves b slots in a 2k-element shared buffer; the
//                     thread that commits the last slot becomes the batch
//                     OWNER
//                  -> the owner sorts the 2k batch in place and installs it
//                     into the levels array, running the full propagation
//                     cascade, then publishes everything with a single CAS on
//                     the tritmap.
//
// Each NUMA node rotates through rho Gather&Sort buffers so ingestion
// continues while an owner is sorting.  Buffers are recycled by a monotonic
// (reservation, commit, ordinal) counter scheme: counters never reset, so a
// delayed thread can never corrupt a later generation's accounting — its
// reservation simply lands in a future ordinal and the thread waits for that
// ordinal to open.
//
// Publication protocol.  The levels array is a preallocated grid of k-sized
// slots.  An installing owner only writes slots that the currently published
// tritmap marks empty, then flips the tritmap old -> new with one CAS, so a
// query that loads the tritmap sees a fully consistent levels description.
// Queries re-validate the tritmap after copying; if an install raced past
// them they retry, and after a bounded number of attempts they accept the
// snapshot and report the affected arrays as holes (counted, never crashed
// on), mirroring the paper's hole analysis (§4.1).
//
// Query engine.  Every published level slot is a sorted k-run (the KLL
// compactor invariant), so a snapshot is a set of sorted runs, not a bag of
// items.  Querier::refresh copies the referenced runs plus the tail and
// multiway-merges them (core/run_merge.hpp, tournament tree, O(R log L))
// into a structure-of-arrays prefix-weight summary; quantile/rank/cdf are
// then O(log R) binary searches over the frozen summary.  refresh() is also
// incremental: each level carries an install epoch (the install_seq of the
// last install that wrote it), and a refresh re-copies only levels whose
// epoch or trit changed since the querier's previous validated snapshot,
// reusing every unchanged run.  A refresh that finds both the install seq
// and the tail version unchanged is O(1).
//
// Relaxation.  Elements still in local buffers or partially filled gather
// buffers are invisible to queries — the paper's bounded relaxation of at
// most N*b + rho*nodes*2k elements.  quiesce() flushes all of that into the
// query path; after every updater has drained and quiesce() returned,
// size() equals the number of ingested elements exactly.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "atomics/tritmap.hpp"
#include "common/backoff.hpp"
#include "common/rng.hpp"
#include "core/batch_sort.hpp"
#include "core/options.hpp"
#include "core/run_merge.hpp"
#include "sequential/quantiles_sketch.hpp"

namespace qc::core {

struct Stats {
  std::uint64_t batches = 0;        // 2k batches installed
  std::uint64_t propagations = 0;   // cascade steps across all batches
  std::uint64_t holes = 0;          // arrays accepted unvalidated by queries
  std::uint64_t query_retries = 0;  // snapshot retries across all queries

  double hole_rate_per_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(holes) / static_cast<double>(batches);
  }
};

template <typename T, typename Compare = std::less<T>>
class Quancurrent {
  static_assert(std::is_trivially_copyable_v<T>,
                "hole-tolerant snapshots require trivially copyable items");

 public:
  explicit Quancurrent(Options opts) : opts_(opts) {
    opts_.normalize();
    cap_ = 2 * static_cast<std::uint64_t>(opts_.k);
    levels_.assign(static_cast<std::size_t>(kPreallocLevels) * 2 * opts_.k, T{});
    scratch_.resize(cap_);
    rng_ = Xoshiro256(opts_.seed);
    // Pre-reserve the tail for its steady-state worst case (one partial
    // gather buffer per node at quiesce plus drain residue) so push_tail
    // almost never reallocates while holding tail_mu_.
    tail_.reserve(static_cast<std::size_t>(opts_.topology.nodes) * opts_.rho * cap_);
    nodes_.reserve(opts_.topology.nodes);
    for (std::uint32_t n = 0; n < opts_.topology.nodes; ++n) {
      nodes_.push_back(std::make_unique<Node>(opts_.rho, cap_));
    }
  }

  Quancurrent(const Quancurrent&) = delete;
  Quancurrent& operator=(const Quancurrent&) = delete;

  const Options& options() const { return opts_; }

  // ----- ingestion ---------------------------------------------------------

  // Per-thread ingestion handle; not thread-safe, create one per thread.
  class Updater {
   public:
    Updater(Quancurrent& sketch, std::uint32_t thread_index)
        : sketch_(&sketch),
          node_(sketch.opts_.topology.node_of(thread_index)),
          b_(sketch.opts_.b),
          local_(sketch.opts_.b) {}

    Updater(const Updater&) = delete;
    Updater& operator=(const Updater&) = delete;
    Updater(Updater&& other) noexcept
        : sketch_(std::exchange(other.sketch_, nullptr)),
          node_(other.node_),
          b_(other.b_),
          local_(std::move(other.local_)),
          count_(std::exchange(other.count_, 0)) {}
    Updater& operator=(Updater&&) = delete;

    ~Updater() { drain(); }

    void update(const T& v) {
      local_[count_++] = v;
      if (count_ == b_) {
        sketch_->flush_chunk(node_, local_.data(), b_);
        count_ = 0;
      }
    }

    // Hands any partial local buffer to the sketch's tail so no element is
    // lost; called automatically on destruction.
    void drain() {
      if (sketch_ != nullptr && count_ != 0) {
        sketch_->push_tail(local_.data(), count_);
        count_ = 0;
      }
    }

   private:
    Quancurrent* sketch_;
    std::uint32_t node_;
    std::uint32_t b_;
    std::vector<T> local_;
    std::uint32_t count_ = 0;
  };

  Updater make_updater(std::uint32_t thread_index) { return Updater(*this, thread_index); }

  // Flushes partially filled gather buffers and compacts the tail into full
  // batches.  Precondition: no concurrent update() calls (updaters must have
  // drained); concurrent queries are fine.
  void quiesce() {
    for (auto& node : nodes_) {
      for (auto& gb : node->bufs) {
        const std::uint64_t committed = gb->committed.load(std::memory_order_acquire);
        assert(committed == gb->reserved.load(std::memory_order_acquire));
        const std::uint64_t residue = committed % cap_;
        if (residue == 0) continue;
        push_tail(gb->slots.data(), residue);
        // Pad the counters to the next batch boundary and advance the
        // ordinal by hand: the batch this would have formed has been routed
        // through the tail instead.
        gb->reserved.fetch_add(cap_ - residue, std::memory_order_acq_rel);
        gb->committed.fetch_add(cap_ - residue, std::memory_order_acq_rel);
        gb->ordinal.fetch_add(1, std::memory_order_release);
      }
    }
    std::lock_guard<std::mutex> lock(tail_mu_);
    if (tail_.size() >= cap_) {
      std::sort(tail_.begin(), tail_.end(), cmp_);
      const std::size_t full = tail_.size() - tail_.size() % cap_;
      for (std::size_t off = 0; off < full; off += cap_) {
        // Subtract from the tail before publishing the batch so a concurrent
        // size() never counts these elements twice (it may transiently
        // undercount, which bounded relaxation already permits).
        tail_size_.fetch_sub(cap_, std::memory_order_acq_rel);
        install_batch(std::span<const T>(tail_.data() + off, cap_));
      }
      tail_.erase(tail_.begin(), tail_.begin() + static_cast<std::ptrdiff_t>(full));
      tail_version_.fetch_add(1, std::memory_order_release);
    }
  }

  // ----- introspection -----------------------------------------------------

  // Elements visible to queries right now (installed batches + tail).
  std::uint64_t size() const {
    return tritmap_.load(std::memory_order_acquire).stream_size(opts_.k) +
           tail_size_.load(std::memory_order_acquire);
  }

  // Items physically retained in the levels array and tail.
  std::uint64_t retained() const {
    const Tritmap tm = tritmap_.load(std::memory_order_acquire);
    std::uint64_t r = tail_size_.load(std::memory_order_acquire);
    for (std::uint32_t level = 0; level < tm.num_levels(); ++level) {
      r += static_cast<std::uint64_t>(tm.trit(level)) * opts_.k;
    }
    return r;
  }

  Tritmap tritmap() const { return tritmap_.load(std::memory_order_acquire); }

  Stats stats() const {
    Stats s;
    s.batches = stat_batches_.load(std::memory_order_relaxed);
    s.propagations = stat_propagations_.load(std::memory_order_relaxed);
    s.holes = stat_holes_.load(std::memory_order_relaxed);
    s.query_retries = stat_query_retries_.load(std::memory_order_relaxed);
    return s;
  }

  // ----- queries -----------------------------------------------------------

  // Point-in-time view of the sketch.  refresh() snapshots the tritmap,
  // copies (or reuses) the referenced level runs plus the tail, and
  // multiway-merges them into a prefix-weight summary; quantile/rank/cdf
  // then answer from the frozen summary in O(log R) without touching shared
  // state.
  class Querier {
   public:
    explicit Querier(Quancurrent& sketch)
        : sketch_(&sketch), cache_(kPreallocLevels) {
      refresh();
    }

    // Incremental refresh: reuses level runs cached by earlier refreshes
    // when the level's install epoch and trit are unchanged; O(1) when
    // nothing was published and the tail did not change.
    void refresh() { refresh_impl(/*force_full=*/false); }

    // Ignores the run cache and re-copies every referenced level; the
    // summary is identical to refresh()'s (tested), just slower to build.
    void refresh_full() { refresh_impl(/*force_full=*/true); }

    // Benchmarking/diagnostic knob: build summaries by flattening all runs
    // and globally sorting (the pre-merge-engine algorithm) instead of
    // multiway-merging.  Answers are identical; only the refresh cost
    // changes.
    void set_sort_baseline(bool on) { sort_baseline_ = on; }

    std::uint64_t size() const { return summary_.total_weight(); }
    std::uint64_t holes() const { return holes_; }

    // The frozen value-sorted summary the last refresh produced.
    const WeightedSummary<T>& summary() const { return summary_; }

    T quantile(double phi) const { return summary_quantile(summary_, phi); }

    std::uint64_t rank(const T& v) const {
      return summary_rank(summary_, v, sketch_->cmp_);
    }

    double cdf(const T& v) const {
      const std::uint64_t total = summary_.total_weight();
      return total == 0 ? 0.0
                        : static_cast<double>(rank(v)) / static_cast<double>(total);
    }

   private:
    static constexpr std::uint32_t kSnapshotRetries = 8;
    static constexpr std::uint64_t kNever = ~std::uint64_t{0};

    // Private copy of one level's occupied slots, tagged with the install
    // epoch the copy reflects.  Valid for reuse while the level's published
    // epoch and trit both still match: slot contents change only through
    // installs, and every install that writes a level bumps its epoch.
    struct LevelCache {
      std::uint64_t epoch = kNever;
      std::uint32_t trit = 0;
      std::vector<T> runs;  // trit sorted k-runs, slot-major
    };

    void refresh_impl(bool force_full) {
      auto& s = *sketch_;
      holes_ = 0;
      for (std::uint32_t attempt = 0;; ++attempt) {
        // Snapshot validation uses the install sequence number, not tritmap
        // equality: the tritmap word can return to a previous value (ABA)
        // after several installs, but install_seq_ is monotonic, so
        // seq-stable implies no install published during the copy — and
        // installs only write slots their pre-publish tritmap marks empty,
        // so every run we copied was stable.
        const std::uint64_t seq = s.install_seq_.load(std::memory_order_acquire);
        if (!force_full && seq == snap_seq_ &&
            s.tail_version_.load(std::memory_order_acquire) == snap_tail_ver_) {
          // Nothing published and no tail churn since the last validated
          // snapshot: the summary is already current.
          return;
        }
        const Tritmap tm = s.tritmap_.load(std::memory_order_acquire);
        assert(tm.trit(0) == 0);  // published tritmaps always have level 0 drained
        collect_levels(tm, force_full);
        const std::uint64_t tail_ver = copy_tail();
        const std::uint64_t check = s.install_seq_.load(std::memory_order_acquire);
        if (check == seq) {
          snap_seq_ = seq;
          snap_tail_ver_ = tail_ver;
          build(tm, /*runs_may_be_torn=*/false);
          return;
        }
        if (attempt + 1 == kSnapshotRetries) {
          // Accept the snapshot; each racing install may have recycled
          // arrays under our copy.  Count them as holes, as the paper does.
          // Torn copies may not be sorted, so build via the global-sort
          // fallback, and poison the cache so the next refresh re-copies.
          holes_ = check - seq;
          if (s.opts_.collect_stats) {
            s.stat_holes_.fetch_add(holes_, std::memory_order_relaxed);
          }
          build(tm, /*runs_may_be_torn=*/true);
          for (auto& c : cache_) c.epoch = kNever;
          snap_seq_ = kNever;
          snap_tail_ver_ = kNever;
          return;
        }
        if (s.opts_.collect_stats) {
          s.stat_query_retries_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }

    // Copies the occupied slots of every level the tritmap references,
    // skipping levels whose cached copy is still current.  The epoch is
    // loaded (acquire) before the slot reads: install_batch publishes a
    // level's epoch with a release store *after* writing its slots, so a
    // cache entry tagged with epoch E always holds the fully written
    // epoch-E contents whenever E is still the level's published epoch.
    void collect_levels(Tritmap tm, bool force_full) {
      auto& s = *sketch_;
      const std::uint32_t k = s.opts_.k;
      top_level_ = tm.num_levels();
      for (std::uint32_t level = 1; level < top_level_; ++level) {
        LevelCache& c = cache_[level];
        const std::uint64_t epoch =
            s.level_epoch_[level].load(std::memory_order_acquire);
        const std::uint32_t trit = tm.trit(level);
        if (!force_full && c.epoch == epoch && c.trit == trit) continue;
        c.runs.resize(static_cast<std::size_t>(trit) * k);
        for (std::uint32_t slot = 0; slot < trit; ++slot) {
          T* arr = s.slot_ptr(level, slot);
          T* dst = c.runs.data() + static_cast<std::size_t>(slot) * k;
          for (std::uint32_t i = 0; i < k; ++i) {
            // Relaxed atomic load pairs with install_batch's atomic stores:
            // if an install recycles this slot under us the value is stale or
            // torn-but-defined, and the validation loop / hole count above
            // handles it.
            dst[i] = std::atomic_ref<T>(arr[i]).load(std::memory_order_relaxed);
          }
        }
        c.epoch = epoch;
        c.trit = trit;
      }
    }

    // Bulk-copies the tail into a reused buffer under tail_mu_ (memcpy, not
    // per-element appends); returns the tail version the copy reflects.
    std::uint64_t copy_tail() {
      auto& s = *sketch_;
      std::lock_guard<std::mutex> lock(s.tail_mu_);
      const std::size_t n = s.tail_.size();
      tail_buf_.resize(n);
      if (n != 0) std::memcpy(tail_buf_.data(), s.tail_.data(), n * sizeof(T));
      return s.tail_version_.load(std::memory_order_relaxed);
    }

    // Assembles the run list (level slots ascending, then the tail) and
    // merges it into the summary.  The run order is deterministic, and the
    // merge breaks ties by run index, so incremental and full refreshes of
    // the same snapshot produce identical summaries.
    void build(Tritmap tm, bool runs_may_be_torn) {
      auto& s = *sketch_;
      const std::uint32_t k = s.opts_.k;
      std::sort(tail_buf_.begin(), tail_buf_.end(), s.cmp_);
      runs_.clear();
      for (std::uint32_t level = 1; level < top_level_; ++level) {
        const LevelCache& c = cache_[level];
        const std::uint32_t trit = std::min(c.trit, tm.trit(level));
        for (std::uint32_t slot = 0; slot < trit; ++slot) {
          runs_.push_back({c.runs.data() + static_cast<std::size_t>(slot) * k, k,
                           1ULL << level});
        }
      }
      if (!tail_buf_.empty()) runs_.push_back({tail_buf_.data(), tail_buf_.size(), 1});
      const auto span = std::span<const RunRef<T>>(runs_);
      if (runs_may_be_torn || sort_baseline_) {
        sort_merge_runs(span, summary_, sort_scratch_, s.cmp_);
      } else {
        merger_.merge(span, summary_, s.cmp_);
      }
    }

    Quancurrent* sketch_;
    std::vector<LevelCache> cache_;
    std::uint32_t top_level_ = 0;
    std::vector<T> tail_buf_;
    std::vector<RunRef<T>> runs_;
    RunMerger<T, Compare> merger_;
    std::vector<std::pair<T, std::uint64_t>> sort_scratch_;
    WeightedSummary<T> summary_;
    std::uint64_t snap_seq_ = kNever;
    std::uint64_t snap_tail_ver_ = kNever;
    std::uint64_t holes_ = 0;
    bool sort_baseline_ = false;
  };

  Querier make_querier() { return Querier(*this); }

 private:
  friend class Updater;
  friend class Querier;

  static constexpr std::uint32_t kPreallocLevels = Tritmap::kMaxLevels;

  // One Gather&Sort buffer.  All three counters are monotonic: reservation
  // position p belongs to ordinal p / cap, and a buffer serves ordinal o only
  // once `ordinal` has advanced to o.
  struct Gather {
    explicit Gather(std::uint64_t cap) : slots(cap) {}
    alignas(64) std::atomic<std::uint64_t> reserved{0};
    alignas(64) std::atomic<std::uint64_t> committed{0};
    alignas(64) std::atomic<std::uint64_t> ordinal{0};
    std::vector<T> slots;
    std::vector<T> sort_aux;  // owner-only radix scratch
  };

  struct Node {
    Node(std::uint32_t rho, std::uint64_t cap) {
      bufs.reserve(rho);
      for (std::uint32_t i = 0; i < rho; ++i) bufs.push_back(std::make_unique<Gather>(cap));
    }
    alignas(64) std::atomic<std::uint64_t> cur{0};  // generation hint for writers
    std::vector<std::unique_ptr<Gather>> bufs;
  };

  T* slot_ptr(std::uint32_t level, std::uint32_t slot) {
    assert(level < kPreallocLevels && slot < 2);
    return levels_.data() + (static_cast<std::size_t>(level) * 2 + slot) * opts_.k;
  }

  // Moves a full local buffer into the node's gather buffer; the committer of
  // the final slot becomes the batch owner and runs Gather&Sort + install.
  void flush_chunk(std::uint32_t node_idx, const T* items, std::uint32_t count) {
    Node& node = *nodes_[node_idx];
    const std::uint64_t gen = node.cur.load(std::memory_order_acquire);
    Gather& gb = *node.bufs[gen % opts_.rho];
    const std::uint64_t pos = gb.reserved.fetch_add(count, std::memory_order_acq_rel);
    const std::uint64_t ord = pos / cap_;
    const std::uint64_t off = pos % cap_;
    if (gb.ordinal.load(std::memory_order_acquire) != ord) {
      // We reserved into a future generation of this buffer: steer other
      // writers to the next buffer, then wait for our ordinal to open.
      std::uint64_t expected = gen;
      node.cur.compare_exchange_strong(expected, gen + 1, std::memory_order_acq_rel);
      Backoff backoff;
      while (gb.ordinal.load(std::memory_order_acquire) != ord) backoff.spin();
    }
    std::copy_n(items, count, gb.slots.data() + off);
    const std::uint64_t done =
        gb.committed.fetch_add(count, std::memory_order_acq_rel) + count;
    if (done == (ord + 1) * cap_) {
      // Owner: every slot of this ordinal is committed.  Point writers at the
      // next buffer, Gather&Sort, install, then open the next ordinal.
      std::uint64_t expected = gen;
      node.cur.compare_exchange_strong(expected, gen + 1, std::memory_order_acq_rel);
      batch_sort(std::span<T>(gb.slots), gb.sort_aux, cmp_);
      install_batch(std::span<const T>(gb.slots.data(), cap_));
      gb.ordinal.store(ord + 1, std::memory_order_release);
    }
  }

  void push_tail(const T* items, std::uint64_t count) {
    std::lock_guard<std::mutex> lock(tail_mu_);
    // Capacity is pre-reserved at construction, so this insert (one
    // geometric reallocation at most, by the range-insert guarantee) almost
    // never allocates under tail_mu_.
    tail_.insert(tail_.end(), items, items + count);
    tail_size_.fetch_add(count, std::memory_order_acq_rel);
    tail_version_.fetch_add(1, std::memory_order_release);
  }

  // Installs a sorted 2k batch: runs the whole propagation cascade against a
  // private copy of the tritmap, writing only slots the published tritmap
  // marks empty, then publishes batch + cascade with a single CAS.
  //
  // latch_ serializes installers, and protects exactly the pre-publication
  // install state: the empty levels_ slots being written, scratch_, rng_
  // (the parity coins), level_epoch_, the tritmap_ CAS, and the
  // install_seq_ bump.  Nothing under the latch allocates (scratch_ and the
  // levels grid are preallocated), and the stats counters are updated after
  // the latch is released.
  void install_batch(std::span<const T> sorted_batch) {
    Backoff backoff;
    while (latch_.test_and_set(std::memory_order_acquire)) backoff.spin();
    const std::uint64_t next_seq = install_seq_.load(std::memory_order_relaxed) + 1;
    Tritmap published = tritmap_.load(std::memory_order_relaxed);
    Tritmap tm = published.after_batch_update();
    // Level 0's two arrays exist only inside `sorted_batch`; each cascade
    // step compacts a sorted 2k source into the free slot one level up.
    std::span<const T> source = sorted_batch;
    std::uint32_t level = 0;
    std::uint64_t steps = 0;
    while (tm.trit(level) == 2) {
      const std::uint32_t dest_level = level + 1;
      if (dest_level >= kPreallocLevels) {
        // Reaching here needs ~k * 2^33 elements; fail fast rather than
        // corrupt the heap.
        std::fprintf(stderr, "qc::Quancurrent: levels array exhausted (k=%u too small "
                             "for this stream length)\n", opts_.k);
        std::abort();
      }
      T* dest = slot_ptr(dest_level, tm.trit(dest_level));
      const std::uint32_t parity = rng_.next_bool() ? 1 : 0;
      for (std::uint32_t i = 0; i < opts_.k; ++i) {
        // Atomic store pairs with Querier::collect_levels' relaxed loads.
        std::atomic_ref<T>(dest[i]).store(source[2 * i + parity],
                                          std::memory_order_relaxed);
      }
      // Release the level's new epoch only after its slot writes so that a
      // querier reading this epoch (acquire) sees fully written runs; see
      // Querier::collect_levels.
      level_epoch_[dest_level].store(next_seq, std::memory_order_release);
      tm = tm.after_install_propagation(level);
      level = dest_level;
      ++steps;
      if (tm.trit(level) == 2) {
        std::merge(slot_ptr(level, 0), slot_ptr(level, 0) + opts_.k, slot_ptr(level, 1),
                   slot_ptr(level, 1) + opts_.k, scratch_.begin(), cmp_);
        source = std::span<const T>(scratch_.data(), cap_);
      }
    }
    const bool swapped = tritmap_.compare_exchange_strong(
        published, tm, std::memory_order_release, std::memory_order_relaxed);
    assert(swapped);
    (void)swapped;
    install_seq_.fetch_add(1, std::memory_order_release);
    latch_.clear(std::memory_order_release);
    if (opts_.collect_stats) {
      stat_batches_.fetch_add(1, std::memory_order_relaxed);
      stat_propagations_.fetch_add(steps, std::memory_order_relaxed);
    }
  }

  Options opts_;
  std::uint64_t cap_ = 0;  // gather batch size: 2k
  Compare cmp_;

  std::vector<std::unique_ptr<Node>> nodes_;

  // Levels array: kPreallocLevels x 2 slots of k items, fixed storage so
  // concurrent snapshot reads are always in-bounds.
  std::vector<T> levels_;
  std::atomic<Tritmap> tritmap_{Tritmap(0)};

  // level_epoch_[l]: install_seq of the last install that wrote level l's
  // slots (not merely cleared them).  Queriers use it to reuse cached runs
  // across refreshes; see Querier::collect_levels.
  std::array<std::atomic<std::uint64_t>, kPreallocLevels> level_epoch_{};

  // Install path (owner-only), serialized by `latch_`.
  std::atomic_flag latch_ = ATOMIC_FLAG_INIT;
  std::vector<T> scratch_;
  Xoshiro256 rng_{0};
  std::atomic<std::uint64_t> install_seq_{0};  // monotonic; bumped per publish

  // Tail: weight-1 residue from drains and quiesce, outside the tritmap.
  // tail_version_ bumps on every tail mutation so queriers can detect an
  // unchanged tail without taking the mutex.
  mutable std::mutex tail_mu_;
  std::vector<T> tail_;
  std::atomic<std::uint64_t> tail_size_{0};
  std::atomic<std::uint64_t> tail_version_{0};

  mutable std::atomic<std::uint64_t> stat_batches_{0};
  mutable std::atomic<std::uint64_t> stat_propagations_{0};
  mutable std::atomic<std::uint64_t> stat_holes_{0};
  mutable std::atomic<std::uint64_t> stat_query_retries_{0};
};

}  // namespace qc::core
