// Quancurrent: the concurrent quantiles sketch (Elias-Zada, Rinberg, Keidar,
// SPAA 2023) over the KLL-style compaction ladder in
// sequential/quantiles_sketch.hpp.
//
// Ingestion pipeline — three decoupled stages, each parallel or amortized:
//
//   1. PRE-SORT (every update thread).  Updates land in a per-thread local
//      buffer of b items; when it fills, the thread sorts it in place
//      (Options::presort_chunks) and only then flushes, so sort work is
//      spread across all writer threads while the data is L1-hot.
//   2. GATHER & MERGE (the batch owner).  A flush F&A-reserves b slots in the
//      2k-element Gather&Sort buffer of the thread's NUMA node; the thread
//      that commits the last slot becomes the batch OWNER.  Because every
//      flush is a sorted b-chunk at a b-aligned offset (Options::normalize
//      makes b divide 2k), the full buffer is 2k/b sorted runs and the owner
//      produces the sorted 2k batch with a multiway chunk merge
//      (run_merge.hpp ChunkMerger, O(2k log(2k/b))) instead of a
//      from-scratch O(2k log 2k) sort.  The merge writes straight into a free cell of the
//      install queue, after which the owner reopens its gather ordinal —
//      ingestion into that buffer resumes before the batch is installed.
//   3. COMBINING INSTALL (one owner at a time).  Sorted batches are handed to
//      a bounded MPSC ring (Options::install_queue cells); whichever owner
//      holds the install latch drains up to Options::install_combine pending
//      batches in FIFO order, applies all their cascades against a private
//      tritmap, and publishes the whole group with a single tritmap CAS, so
//      latch/CAS/publication costs amortize across the group.  Owners whose
//      batch was installed by another drainer return to ingesting without
//      ever holding the latch.
//
// Each NUMA node rotates through rho Gather&Sort buffers so ingestion
// continues while an owner is merging.  Buffers are recycled by a monotonic
// (reservation, commit, ordinal) counter scheme: counters never reset, so a
// delayed thread can never corrupt a later generation's accounting — its
// reservation simply lands in a future ordinal and the thread waits for that
// ordinal to open.
//
// Elastic levels.  The ladder is NOT a preallocated grid: each (level, slot)
// is an atomic pointer to a dynamically allocated, immutable k-item
// LevelBlock.  A cascade that writes a slot fills a FRESH block (plain
// stores, invisible until publication), publishes it with one pointer store,
// and RETIRES the displaced block — published blocks are never mutated, so a
// querier that reached a block through its pointer can copy it without ever
// observing a torn run.  Construction allocates no level storage at all:
// blocks appear as the stream grows (under the install latch, which is the
// only allocation/retirement site) and disappear through reclamation, so
// small tenants stay small and quiesce() can hand memory back.
//
// Interval-based reclamation (IBR).  Retired blocks stay readable until no
// in-flight query snapshot can still reference them.  Blocks are tagged with
// birth/retire epochs from a global epoch counter that the latch holder
// advances every Options::ibr_epoch_freq allocations; updater and querier
// handles announce the epoch they entered a read region at in per-handle
// reservation slots.  Every Options::ibr_recl_freq retirements the latch
// holder scans the announcements and frees exactly the retired blocks whose
// retire epoch precedes every announced epoch (into a bounded reuse pool
// first, the allocator after).  Queriers never block on growth OR
// reclamation: they announce, load epoch-validated pointer snapshots, copy,
// and clear — wait-free throughout.  ibr_stats() exposes the counters the
// abl_reclamation ablation sweeps.
//
// Publication protocol.  A single-batch install only writes slots that the
// currently published tritmap marks empty, then flips the tritmap old -> new
// with one CAS, so a query that loads the tritmap sees a fully consistent
// levels description.  Queries re-validate the install sequence number after
// copying; if an install raced past them they retry, and after a bounded
// number of attempts they accept the snapshot and report the affected arrays
// as holes (counted, never crashed on), mirroring the paper's hole analysis
// (§4.1).  A combined (multi-batch) group may additionally need to republish
// a slot the published tritmap still marks occupied (a later batch refills a
// level an earlier batch of the same group consumed); those groups flip
// install_seq_ odd for the duration of the dangerous publications,
// seqlock-style, so a querier can never validate a copy window that
// overlapped them — single-batch groups never enter the odd phase and remain
// wait-free for queriers, exactly as before.
//
// Query engine.  Every published level slot is a sorted k-run (the KLL
// compactor invariant), so a snapshot is a set of sorted runs, not a bag of
// items.  Querier::refresh copies the referenced runs plus the tail and
// multiway-merges them (core/run_merge.hpp, tournament tree, O(R log L))
// into a structure-of-arrays prefix-weight summary; quantile/rank/cdf are
// then O(log R) binary searches over the frozen summary.  refresh() is also
// incremental: each level carries an install epoch (a counter unique to the
// last batch cascade that wrote it), and a refresh re-copies only levels whose
// epoch or trit changed since the querier's previous validated snapshot,
// reusing every unchanged run.  A refresh that finds both the install seq
// and the tail version unchanged is O(1).
//
// Relaxation.  Elements still in local buffers, partially filled gather
// buffers, or batches parked in the install queue are invisible to queries —
// the paper's bounded relaxation, here at most
// N*b + rho*nodes*2k + install_queue*2k elements.  quiesce() flushes all of
// that into the query path; after every updater has drained and quiesce()
// returned, size() equals the number of ingested elements exactly.
//
// Failure model (README, "Failure model & degradation", has the full
// contract).  Every allocation on the ingest/flush/cascade/merge path is
// exception-safe with a DOCUMENTED outcome, enforced by the chaos suite
// (tests/test_fault.cpp) under QC_FAULT_INJECT:
//
//   * Cascade OOM never half-publishes.  drain_group runs each cascade in
//     two phases: prepare_cascade simulates the cascade against the group
//     tritmap, enforces the retire cap, and stages every block it will need
//     in stash_ — all throws happen there, before any slot, epoch, or seq
//     is touched.  apply_cascade then only consumes the stash (no-throw).
//     On OOM the batch stays parked in its install cell and the group
//     publishes the prefix it already applied: backpressure, not data loss,
//     and install_seq_ parity is always restored (stats().install_defers).
//   * The install latch never leaks: every latch hold is scoped (LatchGuard
//     or a noexcept drain), timed, and watchdogged (Options::latch_watchdog_ns,
//     stats().latch_watchdog_trips).
//   * push_tail / Updater::drain have the strong guarantee (vector range
//     insert at end): on bad_alloc nothing is appended and the updater's
//     local buffer is retained, so an explicit drain() can simply be
//     retried.  Only ~Updater, which must not throw, drops the residue after
//     bounded retries (counted in stats().oom_dropped_items, warned on
//     stderr).
//   * Querier::refresh may propagate bad_alloc; the handle stays valid and
//     the previous summary stays answerable (cache entries are updated
//     per-level, each atomically-consistently).
//   * A stalled reader cannot pin unbounded memory: when the retire list
//     would exceed Options::ibr_retire_cap, the latch holder forces a scan
//     and, if the scan cannot help, throttles ingest (ibr_stats().degraded,
//     forced_scans, throttle_waits) until the reader unpins — retired
//     memory stays <= cap blocks.  ibr_stats().pinned_epoch_age says how
//     far the oldest pin lags.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <new>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "atomics/tritmap.hpp"
#include "common/annotations.hpp"
#include "common/backoff.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/batch_sort.hpp"
#include "core/options.hpp"
#include "core/run_merge.hpp"
#include "fault/inject.hpp"
#include "sequential/quantiles_sketch.hpp"
#include "serde/binary.hpp"

namespace qc::core {

struct Stats {
  std::uint64_t batches = 0;        // 2k batches installed
  std::uint64_t propagations = 0;   // cascade steps across all batches
  std::uint64_t holes = 0;          // arrays accepted unvalidated by queries
  std::uint64_t query_retries = 0;  // snapshot retries across all queries

  // Ingest contention counters (fig06a/fig06c diagnostics; collect_stats
  // only).  Together they say *why* update throughput moves: gather_waits
  // counts flushes that reserved into a closed gather ordinal and had to
  // wait, latch_spins counts failed install-latch acquisitions by owners
  // waiting on the install queue, and installs/combined_installs/max_combine
  // describe how well the combining installer amortizes publication
  // (batches / installs = mean batches per drain group).
  std::uint64_t gather_waits = 0;       // flushes that waited for their ordinal
  std::uint64_t latch_spins = 0;        // failed install-latch try-acquires
  std::uint64_t installs = 0;           // publish groups (1 CAS each)
  std::uint64_t combined_installs = 0;  // groups that drained > 1 batch
  std::uint64_t max_combine = 0;        // largest batches-per-drain group seen

  // Degradation + latch observability (ALWAYS collected, unlike the
  // contention counters above: these move only on latch transitions or
  // failure paths, so the cost is a few relaxed ops per drain group).  See
  // the failure-model section of the file comment.
  std::uint64_t install_defers = 0;     // cascades deferred by allocation failure
  std::uint64_t queue_full_waits = 0;   // producers that found the install ring full
  std::uint64_t oom_dropped_items = 0;  // tail items ~Updater dropped after retries
  std::uint64_t latch_holds = 0;             // completed install-latch holds
  std::uint64_t latch_hold_total_ns = 0;     // summed hold time
  std::uint64_t latch_max_hold_ns = 0;       // longest single hold
  std::uint64_t latch_current_hold_ns = 0;   // in-progress hold age (0 = free)
  std::uint64_t latch_watchdog_trips = 0;    // holds > Options::latch_watchdog_ns

  double hole_rate_per_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(holes) / static_cast<double>(batches);
  }
};

// Counters behind Quancurrent::ibr_stats() — the observable surface of the
// interval-based reclamation scheme (see the file comment) and the axes the
// abl_reclamation ablation sweeps.  Every field is monotonic; live_blocks()
// is the derived point-in-time holding.
struct IbrStats {
  std::uint64_t epochs = 0;     // global reclamation-epoch advances
  std::uint64_t allocated = 0;  // LevelBlocks obtained from the allocator
  std::uint64_t reused = 0;     // block requests served by the reuse pool
  std::uint64_t retired = 0;    // blocks unpublished onto the retire list
  std::uint64_t reclaimed = 0;  // blocks proven safe and taken off it
  std::uint64_t freed = 0;      // blocks returned to the allocator
  std::uint64_t scans = 0;      // reclamation scans (announcement sweeps)
  std::uint64_t peak_unreclaimed = 0;  // largest retire-list size ever seen

  // Stalled-handle detection (Options::ibr_retire_cap; failure-model section
  // of the file comment).  forced_scans / throttle_waits are monotone; the
  // last three are point-in-time observations, not counters.
  std::uint64_t forced_scans = 0;     // off-cadence scans forced by the cap
  std::uint64_t throttle_waits = 0;   // throttle episodes (ingest paused)
  std::uint64_t retire_list_len = 0;  // current retire-list length
  std::uint64_t pinned_epoch_age = 0;  // epochs the oldest announced pin lags
                                       // the global epoch (0 = no pin / fresh)
  bool degraded = false;  // cap reached and a scan could not free below it

  // Blocks the sketch currently holds (published + retired + reuse pool).
  std::uint64_t live_blocks() const { return allocated - freed; }
};

template <typename T, typename Compare = std::less<T>>
class Quancurrent {
  static_assert(std::is_trivially_copyable_v<T>,
                "hole-tolerant snapshots require trivially copyable items");

  // ----- IBR plumbing, declared early: the handle classes below embed it --

  static constexpr std::uint64_t kIdleEpoch = ~std::uint64_t{0};
  static constexpr std::size_t kIbrSlotsPerChunk = 32;
  static constexpr std::size_t kFreeListCap = 64;  // reuse-pool bound

  // One published k-item run.  Immutable once its pointer is published;
  // birth/retire epochs bound its reclamation interval.  (The conservative
  // free rule below only consults retire_epoch; birth_epoch is kept for
  // diagnostics and the full interval-overlap variant.)
  struct LevelBlock {
    explicit LevelBlock(std::uint32_t k) : items(k) {}
    std::uint64_t birth_epoch = 0;
    std::uint64_t retire_epoch = 0;
    std::vector<T> items;
  };

  // One per-handle epoch announcement slot.  `announced` is the epoch the
  // handle's current read region entered at (kIdleEpoch when quiescent);
  // `in_use` is slot ownership, recycled across handle lifetimes.
  struct IbrSlot {
    alignas(64) std::atomic<std::uint64_t> announced{kIdleEpoch};
    std::atomic<bool> in_use{false};
  };

  // Announcement slots live in a lock-free grow-only chunk list, allocated
  // lazily (a sketch nobody made handles for pays nothing) and recycled via
  // in_use, so handle churn does not grow the list without bound.
  struct IbrSlotChunk {
    std::array<IbrSlot, kIbrSlotsPerChunk> slots;
    std::atomic<IbrSlotChunk*> next{nullptr};
  };

  // RAII ownership of one announcement slot for a handle's lifetime; movable
  // so the Updater/Querier handles stay movable.
  class IbrSlotLease {
   public:
    explicit IbrSlotLease(Quancurrent& sketch) : slot_(sketch.acquire_ibr_slot()) {}
    IbrSlotLease(const IbrSlotLease&) = delete;
    IbrSlotLease& operator=(const IbrSlotLease&) = delete;
    IbrSlotLease(IbrSlotLease&& other) noexcept
        : slot_(std::exchange(other.slot_, nullptr)) {}
    IbrSlotLease& operator=(IbrSlotLease&&) = delete;
    ~IbrSlotLease() {
      if (slot_ != nullptr) {
        slot_->announced.store(kIdleEpoch, std::memory_order_seq_cst);
        slot_->in_use.store(false, std::memory_order_release);
      }
    }
    IbrSlot* slot() const { return slot_; }

   private:
    IbrSlot* slot_ = nullptr;
  };

  // Scoped epoch announcement: pins the reclamation epoch for one read
  // region (a query snapshot).  Two stores; never blocks.
  class IbrPin {
   public:
    IbrPin(Quancurrent& sketch, IbrSlot* slot) : slot_(slot) {
      // seq_cst load + store: the announcement must precede this handle's
      // subsequent slot-pointer loads in the single total order — that
      // ordering is what lets the reclaimer's scan prove the handle visible
      // (see the IBR section of the file comment).
      slot_->announced.store(sketch.ibr_epoch_.load(std::memory_order_seq_cst),
                             std::memory_order_seq_cst);
    }
    IbrPin(const IbrPin&) = delete;
    IbrPin& operator=(const IbrPin&) = delete;
    ~IbrPin() { slot_->announced.store(kIdleEpoch, std::memory_order_seq_cst); }

   private:
    IbrSlot* slot_;
  };

 public:
  using value_type = T;

  explicit Quancurrent(Options opts) : opts_(opts) {
    // Surface silently-clamped configuration exactly once, at construction;
    // Options::validate() offers the same list without side effects.
    const auto adjustments = opts_.normalize();
    if (opts_.collect_stats) Options::report(adjustments);
    cap_ = 2 * static_cast<std::uint64_t>(opts_.k);
    presort_ = opts_.presort_chunks && cap_ % opts_.b == 0;
    // No level storage here: the elastic ladder allocates blocks on demand
    // (alloc_block).  Only the reclamation bookkeeping is pre-reserved so
    // retire_block rarely reallocates under the install latch.
    retired_.reserve(256);
    free_blocks_.reserve(kFreeListCap);
    // A cascade publishes at most one block per level plus the entry block;
    // reserving now makes prepare_cascade's staging pushes no-throw.
    stash_.reserve(kLevels + 1);
    scratch_.resize(cap_);
    rng_ = Xoshiro256(opts_.seed);
    install_q_ = std::make_unique<InstallCell[]>(opts_.install_queue);
    for (std::uint32_t i = 0; i < opts_.install_queue; ++i) {
      install_q_[i].items.resize(cap_);
      install_q_[i].seq.store(i, std::memory_order_relaxed);
    }
    // Pre-reserve the tail for its steady-state worst case (one partial
    // gather buffer per node at quiesce plus drain residue) so push_tail
    // almost never reallocates while holding tail_mu_.
    tail_.reserve(static_cast<std::size_t>(opts_.topology.nodes) * opts_.rho * cap_);
    nodes_.reserve(opts_.topology.nodes);
    for (std::uint32_t n = 0; n < opts_.topology.nodes; ++n) {
      nodes_.push_back(std::make_unique<Node>(opts_.rho, cap_));
    }
  }

  Quancurrent(const Quancurrent&) = delete;
  Quancurrent& operator=(const Quancurrent&) = delete;

  // Every block (published, retired, or pooled) and every announcement chunk
  // is owned by the sketch.  The convenience handles are torn down FIRST:
  // the updater drains into the tail and both release announcement slots
  // that live inside the chunks deleted below.  External handles must not
  // outlive the sketch (they hold a raw back-pointer already).
  ~Quancurrent() {
    self_querier_.reset();
    self_updater_.reset();
    for (auto& ref : slot_blocks_) delete ref.load(std::memory_order_relaxed);
    for (LevelBlock* b : retired_) delete b;
    for (LevelBlock* b : free_blocks_) delete b;
    for (LevelBlock* b : stash_) delete b;  // nonempty only after a mid-drain throw
    IbrSlotChunk* c = ibr_chunks_.load(std::memory_order_relaxed);
    while (c != nullptr) {
      IbrSlotChunk* next = c->next.load(std::memory_order_relaxed);
      delete c;
      c = next;
    }
  }

  const Options& options() const { return opts_; }

  // ----- ingestion ---------------------------------------------------------

  // Per-thread ingestion handle; not thread-safe, create one per thread.
  class Updater {
   public:
    Updater(Quancurrent& sketch, std::uint32_t thread_index)
        : sketch_(&sketch),
          lease_(sketch),
          node_(sketch.opts_.topology.node_of(thread_index)),
          b_(sketch.opts_.b),
          presort_(sketch.presort_),
          net_merge_(sketch.presort_ && sketch.opts_.b > 16 && sketch.opts_.b % 16 == 0),
          local_(sketch.opts_.b) {
      if (net_merge_) sorted_.resize(b_);
    }

    Updater(const Updater&) = delete;
    Updater& operator=(const Updater&) = delete;
    Updater(Updater&& other) noexcept
        : sketch_(std::exchange(other.sketch_, nullptr)),
          lease_(std::move(other.lease_)),
          node_(other.node_),
          b_(other.b_),
          presort_(other.presort_),
          net_merge_(other.net_merge_),
          local_(std::move(other.local_)),
          sorted_(std::move(other.sorted_)),
          sort_aux_(std::move(other.sort_aux_)),
          merger_(std::move(other.merger_)),
          count_(std::exchange(other.count_, 0)) {}
    Updater& operator=(Updater&&) = delete;

    // Destructors must not throw: retry the tail hand-off on OOM, then drop
    // the residue with a warning rather than terminate.  An EXPLICIT drain()
    // propagates bad_alloc instead — the buffer is retained (push_tail has
    // the strong guarantee), so callers can retry losslessly.
    ~Updater() {
      for (int attempt = 0; attempt < 3; ++attempt) {
        try {
          drain();
          return;
        } catch (const std::bad_alloc&) {
        }
      }
      if (sketch_ != nullptr && count_ != 0) {
        std::fprintf(stderr,
                     "qc::Updater: dropped %u buffered items after repeated "
                     "allocation failure\n",
                     count_);
        sketch_->stat_oom_dropped_.fetch_add(count_, std::memory_order_relaxed);
        count_ = 0;
      }
    }

    void update(const T& v) {
      local_[count_++] = v;
      if (count_ == b_) flush_local();
    }

    // Bulk ingestion: memcpy-fills the local buffer in chunk-sized strides
    // instead of one element (and one full-buffer branch) per call.  With
    // pre-sorting disabled, whole b-chunks are flushed straight from `vs`
    // without touching the local buffer at all.
    void update(std::span<const T> vs) {
      std::size_t i = 0;
      const std::size_t n = vs.size();
      while (i < n) {
        if (count_ == 0 && !presort_ && n - i >= b_) {
          sketch_->flush_chunk(node_, vs.data() + i, b_, lease_.slot());
          i += b_;
          continue;
        }
        const std::size_t take =
            std::min<std::size_t>(b_ - count_, n - i);
        std::memcpy(local_.data() + count_, vs.data() + i, take * sizeof(T));
        count_ += static_cast<std::uint32_t>(take);
        i += take;
        if (count_ == b_) flush_local();
      }
    }

    // Hands any partial local buffer to the sketch's tail so no element is
    // lost; called automatically on destruction.  On bad_alloc nothing is
    // appended and the buffer is retained (count_ only clears after the
    // hand-off succeeded), so drain() can simply be called again.
    void drain() {
      if (sketch_ != nullptr && count_ != 0) {
        sketch_->push_tail(local_.data(), count_);
        count_ = 0;
      }
    }

   private:
    // Stage 1 of the ingest pipeline: sort the full local buffer while it is
    // cache-hot, then flush it as one pre-sorted b-chunk.  b <= 16 buffers go
    // straight through a branchless sorting network (inside batch_sort /
    // small_sort); larger 16-aligned buffers network-sort each 16-block and
    // chunk-merge them — both paths keep the per-update sort cost a fraction
    // of what the owner's from-scratch full sort used to pay per item.
    void flush_local() {
      if (presort_) {
        if (net_merge_) {
          for (std::uint32_t off = 0; off < b_; off += 16) {
            small_sort(std::span<T>(local_.data() + off, 16), sketch_->cmp_);
          }
          merger_.merge(std::span<const T>(local_), 16, std::span<T>(sorted_),
                        sketch_->cmp_);
          sketch_->flush_chunk(node_, sorted_.data(), b_, lease_.slot());
          count_ = 0;
          return;
        }
        batch_sort(std::span<T>(local_), sort_aux_, sketch_->cmp_);
      }
      sketch_->flush_chunk(node_, local_.data(), b_, lease_.slot());
      count_ = 0;
    }

    Quancurrent* sketch_;
    IbrSlotLease lease_;  // this handle's epoch announcement slot
    std::uint32_t node_;
    std::uint32_t b_;
    bool presort_;
    bool net_merge_;  // pre-sort via 16-networks + chunk merge (16 | b)
    std::vector<T> local_;
    std::vector<T> sorted_;    // net_merge_ output, flushed instead of local_
    std::vector<T> sort_aux_;  // radix scratch for the local pre-sort
    ChunkMerger<T, Compare> merger_;
    std::uint32_t count_ = 0;
  };

  Updater make_updater(std::uint32_t thread_index) { return Updater(*this, thread_index); }

  // Flushes partially filled gather buffers, drains batches still parked in
  // the install queue, compacts the tail into full batches, and hands
  // reclaimable level blocks back to the allocator.
  // Precondition: no concurrent update() calls (updaters must have drained);
  // concurrent queries are fine.  No head==tail assert after the drain: a
  // concurrent merge_into() targeting this sketch may legitimately enqueue
  // (and self-drain) install_run batches at any moment, so queue equality
  // here could fail spuriously without any precondition violation — the
  // drain below already published everything that was parked when we looked.
  void quiesce() QC_EXCLUDES(latch_) {
    // The convenience updater belongs to the sketch, so quiesce() may (and
    // must) drain it: its buffered items are otherwise unreachable here.
    if (self_updater_ != nullptr) self_updater_->drain();
    drain_installs();
    for (auto& node : nodes_) {
      for (auto& gb : node->bufs) {
        const std::uint64_t committed = gb->committed.load(std::memory_order_acquire);
        // Memory safety, not just accounting: a reserved-but-uncommitted
        // flush means a concurrent update() is still copying into this
        // buffer, and the push_tail below would publish (and later recycle)
        // slots it is mid-write on.
        QC_CHECK(committed == gb->reserved.load(std::memory_order_acquire),
                 "quiesce() requires all updaters drained (no concurrent update())");
        const std::uint64_t residue = committed % cap_;
        if (residue == 0) continue;
        push_tail(gb->slots.data(), residue);
        // Pad the counters to the next batch boundary and advance the
        // ordinal by hand: the batch this would have formed has been routed
        // through the tail instead.
        gb->reserved.fetch_add(cap_ - residue, std::memory_order_acq_rel);
        gb->committed.fetch_add(cap_ - residue, std::memory_order_acq_rel);
        gb->ordinal.fetch_add(1, std::memory_order_release);
      }
    }
    {
      const sync::MutexLock lock(tail_mu_);
      if (tail_.size() >= cap_) {
        std::sort(tail_.begin(), tail_.end(), cmp_);
        const std::size_t full = tail_.size() - tail_.size() % cap_;
        for (std::size_t off = 0; off < full; off += cap_) {
          // Subtract from the tail before publishing the batch so a
          // concurrent size() never counts these elements twice (it may
          // transiently undercount, which bounded relaxation already
          // permits).
          tail_size_.fetch_sub(cap_, std::memory_order_acq_rel);
          install_batch(std::span<const T>(tail_.data() + off, cap_));
        }
        tail_.erase(tail_.begin(), tail_.begin() + static_cast<std::ptrdiff_t>(full));
        tail_version_.fetch_add(1, std::memory_order_release);
      }
    }
    // Give memory back.  Unpublish every slot the published tritmap no
    // longer references (cascades leave consumed slots published so lagging
    // queriers can still copy them; quiesce is where they are let go), then
    // scan, then return the reuse pool to the allocator.  Afterwards — with
    // no reader mid-snapshot — ibr_stats().live_blocks() equals the number
    // of tritmap-referenced runs exactly (the eventual-reclamation test's
    // invariant).
    const LatchGuard guard(*this);  // scoped: the latch cannot leak on a throw
    // Make the unpublish loop's retirements no-throw up front (<= 2 * kLevels
    // of them); a bad_alloc here propagates with nothing retired yet.
    // qc-lint-allow(no-alloc-under-latch): quiesce is the cold reclamation
    // path (no concurrent updaters by precondition), and this reserve is what
    // makes the retirements below allocation-free.
    retired_.reserve(retired_.size() + 2 * static_cast<std::size_t>(kLevels));
    const Tritmap tm = tritmap_.load(std::memory_order_relaxed);
    for (std::uint32_t level = 0; level < kLevels; ++level) {
      for (std::uint32_t slot = tm.trit(level); slot < 2; ++slot) {
        LevelBlock* old = slot_block(level, slot).load(std::memory_order_relaxed);
        if (old == nullptr) continue;
        slot_block(level, slot).store(nullptr, std::memory_order_seq_cst);
        retire_block(old);
      }
    }
    ibr_scan();
    for (LevelBlock* b : free_blocks_) {
      delete b;
      ibr_freed_.fetch_add(1, std::memory_order_relaxed);
    }
    free_blocks_.clear();
  }

  // ----- introspection -----------------------------------------------------

  // Elements visible to queries right now (installed batches + tail).
  std::uint64_t size() const {
    return tritmap_.load(std::memory_order_acquire).stream_size(opts_.k) +
           tail_size_.load(std::memory_order_acquire);
  }

  // Items physically retained in the published level blocks and tail.
  std::uint64_t retained() const {
    const Tritmap tm = tritmap_.load(std::memory_order_acquire);
    std::uint64_t r = tail_size_.load(std::memory_order_acquire);
    for (std::uint32_t level = 0; level < tm.num_levels(); ++level) {
      r += static_cast<std::uint64_t>(tm.trit(level)) * opts_.k;
    }
    return r;
  }

  Tritmap tritmap() const { return tritmap_.load(std::memory_order_acquire); }

  Stats stats() const {
    Stats s;
    s.batches = stat_batches_.load(std::memory_order_relaxed);
    s.propagations = stat_propagations_.load(std::memory_order_relaxed);
    s.holes = stat_holes_.load(std::memory_order_relaxed);
    s.query_retries = stat_query_retries_.load(std::memory_order_relaxed);
    s.gather_waits = stat_gather_waits_.load(std::memory_order_relaxed);
    s.latch_spins = stat_latch_spins_.load(std::memory_order_relaxed);
    s.installs = stat_installs_.load(std::memory_order_relaxed);
    s.combined_installs = stat_combined_installs_.load(std::memory_order_relaxed);
    s.max_combine = stat_max_combine_.load(std::memory_order_relaxed);
    s.install_defers = stat_install_defers_.load(std::memory_order_relaxed);
    s.queue_full_waits = stat_queue_full_waits_.load(std::memory_order_relaxed);
    s.oom_dropped_items = stat_oom_dropped_.load(std::memory_order_relaxed);
    s.latch_holds = stat_latch_holds_.load(std::memory_order_relaxed);
    s.latch_hold_total_ns = stat_latch_hold_ns_.load(std::memory_order_relaxed);
    s.latch_max_hold_ns = stat_latch_max_hold_ns_.load(std::memory_order_relaxed);
    s.latch_watchdog_trips = stat_watchdog_trips_.load(std::memory_order_relaxed);
    // Observable wedge detection: how long the CURRENT holder has had the
    // latch (0 when free) — a hung holder shows up here long before its own
    // release-side watchdog trip could.
    const std::uint64_t since = latch_since_ns_.load(std::memory_order_relaxed);
    s.latch_current_hold_ns = since == 0 ? 0 : now_ns() - since;
    return s;
  }

  // Reclamation counters (always collected; the bookkeeping is a handful of
  // relaxed adds on the latch holder's path).  Thread-safe; under concurrent
  // ingestion the fields are individually, not mutually, consistent.
  IbrStats ibr_stats() const {
    IbrStats s;
    s.epochs = ibr_epochs_.load(std::memory_order_relaxed);
    s.allocated = ibr_allocated_.load(std::memory_order_relaxed);
    s.reused = ibr_reused_.load(std::memory_order_relaxed);
    s.retired = ibr_retired_.load(std::memory_order_relaxed);
    s.reclaimed = ibr_reclaimed_.load(std::memory_order_relaxed);
    s.freed = ibr_freed_.load(std::memory_order_relaxed);
    s.scans = ibr_scans_.load(std::memory_order_relaxed);
    s.peak_unreclaimed = ibr_peak_unreclaimed_.load(std::memory_order_relaxed);
    s.forced_scans = ibr_forced_scans_.load(std::memory_order_relaxed);
    s.throttle_waits = ibr_throttle_waits_.load(std::memory_order_relaxed);
    s.retire_list_len = retire_list_len_.load(std::memory_order_relaxed);
    s.degraded = degraded_.load(std::memory_order_relaxed);
    // Stalled-handle detection: a healthy pin lags the global epoch by at
    // most a scan cadence or two; an age that keeps growing names the
    // failure (a parked handle) rather than its symptom (a long retire
    // list).  The announcement sweep is O(handles) — diagnostic-path cost.
    const std::uint64_t min_e = min_announced_epoch();
    const std::uint64_t cur = ibr_epoch_.load(std::memory_order_relaxed);
    s.pinned_epoch_age = (min_e == kIdleEpoch || min_e >= cur) ? 0 : cur - min_e;
    return s;
  }

  // ----- install queue hooks -----------------------------------------------

  // Parks a sorted 2k batch in the install queue WITHOUT draining it, and
  // returns its queue position; pair with drain_installs().  Blocks if the
  // queue is full.  This is the diagnostic/test surface for exercising
  // multi-batch combining deterministically; production ingestion always
  // follows an enqueue with drain_until(), so the queue self-drains.
  std::uint64_t enqueue_batch(std::span<const T> sorted_batch) QC_EXCLUDES(latch_) {
    // Size is memory safety (the memcpy below trusts it); sortedness is an
    // algorithmic precondition (wrong answers, not wrong accesses) and O(2k)
    // to verify, so it stays a debug-only assert (see common/check.hpp).
    QC_CHECK(sorted_batch.size() == cap_, "enqueue_batch requires a full 2k batch");
    // qc-lint-allow(qc-check-over-assert): O(2k) sortedness probe — answer
    // correctness only, per the policy comment above.
    assert(std::is_sorted(sorted_batch.begin(), sorted_batch.end(), cmp_));
    const std::uint64_t pos = acquire_cell();
    InstallCell& cell = install_q_[pos & (opts_.install_queue - 1)];
    std::memcpy(cell.items.data(), sorted_batch.data(), cap_ * sizeof(T));
    cell.level = 0;
    cell.seq.store(pos + 1, std::memory_order_release);
    return pos;
  }

  // Installs one sorted k-run directly at ladder level `level` (each item
  // carrying weight 2^level) through the normal install queue: the run lands
  // in a free slot — cascading a compaction upward if the level fills — and
  // is published by the regular combining drain, so concurrent queriers stay
  // wait-free exactly as for 2k batch installs.  This is the merge
  // primitive: folding another sketch into this one is a sequence of
  // install_run() calls plus a push_tail() of its weight-1 residue.
  // Thread-safe against concurrent updaters, queriers, and other installs.
  // QC_EXCLUDES: drains the queue itself — a caller already holding the
  // latch would deadlock in drain_until (try_acquire can never succeed).
  void install_run(std::uint32_t level, std::span<const T> run) QC_EXCLUDES(latch_) {
    // Level bounds and run size guard the memcpy and the cascade's slot
    // writes; sortedness is answer-correctness only (assert policy above).
    QC_CHECK(level >= 1 && level < kLevels, "install_run level out of ladder range");
    QC_CHECK(run.size() == opts_.k, "install_run requires exactly one k-run");
    // qc-lint-allow(qc-check-over-assert): O(k) sortedness probe — answer
    // correctness only (assert policy above).
    assert(std::is_sorted(run.begin(), run.end(), cmp_));
    std::unique_lock<std::mutex> serialized;
    if (opts_.serialize_propagation) {
      serialized = std::unique_lock<std::mutex>(prop_mu_);
    }
    const std::uint64_t pos = acquire_cell();
    InstallCell& cell = install_q_[pos & (opts_.install_queue - 1)];
    std::memcpy(cell.items.data(), run.data(), opts_.k * sizeof(T));
    cell.level = level;
    cell.seq.store(pos + 1, std::memory_order_release);
    drain_until(pos);
  }

  // Appends weight-1 items to the tail, immediately visible to queries.
  // Thread-safe; merge and ingestion-adjacent code paths use it for residue
  // that does not fill a 2k batch.  Strong exception guarantee: on bad_alloc
  // (the insert's growth, or an injected tail_alloc fault) nothing is
  // appended and the counters are untouched — callers retry or report.
  void push_tail(const T* items, std::uint64_t count) {
    const sync::MutexLock lock(tail_mu_);
    QC_INJECT_OOM(tail_alloc);
    // Capacity is pre-reserved at construction, so this insert (one
    // geometric reallocation at most, by the range-insert guarantee) almost
    // never allocates under tail_mu_.
    tail_.insert(tail_.end(), items, items + count);
    tail_size_.fetch_add(count, std::memory_order_acq_rel);
    tail_version_.fetch_add(1, std::memory_order_release);
  }

  // Installs every batch currently parked in the install queue (in groups of
  // up to install_combine, like any drain).  Used by quiesce() and the
  // combining-depth benchmarks.
  void drain_installs() QC_EXCLUDES(latch_) {
    Backoff backoff;
    while (install_head_.load(std::memory_order_acquire) !=
           install_tail_.load(std::memory_order_acquire)) {
      if (try_acquire_latch()) {
        drain_group();
        release_latch();
      } else {
        backoff.spin();
      }
    }
  }

  // ----- queries -----------------------------------------------------------

  // Point-in-time view of the sketch.  refresh() snapshots the tritmap,
  // copies (or reuses) the referenced level runs plus the tail, and
  // multiway-merges them into a prefix-weight summary; quantile/rank/cdf
  // then answer from the frozen summary in O(log R) without touching shared
  // state.
  class Querier {
   public:
    explicit Querier(Quancurrent& sketch)
        : sketch_(&sketch), lease_(sketch), cache_(kLevels) {
      refresh();
    }

    // Incremental refresh: reuses level runs cached by earlier refreshes
    // when the level's install epoch and trit are unchanged; O(1) when
    // nothing was published and the tail did not change.
    void refresh() { refresh_impl(/*force_full=*/false); }

    // Ignores the run cache and re-copies every referenced level; the
    // summary is identical to refresh()'s (tested), just slower to build.
    void refresh_full() { refresh_impl(/*force_full=*/true); }

    // Benchmarking/diagnostic knob: build summaries by flattening all runs
    // and globally sorting (the pre-merge-engine algorithm) instead of
    // multiway-merging.  Answers are identical; only the refresh cost
    // changes.
    void set_sort_baseline(bool on) { sort_baseline_ = on; }

    std::uint64_t size() const { return summary_.total_weight(); }
    std::uint64_t holes() const { return holes_; }

    // Bumps every time a refresh actually rebuilds the summary; an O(1)
    // refresh (nothing published, no tail churn) leaves it unchanged.
    // Cross-sketch aggregators (ShardedQuancurrent::Querier) use it to skip
    // re-merging shards whose summaries did not move.
    std::uint64_t version() const { return version_; }

    // The frozen value-sorted summary the last refresh produced.
    const WeightedSummary<T>& summary() const { return summary_; }

    T quantile(double phi) const { return summary_quantile(summary_, phi); }

    std::uint64_t rank(const T& v) const {
      return summary_rank(summary_, v, sketch_->cmp_);
    }

    double cdf(const T& v) const {
      const std::uint64_t total = summary_.total_weight();
      return total == 0 ? 0.0
                        : static_cast<double>(rank(v)) / static_cast<double>(total);
    }

   private:
    static constexpr std::uint32_t kSnapshotRetries = 8;
    static constexpr std::uint64_t kNever = ~std::uint64_t{0};

    // Private copy of one level's occupied slots, tagged with the install
    // epoch the copy reflects.  Valid for reuse while the level's published
    // epoch and trit both still match: slot contents change only through
    // installs, and every batch cascade that writes a level stores a fresh
    // epoch (unique per batch, not per publish group, so two writes of the
    // same level within one combined group are distinguishable).
    struct LevelCache {
      std::uint64_t epoch = kNever;
      std::uint32_t trit = 0;    // trit the copy was made under
      std::uint32_t copied = 0;  // runs actually copied (< trit on a racing
                                 // shrink: the snapshot then fails validation)
      std::vector<T> runs;       // copied sorted k-runs, slot-major
    };

    // May propagate bad_alloc (snapshot copy growth): the handle stays
    // valid, the previous summary stays answerable, and the pin clears on
    // unwind (RAII) so a failed refresh can never stall reclamation.
    void refresh_impl(bool force_full) {
      auto& s = *sketch_;
      // Pin the reclamation epoch across every snapshot attempt: the
      // slot-block pointers collect_levels loads below stay dereferenceable
      // until the pin clears (IBR, file comment).  Two stores — the query
      // path never blocks on growth or reclamation.
      const IbrPin pin(s, lease_.slot());
      // Chaos builds: park the reader HERE, pin held — the stalled-querier
      // scenario the retire cap (Options::ibr_retire_cap) exists for.
      QC_INJECT_STALL(querier_stall);
      holes_ = 0;
      Backoff backoff;
      for (std::uint32_t attempt = 0;; ++attempt) {
        // Snapshot validation uses the install sequence number, not tritmap
        // equality: the tritmap word can return to a previous value (ABA)
        // after several installs, but install_seq_ is monotonic, so
        // seq-stable implies no install group published during the copy.
        // Single-batch groups only write slots their pre-publish tritmap
        // marks empty, so every run copied under a stable seq was stable;
        // multi-batch groups that must rewrite a published-occupied slot
        // hold install_seq_ ODD for the duration (seqlock), so a copy window
        // overlapping such writes can never validate: it either starts on an
        // odd seq (rejected here) or spans the even->odd flip (rejected by
        // the re-check below).
        const std::uint64_t seq = s.install_seq_.load(std::memory_order_acquire);
        const bool unstable = (seq & 1) != 0;
        if (!force_full && !unstable && seq == snap_seq_ &&
            s.tail_version_.load(std::memory_order_acquire) == snap_tail_ver_) {
          // Nothing published and no tail churn since the last validated
          // snapshot: the summary is already current.
          return;
        }
        const bool last_attempt = attempt + 1 == kSnapshotRetries;
        if (unstable && !last_attempt) {
          if (s.opts_.collect_stats) {
            s.stat_query_retries_.fetch_add(1, std::memory_order_relaxed);
          }
          backoff.spin();
          continue;
        }
        const Tritmap tm = s.tritmap_.load(std::memory_order_acquire);
        // qc-lint-allow(qc-check-over-assert): ladder-shape documentation on
        // the snapshot retry loop — a violation reads a stale level-0 view
        // (wrong answer), never an out-of-bounds slot; QC_CHECK here would
        // tax every snapshot attempt.
        assert(tm.trit(0) == 0);  // published tritmaps always have level 0 drained
        collect_levels(tm, force_full);
        const std::uint64_t tail_ver = copy_tail();
        // The copy loads above are acquire, so this re-check load cannot be
        // reordered before them, and a copy that observed a dangerous write
        // synchronizes with the installer's odd flip (see collect_levels) —
        // it cannot re-read the pre-flip (even) seq here.
        const std::uint64_t check = s.install_seq_.load(std::memory_order_acquire);
        if (!unstable && check == seq) {
          snap_seq_ = seq;
          snap_tail_ver_ = tail_ver;
          build(tm, /*runs_may_be_torn=*/false);
          return;
        }
        if (last_attempt) {
          // Accept the snapshot; each racing install group may have recycled
          // arrays under our copy.  Count the groups as holes, as the paper
          // does.  Torn copies may not be sorted, so build via the
          // global-sort fallback, and poison the cache so the next refresh
          // re-copies.
          holes_ = std::max<std::uint64_t>(1, (check - seq) / 2);
          if (s.opts_.collect_stats) {
            s.stat_holes_.fetch_add(holes_, std::memory_order_relaxed);
          }
          build(tm, /*runs_may_be_torn=*/true);
          for (auto& c : cache_) c.epoch = kNever;
          snap_seq_ = kNever;
          snap_tail_ver_ = kNever;
          return;
        }
        if (s.opts_.collect_stats) {
          s.stat_query_retries_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }

    // Copies the occupied slots of every level the tritmap references,
    // skipping levels whose cached copy is still current.  The epoch is
    // loaded (acquire) before the pointer loads: a batch cascade publishes a
    // level's epoch with a release store *after* publishing its block, so a
    // cache entry tagged with epoch E always reflects the epoch-E
    // publication whenever E is still the level's published epoch.  (A later
    // cascade republishing the level while we copy leaves our entry tagged
    // with the OLD epoch and stores a new one, so the entry is re-copied.)
    void collect_levels(Tritmap tm, bool force_full) {
      auto& s = *sketch_;
      const std::uint32_t k = s.opts_.k;
      top_level_ = tm.num_levels();
      for (std::uint32_t level = 1; level < top_level_; ++level) {
        LevelCache& c = cache_[level];
        const std::uint64_t epoch =
            s.level_epoch_[level].load(std::memory_order_acquire);
        const std::uint32_t trit = tm.trit(level);
        if (!force_full && c.epoch == epoch && c.trit == trit &&
            c.copied == trit) {
          continue;
        }
        // A bad_alloc on this growth leaves the entry's previous (epoch,
        // runs) pair intact — resize has the strong guarantee and the tags
        // are only updated after the copy below — so the cache stays
        // internally consistent and refresh can simply be retried.
        QC_INJECT_OOM(querier_copy_alloc);
        c.runs.resize(static_cast<std::size_t>(trit) * k);
        std::uint32_t copied = 0;
        for (std::uint32_t slot = 0; slot < trit; ++slot) {
          // seq_cst pointer load: in the single total order it follows this
          // handle's epoch announcement, which is what lets the reclaimer's
          // scan prove the block cannot be freed under us (IBR, file
          // comment).  Published blocks are immutable, so the memcpy can
          // never tear.  If the slot was dangerously republished, loading
          // the NEW pointer makes the installer's preceding odd seq flip
          // visible to refresh_impl's re-check (seq_cst store/load pair),
          // which rejects the snapshot; loading the OLD pointer yields
          // content consistent with the tritmap we validated against.
          const LevelBlock* blk =
              s.slot_block(level, slot).load(std::memory_order_seq_cst);
          if (blk == nullptr) break;  // racing unpublish: this snapshot
                                      // cannot validate, stop copying
          std::memcpy(c.runs.data() + static_cast<std::size_t>(slot) * k,
                      blk->items.data(), k * sizeof(T));
          ++copied;
        }
        c.runs.resize(static_cast<std::size_t>(copied) * k);
        c.epoch = epoch;
        c.trit = trit;
        c.copied = copied;
      }
    }

    // Bulk-copies the tail into a reused buffer under tail_mu_ (memcpy, not
    // per-element appends); returns the tail version the copy reflects.
    std::uint64_t copy_tail() {
      auto& s = *sketch_;
      const sync::MutexLock lock(s.tail_mu_);
      const std::size_t n = s.tail_.size();
      QC_INJECT_OOM(querier_copy_alloc);
      tail_buf_.resize(n);
      if (n != 0) std::memcpy(tail_buf_.data(), s.tail_.data(), n * sizeof(T));
      return s.tail_version_.load(std::memory_order_relaxed);
    }

    // Assembles the run list (level slots ascending, then the tail) and
    // merges it into the summary.  The run order is deterministic, and the
    // merge breaks ties by run index, so incremental and full refreshes of
    // the same snapshot produce identical summaries.
    void build(Tritmap tm, bool runs_may_be_torn) {
      auto& s = *sketch_;
      const std::uint32_t k = s.opts_.k;
      std::sort(tail_buf_.begin(), tail_buf_.end(), s.cmp_);
      runs_.clear();
      for (std::uint32_t level = 1; level < top_level_; ++level) {
        const LevelCache& c = cache_[level];
        const std::uint32_t trit = std::min(c.copied, tm.trit(level));
        for (std::uint32_t slot = 0; slot < trit; ++slot) {
          runs_.push_back({c.runs.data() + static_cast<std::size_t>(slot) * k, k,
                           1ULL << level});
        }
      }
      if (!tail_buf_.empty()) runs_.push_back({tail_buf_.data(), tail_buf_.size(), 1});
      const auto span = std::span<const RunRef<T>>(runs_);
      if (runs_may_be_torn || sort_baseline_) {
        sort_merge_runs(span, summary_, sort_scratch_, s.cmp_);
      } else {
        merger_.merge(span, summary_, s.cmp_);
      }
      ++version_;
    }

    Quancurrent* sketch_;
    IbrSlotLease lease_;  // this handle's epoch announcement slot
    std::vector<LevelCache> cache_;
    std::uint32_t top_level_ = 0;
    std::vector<T> tail_buf_;
    std::vector<RunRef<T>> runs_;
    RunMerger<T, Compare> merger_;
    std::vector<std::pair<T, std::uint64_t>> sort_scratch_;
    WeightedSummary<T> summary_;
    std::uint64_t snap_seq_ = kNever;
    std::uint64_t snap_tail_ver_ = kNever;
    std::uint64_t holes_ = 0;
    std::uint64_t version_ = 0;
    bool sort_baseline_ = false;
  };

  Querier make_querier() { return Querier(*this); }

  // ----- unified public surface (the qc.hpp QuantileSketch concept) --------

  // Convenience single-threaded ingestion: routes through one internally
  // owned Updater.  NOT safe to call concurrently with itself or with the
  // convenience queries below; updaters/queriers made for other threads
  // remain fully concurrent alongside it.  Multi-threaded ingestion should
  // create one UpdaterHandle (qc.hpp) per thread instead.
  void update(const T& v) { self_updater().update(v); }
  void update(std::span<const T> vs) { self_updater().update(vs); }

  // Convenience queries: quiesce first (draining the convenience updater,
  // gather buffers, and the install queue), then answer from an internally
  // owned querier — so, like the sequential engine, a convenience query sees
  // every preceding convenience update with no relaxation window.  Because
  // they quiesce, these inherit quiesce()'s precondition: no concurrent
  // UpdaterHandles may be live (concurrent QuerierHandles are fine, and
  // remain the wait-free concurrent query surface).
  T quantile(double phi) { return self_querier().quantile(phi); }
  std::uint64_t rank(const T& v) { return self_querier().rank(v); }
  double cdf(const T& v) { return self_querier().cdf(v); }

  // ----- merge --------------------------------------------------------------

  // Folds this sketch's query-visible state into `target`: every installed
  // level run replays through target's install queue as an install_run()
  // (one ordinary publish each — target's concurrent updaters keep ingesting
  // and queriers on BOTH sketches stay wait-free, since the snapshot below
  // never blocks the query path), and the weight-1 tail is appended to
  // target's tail.  Requires equal k; returns false (and changes nothing) on
  // a k mismatch or self-merge.  Elements still in this sketch's local or
  // gather buffers are invisible to the merge, exactly as they are to
  // queries (bounded relaxation) — quiesce() first for an exact fold.
  //
  // Exception safety: may propagate bad_alloc.  From the snapshot phase
  // (the reserves below) nothing has been installed and the target is
  // untouched; from the install phase a PREFIX of the runs (and possibly
  // not the tail) has been folded — the target remains internally
  // consistent and answerable, but a blind retry would re-install that
  // prefix, so callers under memory pressure should retry into a fresh
  // target (the chaos suite's pattern).  Both sketches' latches are scoped
  // and cannot leak.
  bool merge_into(Quancurrent& target) const QC_EXCLUDES(latch_, target.latch_) {
    if (&target == this || target.opts_.k != opts_.k) return false;
    // Snapshot the installed ladder under the install latch: holding it
    // stops any publish AND any reclamation (only the latch holder touches
    // blocks), so reading through the slot pointers is safe and torn-free
    // without touching the query path.  Keep the hold short — it stalls
    // every installer: reserve from a pre-latch tritmap guess and retry in
    // the unlikely event the ladder grew past it meanwhile.
    std::vector<T> run_items;
    std::vector<std::uint32_t> run_levels;
    const auto count_runs = [](Tritmap tm) {
      std::size_t runs = 0;
      const std::uint32_t top = tm.num_levels();
      for (std::uint32_t level = 1; level < top; ++level) runs += tm.trit(level);
      return runs;
    };
    for (;;) {
      // +4: headroom for installs cascading new levels while unlatched.
      // All allocation happens HERE, outside the latch: a bad_alloc (real or
      // injected) propagates with no latch held and nothing installed.
      const std::size_t reserved =
          std::min<std::size_t>(count_runs(tritmap_.load(std::memory_order_acquire)) + 4,
                                2 * kLevels);
      QC_INJECT_OOM(merge_alloc);
      run_items.reserve(reserved * opts_.k);
      run_levels.reserve(reserved);
      const LatchGuard guard(*this);
      const Tritmap tm = tritmap_.load(std::memory_order_acquire);
      if (count_runs(tm) > reserved) {
        continue;  // ladder outgrew the guess; re-reserve and retry
      }
      const std::uint32_t top = tm.num_levels();
      for (std::uint32_t level = 1; level < top; ++level) {
        for (std::uint32_t slot = 0; slot < tm.trit(level); ++slot) {
          const T* src = slot_ptr(level, slot);
          // qc-lint-allow(no-alloc-under-latch): capacity reserved above,
          // outside the latch; the retry loop guarantees it suffices.
          run_items.insert(run_items.end(), src, src + opts_.k);
          // qc-lint-allow(no-alloc-under-latch): same pre-reserve.
          run_levels.push_back(level);
        }
      }
      break;
    }
    std::vector<T> tail_copy;
    {
      const sync::MutexLock lock(tail_mu_);
      tail_copy = tail_;
    }
    for (std::size_t i = 0; i < run_levels.size(); ++i) {
      target.install_run(run_levels[i],
                         std::span<const T>(
                             run_items.data() + i * static_cast<std::size_t>(opts_.k),
                             opts_.k));
    }
    if (!tail_copy.empty()) target.push_tail(tail_copy.data(), tail_copy.size());
    return true;
  }

  // ----- binary serde -------------------------------------------------------

  // Bytes serialize() will emit for the current query-visible state.
  std::size_t serialized_size() const QC_EXCLUDES(latch_) {
    serde::Writer counter;
    write_payload(counter);
    return counter.bytes();
  }

  // Writes the versioned binary image (see serde/binary.hpp) into `out`;
  // returns the bytes written, or 0 when `out` is too small.  The image is
  // the query-visible state — installed ladder plus tail — so, like a
  // query, it excludes elements still in local/gather buffers; quiesce()
  // first to capture everything.  Safe against concurrent queriers; under
  // concurrent ingestion the image is a consistent point-in-time snapshot
  // (taken under the install latch, off the query path).
  std::size_t serialize(std::span<std::byte> out) const QC_EXCLUDES(latch_) {
    serde::Writer w(out);
    write_payload(w);
    return w.ok() ? w.bytes() : 0;
  }

  // Reconstructs a sketch from serialize()'s image; null on any malformed
  // input, with the precise reason in *status when provided.  The result
  // answers bit-identically to the source's query-visible summary and
  // resumes the source's compaction coin sequence.
  static std::unique_ptr<Quancurrent> deserialize(std::span<const std::byte> in,
                                                  serde::Status* status = nullptr) {
    serde::Reader r(in);
    const serde::Status hs = serde::read_header(r, serde::Engine::concurrent,
                                                static_cast<std::uint8_t>(sizeof(T)));
    if (hs != serde::Status::ok) {
      serde::set_status(status, hs);
      return nullptr;
    }
    Options o;
    std::uint8_t presort = 0;
    std::uint8_t stats = 0;
    std::uint8_t serprop = 0;
    std::array<std::uint64_t, 4> rng_state{};
    std::uint64_t tritmap_raw = 0;
    if (!r.get(o.k) || !r.get(o.b) || !r.get(o.rho) || !r.get(presort) ||
        !r.get(stats) || !r.get(o.install_combine) || !r.get(o.install_queue) ||
        !r.get(serprop) || !r.get(o.ibr_epoch_freq) || !r.get(o.ibr_recl_freq) ||
        !r.get(o.ibr_retire_cap) || !r.get(o.latch_watchdog_ns) ||
        !r.get(o.seed) || !r.get(o.topology.nodes) ||
        !r.get(o.topology.threads_per_node) || !r.get(rng_state) ||
        !r.get(tritmap_raw)) {
      serde::set_status(status, serde::Status::short_buffer);
      return nullptr;
    }
    o.presort_chunks = presort != 0;
    o.collect_stats = stats != 0;
    o.serialize_propagation = serprop != 0;
    if (o.k < 2 || o.rho == 0 || o.topology.nodes == 0 ||
        !Options(o).validate().empty()) {
      // The image echoes normalized Options; anything normalize() would
      // still rewrite cannot have come from serialize().
      serde::set_status(status, serde::Status::bad_payload);
      return nullptr;
    }
    const Tritmap tm(tritmap_raw);
    if (tm.trit(0) != 0) {
      serde::set_status(status, serde::Status::bad_payload);
      return nullptr;
    }
    for (std::uint32_t level = 0; level < kLevels; ++level) {
      // Every published tritmap has all trits <= 1: a cascade always
      // compacts a filled (trit 2) level before publishing.  A crafted 2
      // would make a later ingest cascade write past the two slots, so it is
      // as malformed as the encoding-invalid 3.
      if (tm.trit(level) > 1) {
        serde::set_status(status, serde::Status::bad_payload);
        return nullptr;
      }
    }
    // Allocation-budget pre-check.  The elastic ladder no longer
    // preallocates, but install-queue cells and gather buffers are still
    // 2k-item arrays (and the tail reserve matches the gather footprint), so
    // a crafted image pairing near-maximal options with a near-empty payload
    // used to demand gigabytes inside the constructor before the first
    // payload byte was read — on overcommitting kernels an OOM kill, not a
    // catchable bad_alloc.  A genuine image whose fixed footprint exceeds
    // the budget floor carries a payload in some proportion to it (it was
    // serialized by a process that could afford the sketch); demand that
    // proportion of the remaining bytes before constructing anything.
    const std::uint64_t implied_bytes =
        (static_cast<std::uint64_t>(o.install_queue) +
         2ull * o.topology.nodes * o.rho) *
        (2ull * o.k) * sizeof(T);
    if (implied_bytes > kDeserializeBudgetFloor &&
        implied_bytes / kDeserializeBudgetSlack > r.remaining()) {
      serde::set_status(status, serde::Status::bad_payload);
      return nullptr;
    }
    // The allocations below are bounded by the budget check (plus at most
    // one level block past a truncated payload), but a malformed input must
    // still yield nullptr, never an escaping bad_alloc (the documented
    // contract).
    std::unique_ptr<Quancurrent> sk;
    try {
      QC_INJECT_OOM(deserialize_alloc);
      sk = std::make_unique<Quancurrent>(o);
      {
        // The sketch is private to this frame, but alloc_block / rng_ /
        // epoch_counter_ are latch-guarded state and the thread-safety
        // analysis (rightly) has no notion of "not published yet" — hold the
        // uncontended latch so the rebuild obeys the same discipline the
        // live paths are checked against.
        const LatchGuard guard(*sk);
        sk->rng_.set_state(rng_state);
        const std::uint32_t top = tm.num_levels();
        for (std::uint32_t level = 1; level < top; ++level) {
          for (std::uint32_t slot = 0; slot < tm.trit(level); ++slot) {
            LevelBlock* blk = sk->alloc_block();
            // Store before reading the payload: on any failure below the
            // sketch's destructor owns the block.
            sk->slot_block(level, slot).store(blk, std::memory_order_relaxed);
            if (!r.get_bytes(blk->items.data(), sk->opts_.k * sizeof(T))) {
              serde::set_status(status, serde::Status::short_buffer);
              return nullptr;
            }
            // Published runs are sorted by construction, and everything
            // downstream trusts that (the query merge, and install_run when
            // this sketch is later merged).  A crafted unsorted run is as
            // malformed as a bad trit — reject it here, where the bytes are
            // already cache-hot, instead of serving garbage quantiles.
            if (!std::is_sorted(blk->items.begin(), blk->items.end(), sk->cmp_)) {
              serde::set_status(status, serde::Status::bad_payload);
              return nullptr;
            }
          }
          if (tm.trit(level) != 0) {
            sk->level_epoch_[level].store(++sk->epoch_counter_,
                                          std::memory_order_relaxed);
          }
        }
      }
      std::uint64_t tail_count = 0;
      if (!r.get(tail_count)) {
        serde::set_status(status, serde::Status::short_buffer);
        return nullptr;
      }
      // Division, not multiplication: a crafted tail_count must not overflow
      // the bounds check and reach the resize below.
      if (tail_count > r.remaining() / sizeof(T)) {
        serde::set_status(status, serde::Status::short_buffer);
        return nullptr;
      }
      {
        // Same discipline as the ladder rebuild above: tail_ is guarded.
        const sync::MutexLock lock(sk->tail_mu_);
        sk->tail_.resize(static_cast<std::size_t>(tail_count));
        if (!r.get_bytes(sk->tail_.data(), sk->tail_.size() * sizeof(T))) {
          serde::set_status(status, serde::Status::short_buffer);
          return nullptr;
        }
      }
      sk->tail_size_.store(tail_count, std::memory_order_relaxed);
    } catch (const std::bad_alloc&) {
      serde::set_status(status, serde::Status::bad_payload);
      return nullptr;
    }
    sk->tail_version_.store(1, std::memory_order_relaxed);
    sk->tritmap_.store(tm, std::memory_order_release);
    serde::set_status(status, serde::Status::ok);
    return sk;
  }

 private:
  friend class Updater;
  friend class Querier;

  static constexpr std::uint32_t kLevels = Tritmap::kMaxLevels;

  // deserialize()'s allocation-budget heuristic: images whose options imply
  // more than kDeserializeBudgetFloor bytes of fixed preallocation must
  // carry at least 1/kDeserializeBudgetSlack of it as actual payload.
  static constexpr std::uint64_t kDeserializeBudgetFloor = 1ull << 30;
  static constexpr std::uint64_t kDeserializeBudgetSlack = 4096;

  // One Gather&Sort buffer.  All three counters are monotonic: reservation
  // position p belongs to ordinal p / cap, and a buffer serves ordinal o only
  // once `ordinal` has advanced to o.  merger/sort_aux are owner-only
  // scratch: exactly one owner exists per buffer at a time (the next
  // ordinal's owner cannot finish committing before the current owner
  // reopens the ordinal, and the current owner stops touching the scratch
  // before reopening).
  struct Gather {
    explicit Gather(std::uint64_t cap) : slots(cap) {}
    alignas(64) std::atomic<std::uint64_t> reserved{0};
    alignas(64) std::atomic<std::uint64_t> committed{0};
    alignas(64) std::atomic<std::uint64_t> ordinal{0};
    std::vector<T> slots;
    std::vector<T> sort_aux;           // full-sort fallback radix scratch
    ChunkMerger<T, Compare> merger;    // chunk-merge Gather&Sort
  };

  // One cell of the bounded MPSC install hand-off queue (Vyukov-style ticket
  // ring).  For ticket position p, `seq` moves p (free, producer may claim)
  // -> p + 1 (filled with a sorted 2k batch, drainer may install) -> p + Q
  // (free for the next lap).  Producers claim tickets with an F&A on
  // install_tail_; only the latch holder advances install_head_.
  struct InstallCell {
    alignas(64) std::atomic<std::uint64_t> seq{0};
    std::vector<T> items;      // cap_ sorted items (first k when level > 0)
    std::uint32_t level = 0;   // 0 = weight-1 2k batch; L > 0 = one k-run
                               // entering the ladder at level L (merge path)
  };

  struct Node {
    Node(std::uint32_t rho, std::uint64_t cap) {
      bufs.reserve(rho);
      for (std::uint32_t i = 0; i < rho; ++i) bufs.push_back(std::make_unique<Gather>(cap));
    }
    alignas(64) std::atomic<std::uint64_t> cur{0};  // generation hint for writers
    std::vector<std::unique_ptr<Gather>> bufs;
  };

  // Out-of-range (level, slot) would index past slot_blocks_ — memory
  // safety, so QC_CHECK, not assert (common/check.hpp policy).
  std::atomic<LevelBlock*>& slot_block(std::uint32_t level, std::uint32_t slot) {
    QC_CHECK(level < kLevels && slot < 2, "level slot index out of ladder range");
    return slot_blocks_[static_cast<std::size_t>(level) * 2 + slot];
  }

  const std::atomic<LevelBlock*>& slot_block(std::uint32_t level,
                                             std::uint32_t slot) const {
    QC_CHECK(level < kLevels && slot < 2, "level slot index out of ladder range");
    return slot_blocks_[static_cast<std::size_t>(level) * 2 + slot];
  }

  // Writer-side view of a published slot's items; callers hold latch_, so
  // the block cannot be retired (let alone reclaimed) underneath them.
  // Queriers never use this — they take epoch-protected slot_block()
  // pointer snapshots instead.
  T* slot_ptr(std::uint32_t level, std::uint32_t slot) QC_REQUIRES(latch_) {
    LevelBlock* b = slot_block(level, slot).load(std::memory_order_relaxed);
    QC_CHECK(b != nullptr, "dereferencing an unpublished level slot");
    return b->items.data();
  }

  const T* slot_ptr(std::uint32_t level, std::uint32_t slot) const QC_REQUIRES(latch_) {
    const LevelBlock* b = slot_block(level, slot).load(std::memory_order_relaxed);
    QC_CHECK(b != nullptr, "dereferencing an unpublished level slot");
    return b->items.data();
  }

  // ----- install latch: timed, watchdogged acquisition ----------------------
  // Every hold of latch_ goes through these helpers so hold time is always
  // observable (stats().latch_holds / latch_max_hold_ns /
  // latch_current_hold_ns) and a hold longer than Options::latch_watchdog_ns
  // is counted (latch_watchdog_trips) — a wedged or preempted holder shows
  // up in counters any thread can read, not just in a stuck flame graph.

  static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  bool try_acquire_latch() const QC_TRY_ACQUIRE(true, latch_) QC_NO_THREAD_SAFETY_ANALYSIS {
    if (latch_.flag.test_and_set(std::memory_order_acquire)) return false;
    latch_since_ns_.store(now_ns(), std::memory_order_relaxed);
    return true;
  }

  void acquire_latch() const QC_ACQUIRE(latch_) QC_NO_THREAD_SAFETY_ANALYSIS {
    Backoff backoff;
    while (latch_.flag.test_and_set(std::memory_order_acquire)) backoff.spin();
    latch_since_ns_.store(now_ns(), std::memory_order_relaxed);
  }

  void release_latch() const QC_RELEASE(latch_) QC_NO_THREAD_SAFETY_ANALYSIS {
    const std::uint64_t held = now_ns() - latch_since_ns_.load(std::memory_order_relaxed);
    latch_since_ns_.store(0, std::memory_order_relaxed);
    stat_latch_holds_.fetch_add(1, std::memory_order_relaxed);
    stat_latch_hold_ns_.fetch_add(held, std::memory_order_relaxed);
    std::uint64_t seen = stat_latch_max_hold_ns_.load(std::memory_order_relaxed);
    while (seen < held && !stat_latch_max_hold_ns_.compare_exchange_weak(
                              seen, held, std::memory_order_relaxed)) {
    }
    if (opts_.latch_watchdog_ns != 0 && held > opts_.latch_watchdog_ns) {
      stat_watchdog_trips_.fetch_add(1, std::memory_order_relaxed);
    }
    latch_.flag.clear(std::memory_order_release);
  }

  // Scoped hold for the paths that may throw under the latch (quiesce's
  // retirement bookkeeping, merge snapshots): "the latch never leaks" is a
  // failure-model guarantee, not a convention.
  struct QC_SCOPED_CAPABILITY LatchGuard {
    explicit LatchGuard(const Quancurrent& s) QC_ACQUIRE(s.latch_) : s_(s) {
      s_.acquire_latch();
    }
    LatchGuard(const LatchGuard&) = delete;
    LatchGuard& operator=(const LatchGuard&) = delete;
    ~LatchGuard() QC_RELEASE() { s_.release_latch(); }
    const Quancurrent& s_;
  };

  // ----- IBR: allocation, retirement, reclamation (latch_ held throughout,
  // except acquire_ibr_slot which is lock-free) -----------------------------

  // Hands out a block to fill: reuse pool first (proven-safe blocks, no
  // allocator traffic), `new` otherwise.  Advances the global reclamation
  // epoch every ibr_epoch_freq allocations and stamps the block's birth.
  LevelBlock* alloc_block() QC_REQUIRES(latch_) {
    LevelBlock* b;
    if (!free_blocks_.empty()) {
      b = free_blocks_.back();
      free_blocks_.pop_back();
      ibr_reused_.fetch_add(1, std::memory_order_relaxed);
    } else {
      QC_INJECT_OOM(level_block_alloc);
      // qc-lint-allow(no-alloc-under-latch): THE staging allocation site —
      // only reachable via prepare_cascade/deserialize, where a bad_alloc is
      // handled before anything is published (two-phase cascade contract).
      b = new LevelBlock(opts_.k);
      ibr_allocated_.fetch_add(1, std::memory_order_relaxed);
    }
    if (++allocs_since_epoch_ >= opts_.ibr_epoch_freq) {
      allocs_since_epoch_ = 0;
      ibr_epoch_.fetch_add(1, std::memory_order_seq_cst);
      ibr_epochs_.fetch_add(1, std::memory_order_relaxed);
    }
    b->birth_epoch = ibr_epoch_.load(std::memory_order_relaxed);
    b->retire_epoch = 0;
    return b;
  }

  // Publishes a fully written block at (level, slot) and retires the block
  // it displaces.  The seq_cst store participates in the reclamation-safety
  // total order: a querier that announced its epoch before loading this
  // pointer is guaranteed visible to any scan that could free the displaced
  // block (file comment, IBR).
  void publish_slot(std::uint32_t level, std::uint32_t slot, LevelBlock* nb)
      QC_REQUIRES(latch_) {
    auto& ref = slot_block(level, slot);
    LevelBlock* old = ref.load(std::memory_order_relaxed);
    ref.store(nb, std::memory_order_seq_cst);
    if (old != nullptr) retire_block(old);
  }

  // Moves a displaced block onto the retire list, stamped with the current
  // epoch; runs a reclamation scan every ibr_recl_freq retirements.
  void retire_block(LevelBlock* b) QC_REQUIRES(latch_) {
    b->retire_epoch = ibr_epoch_.load(std::memory_order_relaxed);
    // qc-lint-allow(no-alloc-under-latch): no-throw in practice — capacity is
    // pre-reserved by prepare_cascade / quiesce before any retirement burst.
    retired_.push_back(b);
    ibr_retired_.fetch_add(1, std::memory_order_relaxed);
    retire_list_len_.store(retired_.size(), std::memory_order_relaxed);
    if (retired_.size() > ibr_peak_unreclaimed_.load(std::memory_order_relaxed)) {
      ibr_peak_unreclaimed_.store(retired_.size(), std::memory_order_relaxed);
    }
    if (++retires_since_scan_ >= opts_.ibr_recl_freq) {
      retires_since_scan_ = 0;
      ibr_scan();
    }
  }

  // The oldest epoch any handle currently announces (kIdleEpoch when all
  // are idle).  The announcement loads are seq_cst, like the announce
  // stores and the caller's unpublishing pointer stores: in the seq_cst
  // total order every reader either announced before this sweep reads its
  // slot (the sweep sees the announcement) or announced after the unpublish
  // (its subsequent seq_cst pointer load cannot return the retired block) —
  // exactly the dichotomy the free rule in ibr_scan needs.  (A seq_cst
  // fence + relaxed loads would do the same, but GCC's -Wtsan rejects
  // fences under -fsanitize=thread, and scans are rare enough not to care.)
  // No latch requirement: reads only atomics (ibr_stats() sweeps it lock-free
  // too); the free rule in ibr_scan is what needs the latch, not this sweep.
  std::uint64_t min_announced_epoch() const {
    std::uint64_t min_e = kIdleEpoch;
    for (IbrSlotChunk* c = ibr_chunks_.load(std::memory_order_acquire);
         c != nullptr; c = c->next.load(std::memory_order_acquire)) {
      for (const IbrSlot& s : c->slots) {
        const std::uint64_t e = s.announced.load(std::memory_order_seq_cst);
        if (e < min_e) min_e = e;
      }
    }
    return min_e;
  }

  // Reclamation scan: free every retired block whose retire epoch precedes
  // all announced epochs.  A reader holding a pointer into block B announced
  // an epoch a <= B's retire stamp r (it announced before loading the
  // pointer, and the pointer was unpublished before r was stamped), so
  // r < min_announced implies no reader can still hold B.  This is the
  // conservative epoch rule of interval-based reclamation — the birth/retire
  // interval tags support the finer overlap rule, but the conservative one
  // already bounds the retire list by the scan cadence.
  void ibr_scan() QC_REQUIRES(latch_) {
    ibr_scans_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t min_e = min_announced_epoch();
    std::size_t kept = 0;
    for (LevelBlock* b : retired_) {
      if (b->retire_epoch < min_e) {
        if (free_blocks_.size() < kFreeListCap) {
          // qc-lint-allow(no-alloc-under-latch): bounded by kFreeListCap and
          // pool capacity is warmed by the first scans; never on the hot path.
          free_blocks_.push_back(b);
        } else {
          delete b;
          ibr_freed_.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        retired_[kept++] = b;
      }
    }
    ibr_reclaimed_.fetch_add(retired_.size() - kept, std::memory_order_relaxed);
    // qc-lint-allow(no-alloc-under-latch): kept <= size(), so this resize
    // only shrinks — libstdc++ never reallocates on a downward resize.
    retired_.resize(kept);
    retire_list_len_.store(kept, std::memory_order_relaxed);
    // degraded_ is NOT cleared here: the flag marks a throttle episode, and
    // only enforce_retire_cap (its sole setter, below) knows when the
    // episode actually ends — a scan inside its wait loop can shrink the
    // list just under the cap while ingest is still blocked, and clearing
    // then would make the flag flicker invisible to observers.
  }

  // Bounded-memory response to stalled readers (Options::ibr_retire_cap):
  // refuses to let the retire list exceed the cap.  Called from
  // prepare_cascade with the cascade's worst-case retirement count, under
  // the latch, BEFORE anything is published.  A forced scan is cheap; when
  // scanning cannot help — some reader really is parked mid-snapshot —
  // ingest throttles HERE until the reader unpins, so retired memory stays
  // <= cap blocks instead of growing without bound.  Queriers never take
  // the latch and are unaffected; producers feel it as install-queue
  // backpressure.  The wait is observable: ibr_stats().degraded flips true
  // for the episode, throttle_waits counts episodes, forced_scans counts
  // every off-cadence scan, and the latch watchdog times the hold.
  void enforce_retire_cap(std::uint32_t upcoming) QC_REQUIRES(latch_) {
    const std::uint32_t cap = opts_.ibr_retire_cap;
    if (cap == 0 || retired_.size() + upcoming <= cap) return;
    ibr_forced_scans_.fetch_add(1, std::memory_order_relaxed);
    ibr_scan();
    if (retired_.size() + upcoming <= cap) return;
    degraded_.store(true, std::memory_order_relaxed);
    ibr_throttle_waits_.fetch_add(1, std::memory_order_relaxed);
    Backoff backoff;
    while (retired_.size() + upcoming > cap) {
      backoff.spin();
      ibr_forced_scans_.fetch_add(1, std::memory_order_relaxed);
      ibr_scan();
    }
    // The flag spans the whole episode — set before the first wait, cleared
    // only here once ingest can proceed — so observers polling ibr_stats()
    // see one stable degraded=true window per throttle, however many scans
    // it took.
    degraded_.store(false, std::memory_order_relaxed);
  }

  // ----- two-phase cascade staging (latch_ held throughout) ----------------

  // Phase one: SIMULATE the cascade apply_cascade would run from `tm` (the
  // same tritmap transitions, no slot writes), count the blocks it publishes,
  // enforce the retire cap against that worst-case retirement burst, and
  // stage every allocation in stash_.  All throwing work happens here,
  // BEFORE anything becomes visible: on bad_alloc the staged blocks return
  // to the pool and the caller defers the batch.  Returns false iff the
  // staging allocations failed.
  bool prepare_cascade(Tritmap tm, std::uint32_t entry_level) QC_REQUIRES(latch_) {
    std::uint32_t blocks = 0;
    std::uint32_t level = entry_level;
    if (entry_level == 0) {
      tm = tm.after_batch_update();
    } else {
      ++blocks;  // the entry-level k-run publication
      tm = tm.with_trit(entry_level, tm.trit(entry_level) + 1);
    }
    while (tm.trit(level) == 2) {
      const std::uint32_t dest_level = level + 1;
      if (dest_level >= kLevels) {
        // Reaching here needs ~k * 2^33 elements; fail fast — and before a
        // single slot write is staged — rather than corrupt the heap.
        std::fprintf(stderr, "qc::Quancurrent: level ladder exhausted (k=%u too small "
                             "for this stream length)\n", opts_.k);
        std::abort();
      }
      ++blocks;
      tm = tm.after_install_propagation(level);
      level = dest_level;
    }
    // Each publication retires at most the one block it displaces, so
    // `blocks` bounds the retirement burst.  The cap check runs before any
    // allocation: a degraded throttle never sits on staged blocks.
    enforce_retire_cap(blocks);
    try {
      // Pre-reserving the retire list makes retire_block's push_back during
      // the apply no-throw; stash_ itself was reserved at construction
      // (kLevels + 1 >= any cascade's block count).
      // qc-lint-allow(no-alloc-under-latch): this IS the pre-reserve phase —
      // all throwing work happens here, before anything is published, and a
      // bad_alloc unwinds to release_stash with shared state untouched.
      retired_.reserve(retired_.size() + blocks);
      // qc-lint-allow(no-alloc-under-latch): stash_ capacity reserved at
      // construction (kLevels + 1); alloc_block is the audited staging site.
      while (stash_.size() < blocks) stash_.push_back(alloc_block());
    } catch (const std::bad_alloc&) {
      release_stash();
      return false;
    }
    return true;
  }

  // Hands apply_cascade its next pre-staged block; underflow means the
  // simulation and the application disagreed — a logic bug that would
  // otherwise turn into an allocation (and a possible throw) mid-publication.
  LevelBlock* take_block() QC_REQUIRES(latch_) {
    QC_CHECK(!stash_.empty(), "cascade consumed more blocks than its simulation staged");
    LevelBlock* b = stash_.back();
    stash_.pop_back();
    return b;
  }

  // Returns staged blocks nobody will consume (a failed prepare) to the
  // reuse pool, allocator-bound overflow freed.  The accounting stays
  // consistent: pooled blocks count as live until quiesce flushes the pool.
  void release_stash() QC_REQUIRES(latch_) {
    for (LevelBlock* b : stash_) {
      if (free_blocks_.size() < kFreeListCap) {
        // qc-lint-allow(no-alloc-under-latch): bounded pool, same rationale
        // as the ibr_scan free-list push.
        free_blocks_.push_back(b);
      } else {
        delete b;
        ibr_freed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    stash_.clear();
  }

  // Claims a free announcement slot, growing the chunk list when none is
  // free.  Lock-free; called once per handle construction.
  IbrSlot* acquire_ibr_slot() {
    for (IbrSlotChunk* c = ibr_chunks_.load(std::memory_order_acquire);
         c != nullptr; c = c->next.load(std::memory_order_acquire)) {
      for (IbrSlot& s : c->slots) {
        if (!s.in_use.load(std::memory_order_relaxed)) {
          bool expected = false;
          if (s.in_use.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
            return &s;
          }
        }
      }
    }
    auto* fresh = new IbrSlotChunk;
    fresh->slots[0].in_use.store(true, std::memory_order_relaxed);
    IbrSlotChunk* head = ibr_chunks_.load(std::memory_order_relaxed);
    do {
      fresh->next.store(head, std::memory_order_relaxed);
    } while (!ibr_chunks_.compare_exchange_weak(head, fresh,
                                                std::memory_order_acq_rel));
    return &fresh->slots[0];
  }

  // Emits the serde image; shared by serialize() and serialized_size() (the
  // latter passes a measuring writer), so the two can never disagree.
  void write_payload(serde::Writer& w) const QC_EXCLUDES(latch_) {
    serde::write_header(w, serde::Engine::concurrent,
                        static_cast<std::uint8_t>(sizeof(T)));
    w.put(opts_.k);
    w.put(opts_.b);
    w.put(opts_.rho);
    w.put(static_cast<std::uint8_t>(opts_.presort_chunks ? 1 : 0));
    w.put(static_cast<std::uint8_t>(opts_.collect_stats ? 1 : 0));
    w.put(opts_.install_combine);
    w.put(opts_.install_queue);
    w.put(static_cast<std::uint8_t>(opts_.serialize_propagation ? 1 : 0));
    w.put(opts_.ibr_epoch_freq);
    w.put(opts_.ibr_recl_freq);
    w.put(opts_.ibr_retire_cap);
    w.put(opts_.latch_watchdog_ns);
    w.put(opts_.seed);
    w.put(opts_.topology.nodes);
    w.put(opts_.topology.threads_per_node);
    {
      // Freeze publication while the ladder (and the parity rng installs
      // mutate) is imaged: only the latch holder writes either, and queriers
      // never take the latch, so the query path is unaffected.  Scoped so
      // the latch cannot leak (Writer::put never throws).
      const LatchGuard guard(*this);
      w.put(rng_.state());
      const Tritmap tm = tritmap_.load(std::memory_order_acquire);
      w.put(tm.raw());
      const std::uint32_t top = tm.num_levels();
      for (std::uint32_t level = 1; level < top; ++level) {
        for (std::uint32_t slot = 0; slot < tm.trit(level); ++slot) {
          w.put_bytes(slot_ptr(level, slot), opts_.k * sizeof(T));
        }
      }
    }
    const sync::MutexLock lock(tail_mu_);
    w.put(static_cast<std::uint64_t>(tail_.size()));
    w.put_bytes(tail_.data(), tail_.size() * sizeof(T));
  }

  Updater& self_updater() {
    if (self_updater_ == nullptr) self_updater_ = std::make_unique<Updater>(*this, 0);
    return *self_updater_;
  }

  Querier& self_querier() {
    quiesce();  // drains the convenience updater too
    if (self_querier_ == nullptr) self_querier_ = std::make_unique<Querier>(*this);
    self_querier_->refresh();
    return *self_querier_;
  }

  // Moves a full local buffer into the node's gather buffer; the committer of
  // the final slot becomes the batch owner and runs Gather&Sort (a multiway
  // merge of the buffer's pre-sorted b-chunks straight into an install-queue
  // cell), reopens the ordinal, and hands the batch to the combining
  // installer.
  void flush_chunk(std::uint32_t node_idx, const T* items, std::uint32_t count,
                   IbrSlot* slot = nullptr) QC_EXCLUDES(latch_) {
    // Updater-side epoch announcement (relaxed): a flush can end up holding
    // the install latch and touching blocks, but the latch already excludes
    // the reclaimer, so this is defense-in-depth that also keeps the
    // abl_reclamation accounting honest about writer-side read regions.  A
    // stale announcement only delays reclamation — the safe direction.
    //
    // CRITICAL: the announcement must be CLEARED before every wait in this
    // function (the ordinal wait, acquire_cell, drain_until).  A parked
    // producer holding a pinned epoch would deadlock against the retire-cap
    // throttle: the latch holder waits for all pins to advance while the
    // producer waits for the latch holder to drain.  Clearing is safe — the
    // waits touch no level blocks (gather slots and install cells are
    // sketch-owned arrays, not IBR-managed blocks).
    const auto unpin = [slot] {
      if (slot != nullptr) {
        slot->announced.store(kIdleEpoch, std::memory_order_relaxed);
      }
    };
    if (slot != nullptr) {
      slot->announced.store(ibr_epoch_.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    Node& node = *nodes_[node_idx];
    const std::uint64_t gen = node.cur.load(std::memory_order_acquire);
    Gather& gb = *node.bufs[gen % opts_.rho];
    const std::uint64_t pos = gb.reserved.fetch_add(count, std::memory_order_acq_rel);
    // Chaos builds: preempt the writer between its reservation and its
    // commit — the delayed-thread scenario behind the paper's hole analysis.
    QC_INJECT_STALL(gather_stall);
    const std::uint64_t ord = pos / cap_;
    const std::uint64_t off = pos % cap_;
    if (gb.ordinal.load(std::memory_order_acquire) != ord) {
      // We reserved into a future generation of this buffer: steer other
      // writers to the next buffer, then wait for our ordinal to open.
      std::uint64_t expected = gen;
      node.cur.compare_exchange_strong(expected, gen + 1, std::memory_order_acq_rel);
      if (opts_.collect_stats) {
        stat_gather_waits_.fetch_add(1, std::memory_order_relaxed);
      }
      unpin();  // the owner we wait on may itself be throttled (see above)
      Backoff backoff;
      while (gb.ordinal.load(std::memory_order_acquire) != ord) backoff.spin();
    }
    std::copy_n(items, count, gb.slots.data() + off);
    const std::uint64_t done =
        gb.committed.fetch_add(count, std::memory_order_acq_rel) + count;
    if (done == (ord + 1) * cap_) {
      // Owner: every slot of this ordinal is committed.  Point writers at the
      // next buffer, build the sorted batch in an install cell, reopen the
      // ordinal (ingestion into this buffer resumes immediately), then see
      // the batch through the combining installer.
      std::uint64_t expected = gen;
      node.cur.compare_exchange_strong(expected, gen + 1, std::memory_order_acq_rel);
      // Ablation arm (§5.5, abl_propagation): serialize every owner duty —
      // batch formation, install enqueue, and the propagation drain — behind
      // one global lock, emulating FCDS's single propagation thread.  The
      // holder drains its own batch via drain_until, so the lock cannot
      // deadlock against the queue's backpressure.
      std::unique_lock<std::mutex> serialized;
      if (opts_.serialize_propagation) {
        serialized = std::unique_lock<std::mutex>(prop_mu_);
      }
      unpin();  // acquire_cell and drain_until both park (see above)
      const std::uint64_t cell_pos = acquire_cell();
      InstallCell& cell = install_q_[cell_pos & (opts_.install_queue - 1)];
      cell.level = 0;
      if (presort_) {
        gb.merger.merge(std::span<const T>(gb.slots.data(), cap_), opts_.b,
                        std::span<T>(cell.items.data(), cap_), cmp_);
      } else {
        batch_sort(std::span<T>(gb.slots), gb.sort_aux, cmp_);
        std::memcpy(cell.items.data(), gb.slots.data(), cap_ * sizeof(T));
      }
      gb.ordinal.store(ord + 1, std::memory_order_release);
      cell.seq.store(cell_pos + 1, std::memory_order_release);
      drain_until(cell_pos);
    }
    unpin();
  }

  // Claims the next install-queue ticket and waits (backpressure) until its
  // cell is free.  The wait can only be on a cell still holding a batch from
  // the previous lap, whose producer is parked in drain_until() and will
  // drain it, so progress is guaranteed.
  std::uint64_t acquire_cell() QC_EXCLUDES(latch_) {
    // Chaos builds: delay the producer as if the ring were full, driving the
    // backpressure wait below without needing a real slow drainer.
    QC_INJECT_STALL(install_queue_full);
    const std::uint64_t pos = install_tail_.fetch_add(1, std::memory_order_acq_rel);
    InstallCell& cell = install_q_[pos & (opts_.install_queue - 1)];
    if (cell.seq.load(std::memory_order_acquire) != pos) {
      // Full ring: this producer is feeling backpressure.  Counted always
      // (not just under collect_stats) — it is the signal that update
      // throughput is drain-bound, part of the documented failure model.
      stat_queue_full_waits_.fetch_add(1, std::memory_order_relaxed);
      Backoff backoff;
      while (cell.seq.load(std::memory_order_acquire) != pos) backoff.spin();
    }
    return pos;
  }

  // Enqueues a sorted 2k batch and sees it through installation; the
  // quiesce/tail path (no gather buffer involved) and tests use this.
  void install_batch(std::span<const T> sorted_batch) QC_EXCLUDES(latch_) {
    std::unique_lock<std::mutex> serialized;
    if (opts_.serialize_propagation) {
      serialized = std::unique_lock<std::mutex>(prop_mu_);
    }
    drain_until(enqueue_batch(sorted_batch));
  }

  // Waits until the batch at queue position `my_pos` is published, helping:
  // whenever the latch is free the caller takes it and drains a group.  An
  // owner whose batch is installed by another drainer returns without ever
  // holding the latch — that is the combining win under contention.
  void drain_until(std::uint64_t my_pos) QC_EXCLUDES(latch_) {
    Backoff backoff;
    for (;;) {
      if (install_head_.load(std::memory_order_acquire) > my_pos) return;
      if (try_acquire_latch()) {
        drain_group();
        release_latch();
      } else {
        if (opts_.collect_stats) {
          stat_latch_spins_.fetch_add(1, std::memory_order_relaxed);
        }
        backoff.spin();
      }
    }
  }

  // Drains up to install_combine ready batches (FIFO), applies all their
  // cascades against a private tritmap, and publishes the whole group with a
  // single tritmap CAS and a single net install_seq_ advance of 2.
  //
  // Caller must hold latch_.  The latch serializes drainers, and protects
  // exactly the pre-publication install state: the blocks being filled,
  // scratch_, rng_ (the parity coins), epoch_counter_ / level_epoch_,
  // install_head_, the tritmap_ CAS, and the install_seq_ advance — plus all
  // block allocation, retirement, and reclamation (alloc_block /
  // retire_block / ibr_scan are latch-holder-only).  The reuse pool keeps
  // the common case allocation-free; stats counters are relaxed atomics.
  //
  // Seqlock phase: the first batch of a group starts from the published
  // tritmap, so (like the old single-batch installer) it only writes slots
  // the published tritmap marks empty — invisible to queriers.  A LATER
  // batch of the same group can refill a level an earlier batch consumed,
  // rewriting a slot queriers may be copying; before the first such write
  // the group flips install_seq_ odd, and the final advance restores even
  // parity, so any query copy window overlapping a dangerous write fails
  // validation (see Querier::refresh_impl).
  void drain_group() QC_REQUIRES(latch_) {
    // Chaos builds: wedge the latch holder right here — producers park on the
    // ring, queriers keep answering from the published state, and the hold
    // must show up in latch_current_hold_ns / latch_watchdog_trips.
    QC_INJECT_STALL(latch_stall);
    const std::uint64_t start = install_head_.load(std::memory_order_relaxed);
    std::uint64_t head = start;
    Tritmap published = tritmap_.load(std::memory_order_relaxed);
    Tritmap tm = published;
    std::uint64_t steps = 0;
    bool seq_odd = false;
    while (head - start < opts_.install_combine) {
      InstallCell& cell = install_q_[head & (opts_.install_queue - 1)];
      if (cell.seq.load(std::memory_order_acquire) != head + 1) break;
      // Two-phase install (failure-model section of the file comment): first
      // SIMULATE the cascade and stage every block it will publish — all
      // allocation, and therefore all throwing, happens before a single slot
      // is written.  On OOM the cell stays parked in the ring, the group ends
      // at the prefix already applied, and the producer's drain_until retries
      // the install later: backpressure, never a torn publication or a lost
      // batch (stats().install_defers counts these).
      if (!prepare_cascade(tm, cell.level)) {
        stat_install_defers_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      const std::size_t cell_items = cell.level == 0 ? cap_ : opts_.k;
      tm = apply_cascade(tm, published,
                         std::span<const T>(cell.items.data(), cell_items),
                         cell.level, seq_odd, steps);
      QC_CHECK(stash_.empty(), "cascade simulation diverged from its application");
      // The cascade fully consumed the cell's items; free it for the next
      // lap before publishing so producers stall as little as possible.
      cell.seq.store(head + opts_.install_queue, std::memory_order_release);
      ++head;
    }
    if (head == start) return;
    const bool swapped = tritmap_.compare_exchange_strong(
        published, tm, std::memory_order_release, std::memory_order_relaxed);
    // Only the latch holder ever writes tritmap_; a failed CAS is not a race
    // to retry but a broken publication protocol — torn ladder state behind
    // it would mean wild slot reads, so fail loudly in every build.
    QC_CHECK(swapped, "tritmap changed under the install latch");
    // Net +2 per group keeps install_seq_ even outside dangerous write
    // phases; a group that flipped odd adds the second half here.
    install_seq_.fetch_add(seq_odd ? 1 : 2, std::memory_order_release);
    install_head_.store(head, std::memory_order_release);
    if (opts_.collect_stats) {
      const std::uint64_t drained = head - start;
      stat_batches_.fetch_add(drained, std::memory_order_relaxed);
      stat_propagations_.fetch_add(steps, std::memory_order_relaxed);
      stat_installs_.fetch_add(1, std::memory_order_relaxed);
      if (drained > 1) {
        stat_combined_installs_.fetch_add(1, std::memory_order_relaxed);
      }
      std::uint64_t seen = stat_max_combine_.load(std::memory_order_relaxed);
      while (seen < drained && !stat_max_combine_.compare_exchange_weak(
                                   seen, drained, std::memory_order_relaxed)) {
      }
    }
  }

  // Applies one install's full propagation cascade against the group-private
  // tritmap `tm`, writing level slots and epochs; returns the evolved
  // tritmap.  `entry_level` 0 is the ingest path: `items` is a sorted 2k
  // weight-1 batch that lands as level 0's two arrays and compacts upward.
  // `entry_level` L > 0 is the merge path: `items` is one sorted k-run that
  // drops into a free slot at level L (weight 2^L), cascading onward only if
  // that fills the level — so a merge replays another sketch's ladder
  // through the very same publication machinery.  `published` is the tritmap
  // queriers can currently see: writing a slot below its trit requires the
  // seqlock odd phase (entered lazily, at most once per group).  Caller must
  // hold latch_ and have run prepare_cascade(tm, entry_level) successfully:
  // every block consumed here comes from stash_ and the retire list is
  // pre-reserved, so this function NEVER THROWS — once the first slot write
  // lands, the cascade always runs to its tritmap CAS.
  Tritmap apply_cascade(Tritmap tm, Tritmap published, std::span<const T> items,
                        std::uint32_t entry_level, bool& seq_odd,
                        std::uint64_t& steps) QC_REQUIRES(latch_) {
    // Every cascade gets a fresh epoch so that two writes of the same
    // level within one group are distinguishable to querier run caches.
    const std::uint64_t epoch = ++epoch_counter_;
    std::span<const T> source = items;
    std::uint32_t level = entry_level;
    if (entry_level == 0) {
      // Level 0's two arrays exist only inside `items`; each cascade step
      // compacts a sorted 2k source into the free slot one level up.
      tm = tm.after_batch_update();
    } else {
      // A cascade always ends with no trit at 2, so the entry level has a
      // free slot; publish the k-run there and cascade only if it fills.
      const std::uint32_t dest_slot = tm.trit(entry_level);
      // A trit of 2 here would index past the slot pair — memory safety, so
      // checked in every build (see common/check.hpp policy).
      QC_CHECK(dest_slot < 2, "cascade entry level has no free slot");
      LevelBlock* nb = take_block();
      std::memcpy(nb->items.data(), items.data(), opts_.k * sizeof(T));
      if (!seq_odd && dest_slot < published.trit(entry_level)) {
        install_seq_.fetch_add(1, std::memory_order_relaxed);
        seq_odd = true;
      }
      publish_slot(entry_level, dest_slot, nb);
      level_epoch_[entry_level].store(epoch, std::memory_order_release);
      tm = tm.with_trit(entry_level, dest_slot + 1);
      if (tm.trit(level) == 2) {
        std::merge(slot_ptr(level, 0), slot_ptr(level, 0) + opts_.k,
                   slot_ptr(level, 1), slot_ptr(level, 1) + opts_.k,
                   scratch_.begin(), cmp_);
        source = std::span<const T>(scratch_.data(), cap_);
      }
    }
    while (tm.trit(level) == 2) {
      const std::uint32_t dest_level = level + 1;
      // Ladder exhaustion is diagnosed (and aborted on) by prepare_cascade,
      // which simulated this exact walk before anything was staged.
      QC_CHECK(dest_level < kLevels, "cascade walked past the simulated ladder top");
      const std::uint32_t dest_slot = tm.trit(dest_level);
      // Compact into a FRESH block with plain stores — it is invisible until
      // the pointer publication below, and published blocks are immutable,
      // so no per-item atomics are needed anywhere.
      LevelBlock* nb = take_block();
      const std::uint32_t parity = rng_.next_bool() ? 1 : 0;
      T* dest = nb->items.data();
      for (std::uint32_t i = 0; i < opts_.k; ++i) dest[i] = source[2 * i + parity];
      if (!seq_odd && dest_slot < published.trit(dest_level)) {
        // About to republish a slot queriers may be copying: enter the
        // dangerous-write phase.  The flip itself can be relaxed — it is
        // sequenced before publish_slot's seq_cst pointer store, so any
        // querier whose copy loaded the NEW pointer observes the flip at
        // its re-check and retries (see Querier::collect_levels).
        install_seq_.fetch_add(1, std::memory_order_relaxed);
        seq_odd = true;
      }
      publish_slot(dest_level, dest_slot, nb);
      // Release the level's new epoch only after its publication so that a
      // querier reading this epoch (acquire) sees the new pointer; see
      // Querier::collect_levels.
      level_epoch_[dest_level].store(epoch, std::memory_order_release);
      tm = tm.after_install_propagation(level);
      level = dest_level;
      ++steps;
      if (tm.trit(level) == 2) {
        std::merge(slot_ptr(level, 0), slot_ptr(level, 0) + opts_.k, slot_ptr(level, 1),
                   slot_ptr(level, 1) + opts_.k, scratch_.begin(), cmp_);
        source = std::span<const T>(scratch_.data(), cap_);
      }
    }
    return tm;
  }

  Options opts_;
  std::uint64_t cap_ = 0;  // gather batch size: 2k
  bool presort_ = true;    // presort_chunks resolved against b | 2k
  Compare cmp_;

  std::vector<std::unique_ptr<Node>> nodes_;

  // Elastic ladder: per-(level, slot) pointers to immutable k-item blocks,
  // null until a cascade first publishes the slot.  See the file comment.
  std::array<std::atomic<LevelBlock*>, static_cast<std::size_t>(kLevels) * 2>
      slot_blocks_{};
  std::atomic<Tritmap> tritmap_{Tritmap(0)};

  // level_epoch_[l]: epoch_counter_ value of the last batch cascade that
  // wrote level l's slots (not merely cleared them).  Queriers use it to
  // reuse cached runs across refreshes; see Querier::collect_levels.
  std::array<std::atomic<std::uint64_t>, kLevels> level_epoch_{};

  // ----- IBR state.  The vectors and cadence counters are latch-protected;
  // the epoch, chunk list, and stat counters are atomics. --------------------
  std::atomic<std::uint64_t> ibr_epoch_{1};
  std::uint32_t allocs_since_epoch_ QC_GUARDED_BY(latch_) = 0;
  std::uint32_t retires_since_scan_ QC_GUARDED_BY(latch_) = 0;
  // unpublished, awaiting proof of safety
  std::vector<LevelBlock*> retired_ QC_GUARDED_BY(latch_);
  // proven-safe reuse pool (bounded)
  std::vector<LevelBlock*> free_blocks_ QC_GUARDED_BY(latch_);
  std::atomic<IbrSlotChunk*> ibr_chunks_{nullptr};
  std::atomic<std::uint64_t> ibr_epochs_{0};
  std::atomic<std::uint64_t> ibr_allocated_{0};
  std::atomic<std::uint64_t> ibr_reused_{0};
  std::atomic<std::uint64_t> ibr_retired_{0};
  std::atomic<std::uint64_t> ibr_reclaimed_{0};
  std::atomic<std::uint64_t> ibr_freed_{0};
  std::atomic<std::uint64_t> ibr_scans_{0};
  std::atomic<std::uint64_t> ibr_peak_unreclaimed_{0};

  // Retire-cap degradation state (Options::ibr_retire_cap).  Stored by the
  // latch holder, read lock-free by ibr_stats().
  std::atomic<std::uint64_t> ibr_forced_scans_{0};
  std::atomic<std::uint64_t> ibr_throttle_waits_{0};
  std::atomic<std::uint64_t> retire_list_len_{0};
  std::atomic<bool> degraded_{false};

  // Two-phase cascade staging area (latch-protected): the blocks
  // prepare_cascade provisioned for the next apply_cascade.  Empty between
  // drain steps; nonempty at destruction only after a mid-drain throw.
  std::vector<LevelBlock*> stash_ QC_GUARDED_BY(latch_);

  // serialize_propagation ablation arm: conditionally held around batch
  // formation + install enqueue + propagation drain.  Queriers never take it.
  // Deliberately a plain std::mutex outside the annotation model: it guards
  // no data (it serializes a code path), and its conditional unique_lock
  // pattern is exactly what the static analysis cannot express.
  std::mutex prop_mu_;

  // Bounded MPSC install hand-off queue; see InstallCell.  install_tail_ is
  // the producers' ticket counter, install_head_ the count of batches whose
  // install has been published (only the latch holder stores it).
  std::unique_ptr<InstallCell[]> install_q_;
  alignas(64) std::atomic<std::uint64_t> install_tail_{0};
  alignas(64) std::atomic<std::uint64_t> install_head_{0};

  // Install/drain path (one latch holder at a time), serialized by `latch_`.
  // Mutable: const observers (serialize, merge_into's source snapshot) also
  // freeze publication with it.  The LatchFlag doubles as the thread-safety
  // capability every QC_REQUIRES/QC_GUARDED_BY in this class names; see
  // common/annotations.hpp for the model.
  mutable sync::LatchFlag latch_;
  std::vector<T> scratch_ QC_GUARDED_BY(latch_);
  Xoshiro256 rng_ QC_GUARDED_BY(latch_){0};
  std::uint64_t epoch_counter_ QC_GUARDED_BY(latch_) = 0;  // per-batch-cascade

  // Monotonic publish clock: advances by a net 2 per published group, and is
  // ODD exactly while a combined group is rewriting published-occupied slots
  // (the seqlock phase queriers must not validate across).
  std::atomic<std::uint64_t> install_seq_{0};

  // Tail: weight-1 residue from drains and quiesce, outside the tritmap.
  // tail_version_ bumps on every tail mutation so queriers can detect an
  // unchanged tail without taking the mutex.
  mutable sync::Mutex tail_mu_;
  std::vector<T> tail_ QC_GUARDED_BY(tail_mu_);
  std::atomic<std::uint64_t> tail_size_{0};
  std::atomic<std::uint64_t> tail_version_{0};

  mutable std::atomic<std::uint64_t> stat_batches_{0};
  mutable std::atomic<std::uint64_t> stat_propagations_{0};
  mutable std::atomic<std::uint64_t> stat_holes_{0};
  mutable std::atomic<std::uint64_t> stat_query_retries_{0};
  mutable std::atomic<std::uint64_t> stat_gather_waits_{0};
  mutable std::atomic<std::uint64_t> stat_latch_spins_{0};
  mutable std::atomic<std::uint64_t> stat_installs_{0};
  mutable std::atomic<std::uint64_t> stat_combined_installs_{0};
  mutable std::atomic<std::uint64_t> stat_max_combine_{0};

  // Failure-model observability (always collected; see Stats).  Mutable
  // because the latch helpers run on const paths too (serialize, merge
  // snapshots).  latch_since_ns_ is the CURRENT hold's start timestamp
  // (0 = latch free) — stats() derives latch_current_hold_ns from it.
  mutable std::atomic<std::uint64_t> stat_latch_holds_{0};
  mutable std::atomic<std::uint64_t> stat_latch_hold_ns_{0};
  mutable std::atomic<std::uint64_t> stat_latch_max_hold_ns_{0};
  mutable std::atomic<std::uint64_t> stat_watchdog_trips_{0};
  mutable std::atomic<std::uint64_t> latch_since_ns_{0};
  std::atomic<std::uint64_t> stat_install_defers_{0};
  std::atomic<std::uint64_t> stat_queue_full_waits_{0};
  std::atomic<std::uint64_t> stat_oom_dropped_{0};

  // Lazily created handles behind the convenience update()/quantile()
  // surface (single-threaded contract).  Declared last so they are destroyed
  // first: the updater's destructor drains into the tail, which must still
  // be alive.
  std::unique_ptr<Updater> self_updater_;
  std::unique_ptr<Querier> self_querier_;
};

}  // namespace qc::core
