// Fast ascending sort for the owner's 2k Gather&Sort batch — the hottest
// single operation in the ingest path (one full-batch sort per 2k updates).
//
// For arithmetic keys under the default ordering this is an LSD radix sort
// over order-preserving bit images (sign-flipped integers, monotone-mapped
// IEEE floats), with per-byte histograms computed in one pass so that bytes
// on which all keys agree (e.g. the exponent bytes of uniform [0,1) doubles)
// are skipped entirely.  Other types or custom comparators fall back to
// std::sort.  NaNs are not supported (same precondition std::sort has with
// operator<).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

namespace qc::core {
namespace detail {

// Maps a value to an unsigned image whose natural order matches the value
// order: unsigned stays as-is, signed flips the sign bit, floats flip the
// sign bit for positives and all bits for negatives.
template <typename T>
std::uint64_t sort_key(T v) {
  if constexpr (std::is_floating_point_v<T>) {
    using Bits = std::conditional_t<sizeof(T) == 4, std::uint32_t, std::uint64_t>;
    Bits u = std::bit_cast<Bits>(v);
    const Bits sign = Bits{1} << (sizeof(Bits) * 8 - 1);
    u ^= (u & sign) ? ~Bits{0} : sign;
    return u;
  } else if constexpr (std::is_signed_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<U>(v) ^ (U{1} << (sizeof(U) * 8 - 1));
  } else {
    return static_cast<std::uint64_t>(v);
  }
}

template <typename T>
inline constexpr std::size_t key_bytes =
    std::is_floating_point_v<T> ? sizeof(T) : sizeof(std::uint64_t);

}  // namespace detail

template <typename T, typename Compare>
inline constexpr bool batch_sort_uses_radix =
    std::is_arithmetic_v<T> && !std::is_same_v<T, bool> &&
    std::is_same_v<Compare, std::less<T>>;

// Sorts `data` ascending using `aux` as scratch (resized to data.size()).
template <typename T, typename Compare = std::less<T>>
void batch_sort(std::span<T> data, std::vector<T>& aux, Compare cmp = Compare()) {
  if constexpr (!batch_sort_uses_radix<T, Compare>) {
    std::sort(data.begin(), data.end(), cmp);
  } else {
    const std::size_t n = data.size();
    if (n < 64) {  // radix setup doesn't pay off on tiny runs
      std::sort(data.begin(), data.end(), cmp);
      return;
    }
    if (aux.size() < n) aux.resize(n);

    constexpr std::size_t kBytes = detail::key_bytes<T>;
    std::array<std::array<std::uint32_t, 256>, kBytes> hist{};
    for (const T& v : data) {
      const std::uint64_t key = detail::sort_key(v);
      for (std::size_t b = 0; b < kBytes; ++b) {
        ++hist[b][(key >> (8 * b)) & 0xff];
      }
    }

    T* src = data.data();
    T* dst = aux.data();
    for (std::size_t b = 0; b < kBytes; ++b) {
      auto& counts = hist[b];
      // Skip bytes where every key agrees — no reordering can happen.
      if (std::any_of(counts.begin(), counts.end(),
                      [n](std::uint32_t c) { return c == n; })) {
        continue;
      }
      std::uint32_t offset = 0;
      for (auto& c : counts) {
        const std::uint32_t count = c;
        c = offset;
        offset += count;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const T v = src[i];
        dst[counts[(detail::sort_key(v) >> (8 * b)) & 0xff]++] = v;
      }
      std::swap(src, dst);
    }
    if (src != data.data()) {
      std::memcpy(data.data(), src, n * sizeof(T));
    }
  }
}

}  // namespace qc::core
