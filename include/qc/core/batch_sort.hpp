// Sorting substrate for the ingest path.
//
// batch_sort — fast ascending full sort, the Gather&Sort FALLBACK/BASELINE
// when chunk pre-sorting is disabled (Options::presort_chunks = false; the
// production pipeline merges pre-sorted chunks instead, see
// core/run_merge.hpp ChunkMerger).  For arithmetic keys under the default
// ordering this is an LSD radix sort over order-preserving bit images
// (sign-flipped integers, monotone-mapped IEEE floats), with per-byte
// histograms computed in one pass so that bytes on which all keys agree
// (e.g. the exponent bytes of uniform [0,1) doubles) are skipped entirely.
// Other types or custom comparators fall back to std::sort.
//
// small_sort — branchless sorting networks (Batcher odd-even mergesort,
// compile-time generated, fully unrolled, cmov compare-exchanges over
// order-preserving integer images for float/double) for the tiny
// power-of-two runs the Updater pre-sort stage produces; every update passes
// through it, so its constant factor is the writer-side cost of the pipeline
// (~6x faster than std::sort at n = 16).
//
// NaNs are not supported anywhere here (same precondition std::sort has with
// operator<; the image-based paths place NaNs by bit pattern).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace qc::core {
namespace detail {

// Maps a value to an unsigned image whose natural order matches the value
// order: unsigned stays as-is, signed flips the sign bit, floats flip the
// sign bit for positives and all bits for negatives.
template <typename T>
std::uint64_t sort_key(T v) {
  if constexpr (std::is_floating_point_v<T>) {
    using Bits = std::conditional_t<sizeof(T) == 4, std::uint32_t, std::uint64_t>;
    Bits u = std::bit_cast<Bits>(v);
    const Bits sign = Bits{1} << (sizeof(Bits) * 8 - 1);
    u ^= (u & sign) ? ~Bits{0} : sign;
    return u;
  } else if constexpr (std::is_signed_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<U>(v) ^ (U{1} << (sizeof(U) * 8 - 1));
  } else {
    return static_cast<std::uint64_t>(v);
  }
}

template <typename T>
inline constexpr std::size_t key_bytes =
    std::is_floating_point_v<T> ? sizeof(T) : sizeof(std::uint64_t);

// Inverse of sort_key's floating-point image (an involution pair): recovers
// the original bit pattern from the order-preserving unsigned image.
template <typename T>
T from_sort_image(std::uint64_t key) {
  using Bits = std::conditional_t<sizeof(T) == 4, std::uint32_t, std::uint64_t>;
  Bits u = static_cast<Bits>(key);
  const Bits sign = Bits{1} << (sizeof(Bits) * 8 - 1);
  u ^= (u & sign) ? sign : ~Bits{0};
  return std::bit_cast<T>(u);
}

// Floating-point types sort via the image so the networks are branchless
// (unsigned min/max compiles to cmp + cmov) AND remain true permutations of
// the input bits: IEEE min/max instructions return the second operand for
// {+0.0, -0.0} pairs, which would duplicate one zero and destroy the other.
// The image order refines operator< exactly like the radix path (-0.0 sorts
// before +0.0; NaNs land by bit pattern), keeping small_sort and batch_sort
// byte-identical on every input.
template <typename T, typename Compare>
inline constexpr bool network_uses_image =
    std::is_floating_point_v<T> && std::is_same_v<Compare, std::less<T>>;

// Branchless compare-exchange: afterwards a <= b.  Relies on the compiler
// turning the ternaries into conditional moves (integers and the float
// images both do).
template <typename T, typename Compare>
inline void compare_exchange(T& a, T& b, Compare cmp) {
  const bool sw = cmp(b, a);
  const T lo = sw ? b : a;
  const T hi = sw ? a : b;
  a = lo;
  b = hi;
}

// Batcher odd-even mergesort compare-exchange schedule for power-of-two N,
// generated at compile time (correct by construction; O(N log^2 N) CEs).
template <std::size_t N>
constexpr auto batcher_schedule() {
  std::array<std::pair<std::uint16_t, std::uint16_t>, N * 10> ces{};
  std::size_t cnt = 0;
  for (std::size_t p = 1; p < N; p *= 2) {
    for (std::size_t k = p; k >= 1; k /= 2) {
      for (std::size_t j = k % p; j + k < N; j += 2 * k) {
        for (std::size_t i = 0; i < k; ++i) {
          if ((i + j) / (2 * p) == (i + j + k) / (2 * p)) {
            ces[cnt++] = {static_cast<std::uint16_t>(i + j),
                          static_cast<std::uint16_t>(i + j + k)};
          }
        }
      }
    }
  }
  return std::pair{ces, cnt};
}

// Fully unrolled network over a register-resident copy: the fold expression
// exposes the whole compare-exchange DAG to the scheduler, so independent
// exchanges within a network layer execute in parallel.  Floating-point
// inputs under the default ordering are converted to their order-preserving
// integer image once at load and back once at store (see network_uses_image).
template <std::size_t N, typename T, typename Compare>
inline void network_sort(T* v, Compare cmp) {
  constexpr auto sched = batcher_schedule<N>();
  if constexpr (network_uses_image<T, Compare>) {
    std::uint64_t r[N];
    for (std::size_t i = 0; i < N; ++i) r[i] = sort_key(v[i]);
    [&]<std::size_t... I>(std::index_sequence<I...>) {
      (compare_exchange(r[sched.first[I].first], r[sched.first[I].second],
                        std::less<std::uint64_t>{}),
       ...);
    }(std::make_index_sequence<sched.second>{});
    for (std::size_t i = 0; i < N; ++i) v[i] = from_sort_image<T>(r[i]);
  } else {
    T r[N];
    for (std::size_t i = 0; i < N; ++i) r[i] = v[i];
    [&]<std::size_t... I>(std::index_sequence<I...>) {
      (compare_exchange(r[sched.first[I].first], r[sched.first[I].second], cmp), ...);
    }(std::make_index_sequence<sched.second>{});
    for (std::size_t i = 0; i < N; ++i) v[i] = r[i];
  }
}

}  // namespace detail

// Sorts tiny runs: branchless unrolled networks for power-of-two sizes up to
// 16, std::sort otherwise.  This is the Updater pre-sort primitive (stage 1
// of the ingest pipeline): every local b-buffer goes through it while the
// data is still L1-hot, so the batch owner only ever merges sorted runs.
template <typename T, typename Compare = std::less<T>>
void small_sort(std::span<T> data, Compare cmp = Compare()) {
  switch (data.size()) {
    case 0:
    case 1:
      return;
    case 2:
      detail::compare_exchange(data[0], data[1], cmp);
      return;
    case 4:
      detail::network_sort<4>(data.data(), cmp);
      return;
    case 8:
      detail::network_sort<8>(data.data(), cmp);
      return;
    case 16:
      detail::network_sort<16>(data.data(), cmp);
      return;
    default:
      std::sort(data.begin(), data.end(), cmp);
      return;
  }
}

template <typename T, typename Compare>
inline constexpr bool batch_sort_uses_radix =
    std::is_arithmetic_v<T> && !std::is_same_v<T, bool> &&
    std::is_same_v<Compare, std::less<T>>;

// Sorts `data` ascending using `aux` as scratch (resized to data.size()).
template <typename T, typename Compare = std::less<T>>
void batch_sort(std::span<T> data, std::vector<T>& aux, Compare cmp = Compare()) {
  if (data.size() < 64) {  // radix setup doesn't pay off on tiny runs
    small_sort(data, cmp);
    return;
  }
  if constexpr (!batch_sort_uses_radix<T, Compare>) {
    std::sort(data.begin(), data.end(), cmp);
  } else {
    const std::size_t n = data.size();
    if (aux.size() < n) aux.resize(n);

    constexpr std::size_t kBytes = detail::key_bytes<T>;
    std::array<std::array<std::uint32_t, 256>, kBytes> hist{};
    for (const T& v : data) {
      const std::uint64_t key = detail::sort_key(v);
      for (std::size_t b = 0; b < kBytes; ++b) {
        ++hist[b][(key >> (8 * b)) & 0xff];
      }
    }

    T* src = data.data();
    T* dst = aux.data();
    for (std::size_t b = 0; b < kBytes; ++b) {
      auto& counts = hist[b];
      // Skip bytes where every key agrees — no reordering can happen.
      if (std::any_of(counts.begin(), counts.end(),
                      [n](std::uint32_t c) { return c == n; })) {
        continue;
      }
      std::uint32_t offset = 0;
      for (auto& c : counts) {
        const std::uint32_t count = c;
        c = offset;
        offset += count;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const T v = src[i];
        dst[counts[(detail::sort_key(v) >> (8 * b)) & 0xff]++] = v;
      }
      std::swap(src, dst);
    }
    if (src != data.data()) {
      std::memcpy(data.data(), src, n * sizeof(T));
    }
  }
}

}  // namespace qc::core
