// Construction-time configuration for core::Quancurrent.
#pragma once

#include <cstdint>

#include "numa/topology.hpp"

namespace qc::core {

struct Options {
  std::uint32_t k = 4096;  // summary size: each level array holds k items
  std::uint32_t b = 16;    // per-thread local buffer (elements moved per F&A)
  std::uint32_t rho = 2;   // Gather&Sort buffers per NUMA node
  bool collect_stats = false;
  std::uint64_t seed = 0x5eed5eed5eed5eedULL;
  numa::Topology topology = numa::Topology::single_node();

  // Clamps fields into the ranges the engine supports: k >= 2, rho >= 1, and
  // b adjusted down to the nearest divisor of the 2k batch size so that F&A
  // reservations always tile the gather buffer exactly.
  void normalize() {
    if (k < 2) k = 2;
    if (rho == 0) rho = 1;
    if (b == 0) b = 1;
    const std::uint32_t cap = 2 * k;
    if (b > cap) b = cap;
    while (cap % b != 0) --b;
  }
};

}  // namespace qc::core
