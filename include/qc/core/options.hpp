// Construction-time configuration for core::Quancurrent.
#pragma once

#include <cstdint>

#include "numa/topology.hpp"

namespace qc::core {

struct Options {
  std::uint32_t k = 4096;  // summary size: each level array holds k items
  std::uint32_t b = 16;    // per-thread local buffer (elements moved per F&A)
  std::uint32_t rho = 2;   // Gather&Sort buffers per NUMA node

  // Updaters sort their local b-buffer before flushing it, so a full gather
  // buffer is a sequence of 2k/b sorted chunks and the batch owner builds the
  // sorted 2k batch with a multiway chunk merge — O(2k log(2k/b)) owner work
  // spread-sorted across all writer threads — instead of a from-scratch
  // O(2k log 2k) full sort.  Off = the pre-chunk-merge pipeline (updaters
  // flush raw, the owner runs batch_sort); kept as the A/B baseline for
  // micro_primitives and fig06a.
  bool presort_chunks = true;

  // Combining installer drain depth: the batch owner holding the install
  // latch installs up to this many queued sorted batches in one latch hold,
  // publishing the whole group with a single tritmap CAS.  1 = one batch per
  // latch acquisition (the pre-combining behavior, with the hand-off queue
  // still decoupling gather ordinals from installation).
  std::uint32_t install_combine = 4;

  // Capacity (in 2k batches) of the bounded MPSC install hand-off queue.
  // 0 = auto: the smallest power of two >= max(8, 2 * install_combine).
  // Producers that find the queue full wait for the drainer — the queue
  // bounds the ingest-to-query relaxation by install_queue * 2k elements.
  std::uint32_t install_queue = 0;

  bool collect_stats = false;
  std::uint64_t seed = 0x5eed5eed5eed5eedULL;
  numa::Topology topology = numa::Topology::single_node();

  // Clamps fields into the ranges the engine supports: k >= 2, rho >= 1, b
  // adjusted down to the nearest divisor of the 2k batch size so that F&A
  // reservations always tile the gather buffer exactly, install_combine in
  // [1, 256], and install_queue rounded up to a power of two large enough to
  // hold one full drain group.
  void normalize() {
    if (k < 2) k = 2;
    if (rho == 0) rho = 1;
    if (b == 0) b = 1;
    const std::uint32_t cap = 2 * k;
    if (b > cap) b = cap;
    while (cap % b != 0) --b;
    if (install_combine == 0) install_combine = 1;
    if (install_combine > 256) install_combine = 256;
    std::uint32_t want = install_queue;
    if (want == 0) want = 2 * install_combine;
    if (want < 8) want = 8;
    // An explicit queue size is still raised to hold one full drain group,
    // so a configured install_combine depth is always reachable.
    if (want < install_combine) want = install_combine;
    std::uint32_t cap2 = 8;
    while (cap2 < want) cap2 *= 2;
    install_queue = cap2;
  }
};

}  // namespace qc::core
