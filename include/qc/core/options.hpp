// Construction-time configuration for core::Quancurrent.
#pragma once

#include <cstdint>
#include <cstdio>
#include <type_traits>
#include <vector>

#include "numa/topology.hpp"

namespace qc::core {

struct Options {
  // Upper bounds on the size-driving fields.  Every one of these multiplies
  // into a preallocation (levels grid, gather buffers, install-queue cells),
  // and deserialize accepts only options normalize() leaves untouched, so
  // the caps both keep the arithmetic inside 32 bits (an unclamped 2k or
  // power-of-two rounding used to overflow) and deny crafted serde images
  // unbounded allocations.
  static constexpr std::uint32_t kMaxK = 1u << 22;           // k-item level blocks
  static constexpr std::uint32_t kMaxRho = 64;               // buffers per node
  static constexpr std::uint32_t kMaxNodes = 64;             // NUMA nodes
  static constexpr std::uint32_t kMaxInstallQueue = 1u << 12;  // 2k-item cells
  static constexpr std::uint32_t kMaxIbrFreq = 1u << 20;       // IBR cadence cap
  static constexpr std::uint32_t kMinRetireCap = 64;  // smallest nonzero retire cap

  std::uint32_t k = 4096;  // summary size: each level array holds k items
  std::uint32_t b = 16;    // per-thread local buffer (elements moved per F&A)
  std::uint32_t rho = 2;   // Gather&Sort buffers per NUMA node

  // Updaters sort their local b-buffer before flushing it, so a full gather
  // buffer is a sequence of 2k/b sorted chunks and the batch owner builds the
  // sorted 2k batch with a multiway chunk merge — O(2k log(2k/b)) owner work
  // spread-sorted across all writer threads — instead of a from-scratch
  // O(2k log 2k) full sort.  Off = the pre-chunk-merge pipeline (updaters
  // flush raw, the owner runs batch_sort); kept as the A/B baseline for
  // micro_primitives and fig06a.
  bool presort_chunks = true;

  // Combining installer drain depth: the batch owner holding the install
  // latch installs up to this many queued sorted batches in one latch hold,
  // publishing the whole group with a single tritmap CAS.  1 = one batch per
  // latch acquisition (the pre-combining behavior, with the hand-off queue
  // still decoupling gather ordinals from installation).
  std::uint32_t install_combine = 4;

  // Capacity (in 2k batches) of the bounded MPSC install hand-off queue.
  // 0 = auto: the smallest power of two >= max(8, 2 * install_combine).
  // Producers that find the queue full wait for the drainer — the queue
  // bounds the ingest-to-query relaxation by install_queue * 2k elements.
  std::uint32_t install_queue = 0;

  // Interval-based reclamation cadence for the elastic level blocks.  The
  // ladder's k-item arrays are allocated on demand (not preallocated) and a
  // rewritten slot's displaced block is RETIRED, not freed: it stays readable
  // until no in-flight query snapshot can still reference it.  Two knobs
  // govern the bookkeeping, both counted at the install latch holder:
  //
  //   * ibr_epoch_freq — advance the global reclamation epoch once every this
  //     many block allocations.  Coarser epochs (larger values) mean cheaper
  //     bookkeeping but blocks stay unreclaimable longer, raising the peak
  //     retire-list size (ibr_stats().peak_unreclaimed).
  //   * ibr_recl_freq — run a reclamation scan (compare every retired block's
  //     retire epoch against all announced reader epochs, free the safe ones)
  //     once every this many retirements.  Smaller values bound the live
  //     block count tighter at the cost of more scans (ibr_stats().scans).
  //
  // Clamped to [1, kMaxIbrFreq]: 0 would never advance/scan (an unbounded
  // retire list), and values past the cap are indistinguishable from "never"
  // at any realistic stream length.  The abl_reclamation bench sweeps both.
  std::uint32_t ibr_epoch_freq = 16;
  std::uint32_t ibr_recl_freq = 64;

  // Bounded-memory response to stalled readers.  IBR's conservative free
  // rule means one parked querier handle (announced epoch never cleared)
  // pins every later retirement on the retire list indefinitely.  When the
  // list would exceed this many blocks, the latch holder first forces an
  // off-cadence scan (ibr_stats().forced_scans); if the scan cannot free
  // below the cap — a reader really is stalled — the sketch enters DEGRADED
  // mode (ibr_stats().degraded): ingest throttles at the install latch until
  // a scan succeeds, so retired memory stays <= cap * k * sizeof(T) instead
  // of growing without bound.  Queries are unaffected (they never take the
  // latch).  0 disables the cap (the pre-PR-7 unbounded behavior); nonzero
  // values are clamped to >= 64 so the cap can never sit below one drain
  // group's worst-case retirement burst.
  std::uint32_t ibr_retire_cap = 4096;

  // Install-latch watchdog threshold, nanoseconds.  Every latch hold is
  // timed (stats().latch_holds / latch_max_hold_ns, always collected); a
  // hold longer than this bumps stats().latch_watchdog_trips, so a wedged
  // or preempted latch holder is observable from any thread without a
  // debugger.  0 disables the trip counter (holds are still timed).
  std::uint64_t latch_watchdog_ns = 100'000'000;  // 100ms

  // Ablation control arm (§5.5, abl_propagation): serialize every owner duty
  // — Gather&Sort batch formation, install enqueue, and the propagation drain
  // — behind one global lock, re-creating FCDS's single-propagation-thread
  // bottleneck inside Quancurrent.  Updaters still fill local and gather
  // buffers concurrently (as FCDS workers do); only the batch-update +
  // propagation stage is serialized.  Queriers are unaffected and stay
  // wait-free.  Single-threaded ingestion is bit-identical to the default
  // path (tested); leave this off outside the ablation.
  bool serialize_propagation = false;

  bool collect_stats = false;
  std::uint64_t seed = 0x5eed5eed5eed5eedULL;
  numa::Topology topology = numa::Topology::single_node();

  // One field rewrite normalize() performed (or validate() predicts), with
  // the rule that forced it — so misconfigurations are reported instead of
  // silently absorbed.  Quancurrent's constructor prints these once when
  // collect_stats is set.
  struct Adjustment {
    const char* field;
    std::uint64_t from;
    std::uint64_t to;
    const char* rule;
  };

  // Clamps fields into the ranges the engine supports and returns the list
  // of rewrites applied: k >= 2, rho >= 1, b adjusted down to the nearest
  // divisor of the 2k batch size so that F&A reservations always tile the
  // gather buffer exactly, install_combine in [1, 256], both IBR cadences in
  // [1, kMaxIbrFreq], and install_queue rounded up to a power of two large
  // enough to hold one full drain group.
  // Normalizing already-normalized options applies (and returns) nothing.
  std::vector<Adjustment> normalize() {
    std::vector<Adjustment> log;
    const auto adjust = [&log](const char* field, auto& value,
                               std::uint64_t to, const char* rule) {
      if (static_cast<std::uint64_t>(value) == to) return;
      log.push_back({field, static_cast<std::uint64_t>(value), to, rule});
      value = static_cast<std::remove_reference_t<decltype(value)>>(to);
    };
    if (k < 2) adjust("k", k, 2, "k >= 2 (a level must hold at least 2 items)");
    if (k > kMaxK) {
      adjust("k", k, kMaxK, "k <= 2^22 (bounds the preallocated levels grid)");
    }
    if (rho == 0) adjust("rho", rho, 1, "rho >= 1 (at least one gather buffer per node)");
    if (rho > kMaxRho) {
      adjust("rho", rho, kMaxRho, "rho <= 64 (bounds per-node gather memory)");
    }
    if (topology.nodes > kMaxNodes) {
      adjust("topology.nodes", topology.nodes, kMaxNodes,
             "nodes <= 64 (bounds the per-node buffer preallocation)");
    }
    if (b == 0) adjust("b", b, 1, "b >= 1 (flush granularity)");
    const std::uint32_t cap = 2 * k;
    if (b > cap) adjust("b", b, cap, "b <= 2k (a flush fits one gather batch)");
    if (cap % b != 0) {
      std::uint32_t divisor = b;
      while (cap % divisor != 0) --divisor;
      adjust("b", b, divisor, "b must divide 2k (flushes tile the gather buffer)");
    }
    if (install_combine == 0) {
      adjust("install_combine", install_combine, 1, "install_combine >= 1");
    }
    if (install_combine > 256) {
      adjust("install_combine", install_combine, 256,
             "install_combine <= 256 (bounded latch hold)");
    }
    if (ibr_epoch_freq == 0) {
      adjust("ibr_epoch_freq", ibr_epoch_freq, 1,
             "ibr_epoch_freq >= 1 (0 would never advance the epoch)");
    }
    if (ibr_epoch_freq > kMaxIbrFreq) {
      adjust("ibr_epoch_freq", ibr_epoch_freq, kMaxIbrFreq,
             "ibr_epoch_freq <= 2^20 (coarser epochs never reclaim)");
    }
    if (ibr_recl_freq == 0) {
      adjust("ibr_recl_freq", ibr_recl_freq, 1,
             "ibr_recl_freq >= 1 (0 would never scan the retire list)");
    }
    if (ibr_recl_freq > kMaxIbrFreq) {
      adjust("ibr_recl_freq", ibr_recl_freq, kMaxIbrFreq,
             "ibr_recl_freq <= 2^20 (rarer scans never reclaim)");
    }
    if (ibr_retire_cap != 0 && ibr_retire_cap < kMinRetireCap) {
      adjust("ibr_retire_cap", ibr_retire_cap, kMinRetireCap,
             "ibr_retire_cap >= 64 (must cover one drain group's retirement burst)");
    }
    if (install_queue > kMaxInstallQueue) {
      // Also keeps the power-of-two rounding below from overflowing (an
      // uncapped 2^31+ value used to spin the doubling loop forever).
      adjust("install_queue", install_queue, kMaxInstallQueue,
             "install_queue <= 4096 (bounds the hand-off ring's memory)");
    }
    std::uint32_t want = install_queue;
    if (want == 0) want = 2 * install_combine;
    if (want < 8) want = 8;
    // An explicit queue size is still raised to hold one full drain group,
    // so a configured install_combine depth is always reachable.
    if (want < install_combine) want = install_combine;
    std::uint32_t cap2 = 8;
    while (cap2 < want) cap2 *= 2;
    if (install_queue != cap2) {
      // 0 is the documented "auto" request, not a misconfiguration: size it
      // silently.  Only explicit values that had to be rounded are reported.
      if (install_queue == 0) {
        install_queue = cap2;
      } else {
        adjust("install_queue", install_queue, cap2,
               "install_queue rounded up (power of two holding one drain group)");
      }
    }
    return log;
  }

  // The adjustments normalize() WOULD apply, without mutating the options —
  // callers can surface (or reject) misconfigurations before construction.
  std::vector<Adjustment> validate() const {
    Options copy = *this;
    return copy.normalize();
  }

  // Prints one line per adjustment to stderr; the sketch constructors call
  // this once under collect_stats so clamped configuration is never silent.
  static void report(const std::vector<Adjustment>& adjustments) {
    for (const auto& a : adjustments) {
      std::fprintf(stderr, "qc::Options: %s adjusted %llu -> %llu (%s)\n", a.field,
                   static_cast<unsigned long long>(a.from),
                   static_cast<unsigned long long>(a.to), a.rule);
    }
  }
};

}  // namespace qc::core
