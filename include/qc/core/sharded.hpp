// ShardedQuancurrent: a serving facade over S independent Quancurrent
// shards.
//
// A single Quancurrent scales until its shared structures saturate — the
// gather buffers' F&A hot words and the install latch become the knee of the
// update-scaling curve (fig06a's gather_waits / latch_spins counters say
// when).  Past that knee the production answer is not a cleverer lock but
// MORE SKETCHES: quantile summaries are mergeable (the property KLL-style
// sketches are deployed for), so a stream can be split across S completely
// independent sketches and recombined at query time with no loss beyond the
// per-sketch error bound.
//
// Routing.  Two complementary policies:
//   * thread affinity (make_updater): each updater thread is pinned to shard
//     thread_index % S, so a thread's flushes always hit the same gather
//     buffers — zero cross-shard traffic on the hot path.  Quantile accuracy
//     does not depend on which elements land in which shard, so any
//     assignment is statistically fine.
//   * value hash (make_hash_updater): each element is routed by a mixed
//     std::hash of its value, giving every shard a statistically identical
//     substream even when per-thread streams are skewed (useful when shard
//     summaries are also consumed individually, e.g. shipped to different
//     aggregators).
//
// Queries.  Querier holds one wait-free per-shard querier plus a cross-shard
// RunMerger pass: refresh() refreshes each shard (O(1) when that shard has
// not published) and re-merges the per-shard weighted summaries only when at
// least one of them actually rebuilt — queries take no lock anywhere, and
// answers come from the same O(log R) binary searches as a single sketch.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/options.hpp"
#include "core/quancurrent.hpp"
#include "core/run_merge.hpp"

namespace qc::core {

template <typename T, typename Compare = std::less<T>>
class ShardedQuancurrent {
 public:
  using value_type = T;
  using Shard = Quancurrent<T, Compare>;

  // `opts` applies to every shard (normalized once here, so per-shard
  // construction stays silent); relaxation and memory scale with S.
  ShardedQuancurrent(std::uint32_t shards, Options opts) {
    if (shards == 0) shards = 1;
    const auto adjustments = opts.normalize();
    if (opts.collect_stats) Options::report(adjustments);
    shards_.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
      shards_.push_back(std::make_unique<Shard>(opts));
    }
  }

  // Restore path (recovery/checkpoint.hpp): wraps already-built shards in a
  // facade WITHOUT re-routing them through merge, so a same-shard-count
  // restore is bit-exact per shard.  Null when `shards` is empty or holds a
  // null; the shards should share options (the constructor-built invariant —
  // the recovery decoder deserializes every shard from one checkpoint, which
  // guarantees it), and the first shard's options become the facade's.
  static std::unique_ptr<ShardedQuancurrent> adopt(
      std::vector<std::unique_ptr<Shard>> shards) {
    if (shards.empty()) return nullptr;
    for (const auto& s : shards) {
      if (s == nullptr) return nullptr;
    }
    return std::unique_ptr<ShardedQuancurrent>(
        new ShardedQuancurrent(std::move(shards)));
  }

  std::uint32_t num_shards() const { return static_cast<std::uint32_t>(shards_.size()); }
  Shard& shard(std::uint32_t s) { return *shards_[s]; }
  const Shard& shard(std::uint32_t s) const { return *shards_[s]; }
  const Options& options() const { return shards_[0]->options(); }

  // ----- ingestion ---------------------------------------------------------

  // Thread-affinity-routed ingestion handle: a thin wrapper over the home
  // shard's updater.  Not thread-safe; create one per thread (thread_index
  // selects the home shard and the NUMA node within it).  Destruction drains
  // the remainder into the home shard's tail.
  class Updater {
   public:
    Updater(ShardedQuancurrent& sketch, std::uint32_t thread_index)
        : inner_(sketch.shards_[thread_index % sketch.num_shards()]->make_updater(
              thread_index / sketch.num_shards())) {}

    void update(const T& v) { inner_.update(v); }
    void update(std::span<const T> vs) { inner_.update(vs); }
    void drain() { inner_.drain(); }

   private:
    typename Shard::Updater inner_;
  };

  Updater make_updater(std::uint32_t thread_index) { return Updater(*this, thread_index); }

  // Value-hash-routed ingestion handle: holds one updater per shard and
  // routes each element by a mixed std::hash of its value, so every shard
  // receives a statistically identical substream regardless of input order
  // or per-thread skew.  Not thread-safe; create one per thread.
  class HashUpdater {
   public:
    HashUpdater(ShardedQuancurrent& sketch, std::uint32_t thread_index) {
      inners_.reserve(sketch.num_shards());
      for (std::uint32_t s = 0; s < sketch.num_shards(); ++s) {
        inners_.push_back(sketch.shards_[s]->make_updater(thread_index));
      }
    }

    void update(const T& v) {
      inners_[static_cast<std::size_t>(mix(std::hash<T>{}(v)) % inners_.size())]
          .update(v);
    }

    void drain() {
      for (auto& u : inners_) u.drain();
    }

   private:
    // splitmix64 finalizer: std::hash of integral types is often the
    // identity, which would route monotone streams to one shard.
    static std::uint64_t mix(std::uint64_t x) {
      x += 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return x ^ (x >> 31);
    }

    std::vector<typename Shard::Updater> inners_;
  };

  HashUpdater make_hash_updater(std::uint32_t thread_index = 0) {
    return HashUpdater(*this, thread_index);
  }

  // Drains every shard.  Same precondition as Quancurrent::quiesce(): no
  // concurrent updaters (queriers are fine).
  void quiesce() {
    for (auto& s : shards_) s->quiesce();
  }

  // ----- queries -----------------------------------------------------------

  // Cross-shard point-in-time view: one wait-free querier per shard plus a
  // merged summary.  refresh() is incremental twice over — each shard
  // querier reuses its cached runs, and the cross-shard merge is skipped
  // entirely unless some shard actually rebuilt.  No lock anywhere on this
  // path.
  class Querier {
   public:
    explicit Querier(ShardedQuancurrent& sketch) {
      inners_.reserve(sketch.num_shards());
      for (std::uint32_t s = 0; s < sketch.num_shards(); ++s) {
        inners_.push_back(sketch.shards_[s]->make_querier());
      }
      versions_.assign(inners_.size(), ~std::uint64_t{0});
      refresh();
    }

    void refresh() {
      bool changed = false;
      for (std::size_t s = 0; s < inners_.size(); ++s) {
        inners_[s].refresh();
        if (versions_[s] != inners_[s].version()) {
          versions_[s] = inners_[s].version();
          changed = true;
        }
      }
      if (!changed) return;
      parts_.clear();
      for (const auto& q : inners_) parts_.push_back(&q.summary());
      merger_.merge_weighted(
          std::span<const WeightedSummary<T>* const>(parts_), summary_, cmp_);
    }

    std::uint64_t size() const { return summary_.total_weight(); }

    std::uint64_t holes() const {
      std::uint64_t h = 0;
      for (const auto& q : inners_) h += q.holes();
      return h;
    }

    const WeightedSummary<T>& summary() const { return summary_; }

    T quantile(double phi) const { return summary_quantile(summary_, phi); }

    std::uint64_t rank(const T& v) const { return summary_rank(summary_, v, cmp_); }

    double cdf(const T& v) const {
      const std::uint64_t total = summary_.total_weight();
      return total == 0 ? 0.0
                        : static_cast<double>(rank(v)) / static_cast<double>(total);
    }

   private:
    std::vector<typename Shard::Querier> inners_;
    std::vector<std::uint64_t> versions_;
    std::vector<const WeightedSummary<T>*> parts_;
    RunMerger<T, Compare> merger_;
    WeightedSummary<T> summary_;
    Compare cmp_{};
  };

  Querier make_querier() { return Querier(*this); }

  // ----- introspection -----------------------------------------------------

  std::uint64_t size() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->size();
    return total;
  }

  std::uint64_t retained() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->retained();
    return total;
  }

  // Field-wise sum over shards (max for max_combine).
  Stats stats() const {
    Stats total;
    for (const auto& s : shards_) {
      const Stats st = s->stats();
      total.batches += st.batches;
      total.propagations += st.propagations;
      total.holes += st.holes;
      total.query_retries += st.query_retries;
      total.gather_waits += st.gather_waits;
      total.latch_spins += st.latch_spins;
      total.installs += st.installs;
      total.combined_installs += st.combined_installs;
      total.max_combine = std::max(total.max_combine, st.max_combine);
      total.install_defers += st.install_defers;
      total.queue_full_waits += st.queue_full_waits;
      total.oom_dropped_items += st.oom_dropped_items;
      total.latch_holds += st.latch_holds;
      total.latch_hold_total_ns += st.latch_hold_total_ns;
      // Shard latches are independent: the fleet-wide worst hold (and the
      // oldest in-progress hold) is the worst shard's, not a sum.
      total.latch_max_hold_ns = std::max(total.latch_max_hold_ns, st.latch_max_hold_ns);
      total.latch_current_hold_ns =
          std::max(total.latch_current_hold_ns, st.latch_current_hold_ns);
      total.latch_watchdog_trips += st.latch_watchdog_trips;
    }
    return total;
  }

  // Field-wise sum over shards (max for peak_unreclaimed: per-shard retire
  // lists are independent, so the fleet-wide peak is the worst shard's).
  IbrStats ibr_stats() const {
    IbrStats total;
    for (const auto& s : shards_) {
      const IbrStats st = s->ibr_stats();
      total.epochs += st.epochs;
      total.allocated += st.allocated;
      total.reused += st.reused;
      total.retired += st.retired;
      total.reclaimed += st.reclaimed;
      total.freed += st.freed;
      total.scans += st.scans;
      total.peak_unreclaimed = std::max(total.peak_unreclaimed, st.peak_unreclaimed);
      total.forced_scans += st.forced_scans;
      total.throttle_waits += st.throttle_waits;
      total.retire_list_len += st.retire_list_len;
      // Age is a point-in-time lag, so the fleet reports its slowest pin;
      // degraded is sticky across the facade — one throttled shard degrades
      // the fleet's ingest.
      total.pinned_epoch_age = std::max(total.pinned_epoch_age, st.pinned_epoch_age);
      total.degraded = total.degraded || st.degraded;
    }
    return total;
  }

 private:
  explicit ShardedQuancurrent(std::vector<std::unique_ptr<Shard>> shards)
      : shards_(std::move(shards)) {}

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace qc::core
