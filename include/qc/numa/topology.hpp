// Minimal NUMA topology shim.  Quancurrent shards its Gather&Sort buffers per
// NUMA node; until real libnuma discovery lands, benches model the paper's
// machine with virtual_nodes(nodes, threads_per_node) and updater threads are
// mapped to nodes round-robin by thread index.
#pragma once

#include <cstdint>
#include <thread>

namespace qc::numa {

struct Topology {
  std::uint32_t nodes = 1;
  std::uint32_t threads_per_node = 0;  // 0 = unspecified

  static Topology virtual_nodes(std::uint32_t nodes, std::uint32_t threads_per_node) {
    Topology t;
    t.nodes = nodes == 0 ? 1 : nodes;
    t.threads_per_node = threads_per_node;
    return t;
  }

  static Topology single_node() {
    const unsigned hw = std::thread::hardware_concurrency();
    return virtual_nodes(1, hw == 0 ? 1 : hw);
  }

  // Home node for an updater thread: threads fill a node before spilling to
  // the next, wrapping modulo the node count.
  std::uint32_t node_of(std::uint32_t thread_index) const {
    const std::uint32_t per = threads_per_node == 0 ? 1 : threads_per_node;
    return (thread_index / per) % nodes;
  }
};

}  // namespace qc::numa
