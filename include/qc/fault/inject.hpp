// Deterministic, seed-driven fault injection for the engine's failure model.
//
// The engine's degradation guarantees (see README, "Failure model &
// degradation") are only guarantees if something exercises them.  This header
// defines NAMED INJECTION POINTS threaded through the hot paths —
// allocation failure on the cascade/tail/query/merge/deserialize paths,
// artificial stalls (a wedged latch holder, a parked querier, a preempted
// gather writer, a full install ring), and serde byte corruption — plus a
// process-wide Injector that decides, deterministically from a seed and a
// per-point hit counter, whether each encounter fires.
//
// Build model.  Everything here compiles to NOTHING unless QC_FAULT_INJECT is
// defined: the QC_INJECT_* macros expand to `void(0)` and no Injector state
// exists, so production binaries carry zero overhead and zero new branches.
// The dedicated chaos build (-DQC_FAULT_INJECT=ON in CMake, or the per-target
// define on tests/test_fault.cpp) compiles the points in.  The engine is
// header-only, so a per-target define is ODR-safe: each binary sees one
// consistent configuration.
//
// Determinism.  A point fires on hit h iff
//     splitmix64(seed ^ point ^ h) % 1'000'000 < probability_ppm(point)
// or h equals an armed one-shot hit number.  Hit counters are per-point
// atomics, so a single-threaded run replays exactly; multi-threaded runs are
// deterministic in the aggregate (same fire COUNT distribution for a given
// interleaving) and the seed is always logged so a failure reproduces.
//
// Stalls.  Stall points call a pluggable handler (default: sleep).  Tests
// install their own handler to park a thread on a flag — that is how the
// "stalled querier keeps retired memory bounded" chaos test wedges a reader
// at a precise point with a pin held.
#pragma once

#include <cstddef>
#include <cstdint>

namespace qc::fault {

// Every named injection point in the engine.  Keep point_name() in sync.
enum class Point : std::uint8_t {
  level_block_alloc = 0,  // alloc_block(): a LevelBlock `new` on the cascade
                          // or deserialize path fails
  tail_alloc,             // push_tail(): the tail vector's growth fails
  querier_copy_alloc,     // Querier::collect_levels()/copy_tail(): a snapshot
                          // copy buffer's growth fails
  merge_alloc,            // merge_into(): the source-snapshot reserve fails
  deserialize_alloc,      // deserialize(): a payload allocation fails
  install_queue_full,     // acquire_cell(): delay a producer as if the ring
                          // were full (backpressure path)
  latch_stall,            // drain_group(): wedge the install-latch holder
  querier_stall,          // Querier::refresh(): park a reader mid-snapshot,
                          // epoch pin held
  gather_stall,           // flush_chunk(): preempt a writer between its
                          // reservation and its commit
  serde_corrupt,          // serde::Writer::put_bytes(): flip one bit in an
                          // emitted byte
  short_write,            // recovery/io.hpp write_all(): a write(2) segment
                          // tears — half lands, then the device errors
  fsync_fail,             // recovery/io.hpp fsync_file()/fsync_dir(): fsync
                          // reports failure before reaching stable storage
  rename_fail,            // recovery/io.hpp rename_file(): the atomic
                          // publish rename fails
  read_corrupt,           // recovery/io.hpp read_file(): one bit of the
                          // loaded checkpoint image rots
  kCount,
};

inline constexpr std::size_t kPointCount = static_cast<std::size_t>(Point::kCount);

inline const char* point_name(Point p) {
  switch (p) {
    case Point::level_block_alloc: return "level_block_alloc";
    case Point::tail_alloc: return "tail_alloc";
    case Point::querier_copy_alloc: return "querier_copy_alloc";
    case Point::merge_alloc: return "merge_alloc";
    case Point::deserialize_alloc: return "deserialize_alloc";
    case Point::install_queue_full: return "install_queue_full";
    case Point::latch_stall: return "latch_stall";
    case Point::querier_stall: return "querier_stall";
    case Point::gather_stall: return "gather_stall";
    case Point::serde_corrupt: return "serde_corrupt";
    case Point::short_write: return "short_write";
    case Point::fsync_fail: return "fsync_fail";
    case Point::rename_fail: return "rename_fail";
    case Point::read_corrupt: return "read_corrupt";
    case Point::kCount: break;
  }
  return "unknown";
}

}  // namespace qc::fault

#if defined(QC_FAULT_INJECT)

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>

namespace qc::fault {

struct PointCounters {
  std::uint64_t hits = 0;   // times the code path reached the point
  std::uint64_t fires = 0;  // times the point actually injected
};

class Injector {
 public:
  // One process-wide instance: injection describes the environment (a failing
  // allocator, a preempting scheduler), which is per-process, not per-sketch.
  static Injector& instance() {
    static Injector inj;
    return inj;
  }

  // ----- configuration (tests call these before spawning threads) ----------

  void set_seed(std::uint64_t seed) { seed_.store(seed, std::memory_order_relaxed); }
  std::uint64_t seed() const { return seed_.load(std::memory_order_relaxed); }

  // Probability per encounter, parts-per-million.  0 disables the point.
  void set_probability(Point p, double prob) {
    const double clamped = prob < 0.0 ? 0.0 : (prob > 1.0 ? 1.0 : prob);
    state(p).prob_ppm.store(static_cast<std::uint32_t>(clamped * 1e6),
                            std::memory_order_relaxed);
  }

  // Deterministic schedule: fire exactly on the nth encounter (1-based);
  // 0 disarms.  Composes with (and is checked before) the probability.
  void arm_hit(Point p, std::uint64_t nth) {
    state(p).one_shot.store(nth, std::memory_order_relaxed);
  }

  // Stall behavior: a pluggable handler lets tests park a thread on a flag at
  // the exact injection point.  The default handler sleeps stall_us.
  using StallHandler = void (*)(Point, void*);
  void set_stall_handler(StallHandler fn, void* ctx) {
    stall_ctx_.store(ctx, std::memory_order_relaxed);
    stall_fn_.store(fn, std::memory_order_release);
  }
  void set_stall_us(std::uint32_t us) { stall_us_.store(us, std::memory_order_relaxed); }

  // Zero every counter and disable every point; keeps the seed.
  void reset() {
    for (auto& s : states_) {
      s.hits.store(0, std::memory_order_relaxed);
      s.fires.store(0, std::memory_order_relaxed);
      s.prob_ppm.store(0, std::memory_order_relaxed);
      s.one_shot.store(0, std::memory_order_relaxed);
    }
    stall_fn_.store(nullptr, std::memory_order_relaxed);
    stall_ctx_.store(nullptr, std::memory_order_relaxed);
  }

  // ----- the three injection primitives ------------------------------------

  // Counts the encounter and decides whether it fires.
  bool should_fire(Point p) {
    PointState& s = state(p);
    const std::uint64_t hit = s.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::uint64_t shot = s.one_shot.load(std::memory_order_relaxed);
    bool fire = shot != 0 && shot == hit;
    if (!fire) {
      const std::uint32_t ppm = s.prob_ppm.load(std::memory_order_relaxed);
      if (ppm != 0) {
        const std::uint64_t seed = seed_.load(std::memory_order_relaxed);
        const std::uint64_t roll =
            splitmix64(seed ^ (static_cast<std::uint64_t>(p) << 56) ^ hit) % 1'000'000u;
        fire = roll < ppm;
      }
    }
    if (fire) s.fires.fetch_add(1, std::memory_order_relaxed);
    return fire;
  }

  // Stall point: runs the handler (or sleeps) when the point fires.
  void stall(Point p) {
    if (!should_fire(p)) return;
    const StallHandler fn = stall_fn_.load(std::memory_order_acquire);
    if (fn != nullptr) {
      fn(p, stall_ctx_.load(std::memory_order_relaxed));
    } else {
      std::this_thread::sleep_for(
          std::chrono::microseconds(stall_us_.load(std::memory_order_relaxed)));
    }
  }

  // I/O failure point: decides whether a filesystem operation fails.  A fired
  // point first runs the stall handler when one is installed — the kill -9
  // crash harness installs `raise(SIGKILL)` there, so the process dies AT the
  // exact syscall (mid-write, pre-rename, between rename and dir-fsync) — and
  // then reports `true`: a transient I/O error for the caller's retry/backoff
  // path.  Unlike stall(), a fired fail point never sleeps by default; the
  // failure IS the injection.
  bool fail_point(Point p) {
    if (!should_fire(p)) return false;
    const StallHandler fn = stall_fn_.load(std::memory_order_acquire);
    if (fn != nullptr) fn(p, stall_ctx_.load(std::memory_order_relaxed));
    return true;
  }

  // Corruption point: flips one deterministically chosen bit in [data, data+n).
  void corrupt(Point p, void* data, std::size_t n) {
    if (n == 0 || !should_fire(p)) return;
    PointState& s = state(p);
    const std::uint64_t fire_no = s.fires.load(std::memory_order_relaxed);
    const std::uint64_t r =
        splitmix64(seed_.load(std::memory_order_relaxed) ^ 0xC0DEC0DEull ^ fire_no);
    auto* bytes = static_cast<unsigned char*>(data);
    bytes[r % n] ^= static_cast<unsigned char>(1u << ((r >> 32) % 8));
  }

  // ----- observability ------------------------------------------------------

  PointCounters counters(Point p) const {
    const PointState& s = states_[static_cast<std::size_t>(p)];
    return {s.hits.load(std::memory_order_relaxed), s.fires.load(std::memory_order_relaxed)};
  }

  std::uint64_t total_fires() const {
    std::uint64_t total = 0;
    for (const auto& s : states_) total += s.fires.load(std::memory_order_relaxed);
    return total;
  }

  // One line per point that was ever reached; chaos runs print this so a
  // failing seed's injection profile lands in the log next to the seed.
  void report(std::FILE* out) const {
    std::fprintf(out, "qc::fault: seed=%llu\n",
                 static_cast<unsigned long long>(seed()));
    for (std::size_t i = 0; i < kPointCount; ++i) {
      const auto c = counters(static_cast<Point>(i));
      if (c.hits == 0) continue;
      std::fprintf(out, "qc::fault:   %-20s hits=%llu fires=%llu\n",
                   point_name(static_cast<Point>(i)),
                   static_cast<unsigned long long>(c.hits),
                   static_cast<unsigned long long>(c.fires));
    }
  }

 private:
  struct PointState {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fires{0};
    std::atomic<std::uint32_t> prob_ppm{0};
    std::atomic<std::uint64_t> one_shot{0};
  };

  Injector() {
    // CI chaos runs randomize the seed through the environment and log it;
    // programmatic set_seed() overrides.
    if (const char* env = std::getenv("QC_FAULT_SEED")) {
      seed_.store(std::strtoull(env, nullptr, 10), std::memory_order_relaxed);
    }
  }

  static std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  PointState& state(Point p) { return states_[static_cast<std::size_t>(p)]; }

  std::array<PointState, kPointCount> states_{};
  std::atomic<std::uint64_t> seed_{0x5eedfa17ull};
  std::atomic<StallHandler> stall_fn_{nullptr};
  std::atomic<void*> stall_ctx_{nullptr};
  std::atomic<std::uint32_t> stall_us_{1000};
};

}  // namespace qc::fault

// Fired OOM points throw bad_alloc — indistinguishable from the real
// allocator failing at that site, which is the property the exception-safety
// tests rely on.
#define QC_INJECT_OOM(point)                                                  \
  do {                                                                        \
    if (::qc::fault::Injector::instance().should_fire(::qc::fault::Point::point)) \
      throw std::bad_alloc{};                                                 \
  } while (0)
#define QC_INJECT_STALL(point) \
  ::qc::fault::Injector::instance().stall(::qc::fault::Point::point)
#define QC_INJECT_CORRUPT(point, data, n) \
  ::qc::fault::Injector::instance().corrupt(::qc::fault::Point::point, (data), (n))
// Evaluates to true when the I/O operation at this point should fail (and, in
// the crash harness, may not return at all — the handler SIGKILLs here).
#define QC_INJECT_IO_FAIL(point) \
  ::qc::fault::Injector::instance().fail_point(::qc::fault::Point::point)

#else  // !QC_FAULT_INJECT

#define QC_INJECT_OOM(point) static_cast<void>(0)
#define QC_INJECT_STALL(point) static_cast<void>(0)
#define QC_INJECT_CORRUPT(point, data, n) static_cast<void>(0)
#define QC_INJECT_IO_FAIL(point) false

#endif  // QC_FAULT_INJECT
