// qc.hpp — the public API of the qc quantile-sketch library (API v1).
//
// One include gives the whole surface:
//
//   * qc::QuantilesSketch<T>   — the sequential KLL-style sketch.
//   * qc::Quancurrent<T>       — the concurrent sketch (SPAA 2023); options
//                                in qc::Options, validated by
//                                Options::validate().
//   * qc::ShardedQuancurrent<T>— S independent Quancurrent shards behind one
//                                facade, for update rates past a single
//                                sketch's contention knee.
//   * qc::QuantileSketch       — the concept both sketch ENGINES model:
//                                update / quantile / rank / cdf / size plus
//                                merge_into and binary serde.  (The sharded
//                                facade is handle-only: ingest and query it
//                                through UpdaterHandle/QuerierHandle or its
//                                make_* members; merge/serde operate on its
//                                individual shard(i) sketches.)
//   * qc::UpdaterHandle<S> /
//     qc::QuerierHandle<S>     — RAII per-thread handles, the uniform way to
//                                ingest into and query ANY engine (see the
//                                thread-affinity and lifetime rules below).
//
// Quick tour:
//
//   #include "qc.hpp"
//
//   qc::Quancurrent<double> sk(qc::Options{.k = 1024});
//   { qc::UpdaterHandle u(sk); for (double v : data) u.update(v); }  // per thread
//   qc::QuerierHandle q(sk);
//   double median = q.quantile(0.5);
//
//   // Merge: fold `other` into `sk` (wait-free for concurrent queriers).
//   other.merge_into(sk);
//
//   // Serde: ship a sketch to another process.
//   std::vector<std::byte> blob(sk.serialized_size());
//   sk.serialize(blob);
//   auto copy = qc::Quancurrent<double>::deserialize(blob);
//
//   // Durability (qc::recovery, see README "Durability & recovery"):
//   // crash-safe checkpoints of a live sketch and torn-write-proof restore.
//   qc::recovery::Checkpointer ck(sk, {.dir = "/var/lib/myapp/ckpt"});
//   ck.checkpoint();                      // temp + fsync + rename, retried
//   qc::recovery::RecoveryReport rep;
//   auto restored = qc::recovery::recover<double>("/var/lib/myapp/ckpt",
//                                                 "sketch", &rep);
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/options.hpp"
#include "core/quancurrent.hpp"
#include "core/run_merge.hpp"
#include "core/sharded.hpp"
#include "recovery/checkpoint.hpp"
#include "sequential/quantiles_sketch.hpp"
#include "serde/binary.hpp"

namespace qc {

// Engine types under their public names.
using core::IbrStats;
using core::Options;
using core::Quancurrent;
using core::ShardedQuancurrent;
using core::Stats;
using core::WeightedSummary;
using sequential::QuantilesSketch;

// The contract shared by every quantile-sketch engine: streaming ingestion,
// rank/quantile/cdf queries, size introspection, folding into another sketch
// of the same type, and versioned binary serde (serialize returns bytes
// written, 0 when the buffer is too small; deserialize returns an engine-
// appropriate nullable handle — optional for value types, unique_ptr for
// pinned concurrent sketches).
template <typename S>
concept QuantileSketch = requires(S& s, const S& cs, S& target,
                                  const typename S::value_type& v, double phi,
                                  std::span<std::byte> out,
                                  std::span<const std::byte> in) {
  typename S::value_type;
  s.update(v);
  { s.quantile(phi) } -> std::convertible_to<typename S::value_type>;
  { s.rank(v) } -> std::convertible_to<std::uint64_t>;
  { s.cdf(v) } -> std::convertible_to<double>;
  { cs.size() } -> std::convertible_to<std::uint64_t>;
  { cs.merge_into(target) } -> std::same_as<bool>;
  { cs.serialized_size() } -> std::convertible_to<std::size_t>;
  { cs.serialize(out) } -> std::convertible_to<std::size_t>;
  { S::deserialize(in) };
};

// Engines whose concurrent surface hands out per-thread updater/querier
// objects (Quancurrent, ShardedQuancurrent); the handles below wrap those,
// and fall back to direct sketch access for sequential engines.
template <typename S>
concept ConcurrentEngine = requires(S& s, std::uint32_t thread_index) {
  s.make_updater(thread_index);
  s.make_querier();
};

namespace detail {

template <typename S, bool = ConcurrentEngine<S>>
struct UpdaterImpl {
  using type = decltype(std::declval<S&>().make_updater(0u));
  static type make(S& s, std::uint32_t thread_index) {
    return s.make_updater(thread_index);
  }
};

template <typename S>
struct UpdaterImpl<S, false> {
  using type = S*;
  static type make(S& s, std::uint32_t) { return &s; }
};

template <typename S, bool = ConcurrentEngine<S>>
struct QuerierImpl {
  using type = decltype(std::declval<S&>().make_querier());
  static type make(S& s) { return s.make_querier(); }
};

template <typename S>
struct QuerierImpl<S, false> {
  using type = S*;
  static type make(S& s) { return &s; }
};

}  // namespace detail

// RAII per-thread ingestion handle, uniform across engines.
//
// Thread-affinity rule: a handle belongs to the thread that uses it — it is
// NOT thread-safe, and with ShardedQuancurrent the thread_index also picks
// the home shard, so create exactly one per ingesting thread (move is
// allowed, concurrent use is not).  Lifetime rule: the handle must not
// outlive the sketch, and buffered elements only become query-visible when
// the handle flushes — destruction (or an explicit flush()) drains the
// remainder, so scope handles tightly:  { UpdaterHandle u(sk); ...updates; }
// guarantees everything is visible (after the sketch's bounded relaxation)
// once the scope exits.  For sequential engines the handle simply forwards
// to the sketch, which must then not be used concurrently — the same
// exclusivity contract the sequential sketch always had.
template <typename S>
class UpdaterHandle {
 public:
  using value_type = typename S::value_type;

  explicit UpdaterHandle(S& sketch, std::uint32_t thread_index = 0)
      : impl_(detail::UpdaterImpl<S>::make(sketch, thread_index)) {}

  UpdaterHandle(UpdaterHandle&&) noexcept = default;
  UpdaterHandle(const UpdaterHandle&) = delete;
  UpdaterHandle& operator=(const UpdaterHandle&) = delete;

  void update(const value_type& v) {
    if constexpr (ConcurrentEngine<S>) {
      impl_.update(v);
    } else {
      impl_->update(v);
    }
  }

  void update(std::span<const value_type> vs) {
    if constexpr (ConcurrentEngine<S>) {
      impl_.update(vs);
    } else {
      for (const value_type& v : vs) impl_->update(v);
    }
  }

  // Makes everything buffered in this handle query-visible now instead of at
  // destruction (concurrent engines route the partial buffer through the
  // sketch's weight-1 tail).
  void flush() {
    if constexpr (ConcurrentEngine<S>) impl_.drain();
  }

 private:
  typename detail::UpdaterImpl<S>::type impl_;
};

// RAII query handle, uniform across engines.
//
// Thread-affinity rule: one handle per querying thread; the handle caches a
// private snapshot (runs + merged summary) and is not thread-safe, while any
// number of handles query the same sketch concurrently and wait-free.
// Lifetime rule: the handle must not outlive the sketch; answers come from
// the snapshot taken by the last refresh(), so call refresh() whenever newer
// data should become visible (it is O(1) when nothing changed).  For
// sequential engines refresh() is a no-op and answers always reflect the
// sketch's current state — under that engine's single-threaded contract.
template <typename S>
class QuerierHandle {
 public:
  using value_type = typename S::value_type;

  explicit QuerierHandle(S& sketch) : impl_(detail::QuerierImpl<S>::make(sketch)) {}

  QuerierHandle(QuerierHandle&&) noexcept = default;
  QuerierHandle(const QuerierHandle&) = delete;
  QuerierHandle& operator=(const QuerierHandle&) = delete;

  void refresh() {
    if constexpr (ConcurrentEngine<S>) impl_.refresh();
  }

  value_type quantile(double phi) const { return impl().quantile(phi); }
  std::uint64_t rank(const value_type& v) const { return impl().rank(v); }
  double cdf(const value_type& v) const { return impl().cdf(v); }
  std::uint64_t size() const { return impl().size(); }

 private:
  decltype(auto) impl() const {
    if constexpr (ConcurrentEngine<S>) {
      return (impl_);
    } else {
      return (*impl_);
    }
  }

  typename detail::QuerierImpl<S>::type impl_;
};

// Serializes any QuantileSketch into a freshly sized byte vector.  Sizing
// and serializing are two separate snapshots, so under concurrent ingestion
// the payload can grow in between (serialize then returns 0); retry with the
// fresh size until one image fits.
template <QuantileSketch S>
std::vector<std::byte> to_bytes(const S& sketch) {
  std::vector<std::byte> out;
  std::size_t written = 0;
  do {
    out.resize(sketch.serialized_size());
    written = sketch.serialize(out);
  } while (written == 0 && !out.empty());
  out.resize(written);
  return out;
}

}  // namespace qc
