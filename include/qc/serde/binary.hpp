// Versioned binary serialization for the public sketch API.
//
// Wire format (engine-specific payload follows the common header):
//
//   offset  size  field
//   0       4     magic "QCSK" (0x4B534351 as a native u32)
//   4       2     format version (kVersion)
//   6       2     endianness tag (0x0102 stored natively; a reader on a
//                 machine of the other endianness sees 0x0201 and rejects)
//   8       1     engine id (Engine enum)
//   9       1     sizeof(item type)
//   10      2     reserved (zero)
//
// Values are stored in native byte order and the header tag makes a foreign
// reader fail fast instead of mis-decoding — the format targets shipping
// summaries between processes of one fleet (merge-at-aggregation-time, as
// Ivkin et al. deploy KLL), not archival cross-architecture storage.
//
// Writer doubles as a size counter: constructed without a buffer it performs
// no stores and just advances the cursor, so `serialized_size()` and
// `serialize()` share one payload-emission function and can never disagree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#include "fault/inject.hpp"

namespace qc::serde {

inline constexpr std::uint32_t kMagic = 0x4B534351u;  // "QCSK"
inline constexpr std::uint16_t kVersion = 3;  // v3: concurrent images carry
                                              // the retire-cap + watchdog
                                              // degradation knobs (v2: the
                                              // IBR + propagation knobs)
inline constexpr std::uint16_t kEndianness = 0x0102;
// What a reader on a machine of the other byte order sees in each field of a
// blob written natively here (and vice versa).
inline constexpr std::uint32_t kSwappedMagic = 0x5143534Bu;
inline constexpr std::uint16_t kSwappedEndianness = 0x0201;

enum class Engine : std::uint8_t {
  sequential = 1,  // sequential::QuantilesSketch
  concurrent = 2,  // core::Quancurrent
};

enum class Status : std::uint8_t {
  ok = 0,
  short_buffer,     // input/output buffer too small (truncation)
  bad_magic,        // not a qc sketch blob
  bad_version,      // produced by an incompatible format revision
  bad_endianness,   // produced on a machine of the other byte order
  bad_payload,      // engine/item mismatch or internally inconsistent fields
};

inline const char* status_name(Status s) {
  switch (s) {
    case Status::ok: return "ok";
    case Status::short_buffer: return "short_buffer";
    case Status::bad_magic: return "bad_magic";
    case Status::bad_version: return "bad_version";
    case Status::bad_endianness: return "bad_endianness";
    case Status::bad_payload: return "bad_payload";
  }
  return "unknown";
}

// Bounded cursor over an output span.  All puts after an overflow are no-ops
// and `ok()` turns false; `measuring()` writers never overflow and only count.
class Writer {
 public:
  Writer() = default;  // measuring mode: counts bytes, stores nothing
  explicit Writer(std::span<std::byte> out) : buf_(out.data()), cap_(out.size()) {}

  template <typename U>
    requires std::is_trivially_copyable_v<U>
  void put(const U& value) {
    put_bytes(&value, sizeof(U));
  }

  void put_bytes(const void* data, std::size_t n) {
    if (buf_ != nullptr) {
      if (!ok_ || cap_ - pos_ < n) {
        ok_ = false;
        return;
      }
      std::memcpy(buf_ + pos_, data, n);
      // Chaos builds only: model a bit flip between serialization and
      // deserialization (bad disk, bad NIC).  Corrupts the stored copy, never
      // the caller's data; a measuring writer stores nothing to corrupt.
      QC_INJECT_CORRUPT(serde_corrupt, buf_ + pos_, n);
    }
    pos_ += n;
  }

  bool measuring() const { return buf_ == nullptr; }
  bool ok() const { return ok_; }
  std::size_t bytes() const { return pos_; }

 private:
  std::byte* buf_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Bounded cursor over an input span; every get reports whether the buffer
// still covered it, so truncated inputs fail deterministically.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> in) : buf_(in.data()), cap_(in.size()) {}

  template <typename U>
    requires std::is_trivially_copyable_v<U>
  [[nodiscard]] bool get(U& value) {
    return get_bytes(&value, sizeof(U));
  }

  [[nodiscard]] bool get_bytes(void* out, std::size_t n) {
    if (cap_ - pos_ < n) return false;
    std::memcpy(out, buf_ + pos_, n);
    pos_ += n;
    return true;
  }

  std::size_t remaining() const { return cap_ - pos_; }

 private:
  const std::byte* buf_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t pos_ = 0;
};

inline void write_header(Writer& w, Engine engine, std::uint8_t item_size) {
  w.put(kMagic);
  w.put(kVersion);
  w.put(kEndianness);
  w.put(static_cast<std::uint8_t>(engine));
  w.put(item_size);
  w.put(std::uint16_t{0});  // reserved
}

// Consumes and validates the common header.  A foreign-byte-order blob is
// detected FIRST — its magic is byte-swapped too, so a magic-first check
// would misreport it as "not a sketch" and bad_endianness would be
// unreachable (a historic bug, regression-tested).  The swapped-magic probe
// recognizes foreign blobs even when only the magic survived truncation;
// after that the order is magic before version before endianness (the last
// catching a corrupted tag on an otherwise native blob).
inline Status read_header(Reader& r, Engine expected_engine, std::uint8_t item_size) {
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t endianness = 0;
  std::uint8_t engine = 0;
  std::uint8_t isize = 0;
  std::uint16_t reserved = 0;
  if (!r.get(magic)) return Status::short_buffer;
  if (magic == kSwappedMagic) return Status::bad_endianness;
  if (magic != kMagic) return Status::bad_magic;
  if (!r.get(version)) return Status::short_buffer;
  if (version != kVersion) return Status::bad_version;
  if (!r.get(endianness)) return Status::short_buffer;
  if (endianness != kEndianness) return Status::bad_endianness;
  if (!r.get(engine) || !r.get(isize) || !r.get(reserved)) return Status::short_buffer;
  if (engine != static_cast<std::uint8_t>(expected_engine) || isize != item_size) {
    return Status::bad_payload;
  }
  return Status::ok;
}

inline void set_status(Status* out, Status s) {
  if (out != nullptr) *out = s;
}

}  // namespace qc::serde
