// Public API walkthrough — the README example, kept compiling.
//
// Deliberately includes ONLY the umbrella header: this TU is also the
// header-hygiene check (qc.hpp must be self-contained), compiled standalone
// by CI in addition to being built and run as example_public_api.
#include "qc.hpp"

#include <cstdio>
#include <vector>

int main() {
  // --- 1. A single concurrent sketch with per-thread RAII handles. --------
  qc::Options opts;
  opts.k = 256;
  // Options are validated, not silently rewritten: validate() lists every
  // adjustment normalize() would make (construction applies the same list).
  opts.b = 24;  // does not divide 2k = 512
  for (const auto& a : opts.validate()) {
    std::printf("adjustment: %s %llu -> %llu (%s)\n", a.field,
                static_cast<unsigned long long>(a.from),
                static_cast<unsigned long long>(a.to), a.rule);
  }
  qc::Quancurrent<double> sketch(opts);
  {
    qc::UpdaterHandle updater(sketch, /*thread_index=*/0);
    for (int i = 0; i < 100'000; ++i) updater.update(static_cast<double>(i % 1000));
  }  // handle scope ends -> remainder drained, all updates query-visible
  sketch.quiesce();
  qc::QuerierHandle querier(sketch);
  std::printf("single sketch: n=%llu median~%.1f p99~%.1f\n",
              static_cast<unsigned long long>(querier.size()), querier.quantile(0.5),
              querier.quantile(0.99));

  // --- 2. Merge: fold one sketch into another (per-tenant -> global). ----
  qc::Quancurrent<double> other(opts);
  {
    qc::UpdaterHandle updater(other);
    for (int i = 0; i < 50'000; ++i) updater.update(1000.0 + i % 1000);
  }
  other.quiesce();
  other.merge_into(sketch);  // wait-free for queriers on both sketches
  querier.refresh();
  std::printf("after merge:   n=%llu p90~%.1f\n",
              static_cast<unsigned long long>(querier.size()), querier.quantile(0.9));

  // --- 3. Binary serde: ship a summary across processes. ------------------
  const std::vector<std::byte> blob = qc::to_bytes(sketch);
  auto revived = qc::Quancurrent<double>::deserialize(blob);
  std::printf("serde:         %zu bytes, revived n=%llu, median match=%s\n", blob.size(),
              static_cast<unsigned long long>(revived->size()),
              revived->quantile(0.5) == sketch.quantile(0.5) ? "yes" : "no");

  // --- 4. The sequential engine models the same concept. ------------------
  static_assert(qc::QuantileSketch<qc::Quancurrent<double>>);
  static_assert(qc::QuantileSketch<qc::QuantilesSketch<double>>);
  qc::QuantilesSketch<double> seq(256);
  for (int i = 0; i < 10'000; ++i) seq.update(static_cast<double>(i));
  qc::QuantilesSketch<double> seq2(256);
  seq.merge_into(seq2);
  std::printf("sequential:    merged n=%llu median~%.1f\n",
              static_cast<unsigned long long>(seq2.size()), seq2.quantile(0.5));

  // --- 5. Sharded serving facade: scale past one sketch's knee. -----------
  qc::ShardedQuancurrent<double> sharded(/*shards=*/4, opts);
  {
    auto u0 = sharded.make_updater(0);  // thread-affinity routed to shard 0
    auto u1 = sharded.make_updater(1);  // ... shard 1
    for (int i = 0; i < 40'000; ++i) {
      u0.update(static_cast<double>(i % 500));
      u1.update(static_cast<double>(500 + i % 500));
    }
  }
  sharded.quiesce();
  auto sharded_q = sharded.make_querier();  // cross-shard merged summary
  std::printf("sharded (S=4): n=%llu median~%.1f\n",
              static_cast<unsigned long long>(sharded_q.size()), sharded_q.quantile(0.5));
  return 0;
}
