#!/usr/bin/env python3
"""tidy_ratchet: a ratcheted clang-tidy budget gate.

clang-tidy on a mature codebase is only useful if its warning count can
never grow.  This tool compares a clang-tidy log against the committed
per-check budget (tools/lint_budget.json) and fails CI on ANY increase —
while merely nudging (not failing) when a count drops, so budgets are
tightened deliberately via --update rather than bouncing on every run.

The tool never invokes clang-tidy itself: it consumes a log (CI pipes
`run-clang-tidy` / `clang-tidy` output in), so it runs — and self-tests —
on machines with no clang toolchain at all.

Usage:
  clang-tidy -p build $(git ls-files 'src/*.cpp') 2>&1 | tee tidy.log
  tidy_ratchet.py --log tidy.log                   # gate (exit 1 on increase)
  tidy_ratchet.py --log tidy.log --update          # rewrite budget to counts
  tidy_ratchet.py --log tidy.log --summary out.md  # markdown for CI summary
  tidy_ratchet.py --self-test                      # canned-log regression test

Budget file semantics:
  { "seeded": bool, "budgets": { "<check-name>": max_count, ... } }
* seeded=false (a tree that has never run clang-tidy): the gate reports
  counts and exits 0, printing the budget JSON to commit — the first CI run
  on a clang machine seeds the ratchet, after which it is strict.
* seeded=true: count > budget for any check fails; a check absent from the
  budget fails at any count (new warning kinds never ride in silently).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

WARNING_RE = re.compile(
    r"^(?P<path>[^:\s][^:]*):(?P<line>\d+):(?P<col>\d+):\s*"
    r"(?:warning|error):\s*(?P<msg>.*?)\s*\[(?P<check>[A-Za-z0-9.,_-]+)\]\s*$")

DEFAULT_BUDGET = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "lint_budget.json")


def parse_log(lines):
    """Per-check warning counts.  A diagnostic tagged with several checks
    ([a,b]) counts once per check.  Duplicate (file, line, check) entries —
    headers reported from many TUs — are deduplicated, mirroring what a
    human reviewing the log would count."""
    counts = {}
    seen = set()
    for line in lines:
        m = WARNING_RE.match(line.rstrip("\n"))
        if not m:
            continue
        for check in m.group("check").split(","):
            key = (m.group("path"), m.group("line"), check)
            if key in seen:
                continue
            seen.add(key)
            counts[check] = counts.get(check, 0) + 1
    return counts


def load_budget(path):
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    return bool(data.get("seeded", False)), dict(data.get("budgets", {}))


def write_budget(path, counts):
    data = {
        "_comment": [
            "Ratcheted clang-tidy budget (tools/tidy_ratchet.py).",
            "CI fails when any check exceeds its budget or a new check",
            "appears.  Regenerate with: tidy_ratchet.py --log <log> --update",
            "— only commit a regeneration that LOWERS numbers; raising one",
            "needs the same scrutiny as deleting a failing test.",
        ],
        "seeded": True,
        "budgets": dict(sorted(counts.items())),
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2)
        f.write("\n")


def compare(counts, budgets, seeded):
    """Returns (failures, improvements, rows) where rows drive the report."""
    failures, improvements, rows = [], [], []
    for check in sorted(set(counts) | set(budgets)):
        have = counts.get(check, 0)
        cap = budgets.get(check)
        if not seeded:
            rows.append((check, have, "-", "unseeded"))
            continue
        if cap is None:
            failures.append(f"{check}: {have} warning(s), not in budget "
                            "(new check kinds must land at zero or be "
                            "budgeted explicitly)")
            rows.append((check, have, 0, "FAIL (unbudgeted)"))
        elif have > cap:
            failures.append(f"{check}: {have} > budget {cap}")
            rows.append((check, have, cap, "FAIL"))
        elif have < cap:
            improvements.append(f"{check}: {have} < budget {cap} — run "
                                "--update to ratchet down")
            rows.append((check, have, cap, "ok (can tighten)"))
        else:
            rows.append((check, have, cap, "ok"))
    return failures, improvements, rows


def emit_summary(path, rows, failures, seeded):
    with open(path, "w", encoding="utf-8") as f:
        f.write("### clang-tidy ratchet\n\n")
        if not seeded:
            f.write("Budget is **unseeded** — counts below are "
                    "informational.  Commit the `--update` output to arm "
                    "the gate.\n\n")
        f.write("| check | count | budget | status |\n")
        f.write("|---|---:|---:|---|\n")
        for check, have, cap, status in rows:
            f.write(f"| `{check}` | {have} | {cap} | {status} |\n")
        if not rows:
            f.write("| _no warnings_ | 0 | - | ok |\n")
        f.write(f"\n**{'FAIL' if failures else 'PASS'}**"
                f"{': ' + '; '.join(failures) if failures else ''}\n")


SELF_TEST_LOG = """\
src/env.cpp:10:5: warning: branch clone [bugprone-branch-clone]
src/env.cpp:20:9: warning: inefficient vector op [performance-inefficient-vector-operation]
src/env.cpp:20:9: warning: inefficient vector op [performance-inefficient-vector-operation]
include/qc/core/run_merge.hpp:50:3: warning: narrowing [bugprone-narrowing-conversions]
include/qc/core/run_merge.hpp:50:3: warning: narrowing [bugprone-narrowing-conversions]
include/qc/core/run_merge.hpp:61:3: warning: narrowing [bugprone-narrowing-conversions]
random prose the parser must ignore
/abs/path/other.cpp:7:1: warning: two tags [bugprone-branch-clone,performance-no-int-to-ptr]
"""


def self_test():
    counts = parse_log(SELF_TEST_LOG.splitlines())
    want = {
        # env.cpp:20 deduplicates (same file/line/check twice); run_merge:50
        # deduplicates, :61 is distinct; the two-tag line counts once each.
        "bugprone-branch-clone": 2,
        "performance-inefficient-vector-operation": 1,
        "bugprone-narrowing-conversions": 2,
        "performance-no-int-to-ptr": 1,
    }
    assert counts == want, f"parse mismatch: {counts} != {want}"

    budgets = dict(want)
    f, imp, _ = compare(counts, budgets, seeded=True)
    assert not f and not imp, "equal counts must pass with no nudges"

    budgets["bugprone-branch-clone"] = 1  # one fewer allowed than present
    f, _, _ = compare(counts, budgets, seeded=True)
    assert any("bugprone-branch-clone" in x for x in f), \
        "an increase over budget must fail"

    budgets["bugprone-branch-clone"] = 5  # head is better than budget
    f, imp, _ = compare(counts, budgets, seeded=True)
    assert not f and any("ratchet down" in x for x in imp), \
        "a decrease must pass but nudge toward --update"

    del budgets["performance-no-int-to-ptr"]  # check unknown to the budget
    f, _, _ = compare(counts, budgets, seeded=True)
    assert any("not in budget" in x for x in f), \
        "an unbudgeted check must fail at any count"

    f, _, _ = compare(counts, {}, seeded=False)
    assert not f, "an unseeded budget must never fail the gate"

    print("tidy_ratchet self-test: all checks passed")
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--log", help="clang-tidy output to parse")
    ap.add_argument("--budget", default=DEFAULT_BUDGET)
    ap.add_argument("--update", action="store_true",
                    help="rewrite the budget to the current counts")
    ap.add_argument("--summary", help="write a markdown summary here "
                                      "(e.g. $GITHUB_STEP_SUMMARY)")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.log:
        ap.error("--log is required (or use --self-test)")

    with open(args.log, encoding="utf-8", errors="replace") as f:
        counts = parse_log(f)
    seeded, budgets = load_budget(args.budget)

    if args.update:
        write_budget(args.budget, counts)
        print(f"budget updated: {sum(counts.values())} warning(s) across "
              f"{len(counts)} check(s) -> {args.budget}")
        return 0

    failures, improvements, rows = compare(counts, budgets, seeded)
    if args.summary:
        emit_summary(args.summary, rows, failures, seeded)
    for check, have, cap, status in rows:
        print(f"  {check}: {have} (budget {cap}) {status}")
    for msg in improvements:
        print(f"note: {msg}")
    if not seeded:
        print("tidy-ratchet: budget unseeded; counts are informational. "
              "To arm the gate, commit the output of --update:")
        print(json.dumps({"seeded": True,
                          "budgets": dict(sorted(counts.items()))},
                         indent=2))
        return 0
    if failures:
        print("tidy-ratchet: FAIL")
        for msg in failures:
            print(f"  {msg}")
        return 1
    print(f"tidy-ratchet: PASS ({sum(counts.values())} warning(s) within "
          "budget)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
