#!/usr/bin/env python3
"""qc-lint: repo-specific static checks for the Quancurrent engine.

Four checks, each enforcing an invariant the compiler cannot see:

  explicit-memory-order   Every atomic operation names its memory order.  The
                          seqlock and IBR correctness arguments in
                          core/quancurrent.hpp depend on exact acquire/release
                          pairing; an implicit seq_cst op is an unjustified
                          fence (cost) and an undocumented ordering assumption
                          (correctness debt).
  no-alloc-under-latch    Nothing allocates in code reachable from a
                          QC_REQUIRES(latch_) function or inside a LatchGuard
                          scope (the PR 4/7 pre-reserve rule).  Deliberate,
                          protocol-audited exceptions carry a
                          `// qc-lint-allow(no-alloc-under-latch): why` marker.
  no-blocking-under-latch Nothing blocks under the install latch: no mutex
                          acquisition, no sleeps, no file I/O, and no call to
                          a QC_EXCLUDES(latch_) function (self-deadlock).
  qc-check-over-assert    In engine headers, every bare assert() carries a
                          justification marker tying it to the documented
                          QC_CHECK-vs-assert policy (common/check.hpp):
                          memory-safety invariants must be QC_CHECK (always
                          on); assert is reserved for expensive or
                          answer-correctness-only conditions.

Engine: a self-contained lexical analyzer (comment/string/preprocessor
stripping, balanced-delimiter function extraction, a name-based call graph
with latch-reachability) — chosen because the toolchain this repo builds on
(GCC-only containers) has no libclang.  When python bindings for libclang are
installed, `--engine libclang` upgrades receiver-type resolution for
explicit-memory-order; the lexical engine is the portable baseline and the
one CI runs.

Usage:
  qc_lint.py                         # scan the repo, exit 1 on violations
  qc_lint.py --fixtures              # self-test against expected-diagnostic
                                     # fixture files (ctest: test_qc_lint)
  qc_lint.py --compile-commands build/compile_commands.json
  qc_lint.py path/to/file.hpp ...    # scan specific files
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

CHECKS = (
    "explicit-memory-order",
    "no-alloc-under-latch",
    "no-blocking-under-latch",
    "qc-check-over-assert",
)

# Atomic member functions whose names are unambiguous in this codebase: a
# call is an atomic op regardless of what receiver-name resolution says.
ALWAYS_ATOMIC_METHODS = {
    "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
    "compare_exchange_weak", "compare_exchange_strong", "test_and_set",
}
# Atomic methods that collide with container vocabulary: flagged only when
# the receiver resolves to a known atomic (or atomic_flag, for clear()).
NAME_GATED_METHODS = {"load", "store", "exchange"}
FLAG_GATED_METHODS = {"clear"}

ALLOC_TOKENS = [
    (re.compile(r"\bnew\b"), "new expression"),
    (re.compile(r"[.\->]\s*push_back\s*\("), "std::vector::push_back"),
    (re.compile(r"[.\->]\s*emplace_back\s*\("), "emplace_back"),
    (re.compile(r"[.\->]\s*resize\s*\("), "resize"),
    (re.compile(r"[.\->]\s*reserve\s*\("), "reserve"),
    (re.compile(r"[.\->]\s*insert\s*\("), "insert"),
    (re.compile(r"\bmake_unique\s*<"), "make_unique"),
    (re.compile(r"\bmake_shared\s*<"), "make_shared"),
    (re.compile(r"\bthrow\b"), "throw"),
]
BLOCKING_TOKENS = [
    (re.compile(r"\block_guard\b"), "std::lock_guard"),
    (re.compile(r"\bunique_lock\b"), "std::unique_lock"),
    (re.compile(r"\bscoped_lock\b"), "std::scoped_lock"),
    (re.compile(r"\bMutexLock\b"), "sync::MutexLock"),
    (re.compile(r"[.\->]\s*lock\s*\(\s*\)"), ".lock()"),
    (re.compile(r"\bsleep_for\b"), "sleep_for"),
    (re.compile(r"\bsleep_until\b"), "sleep_until"),
    (re.compile(r"\bfsync\b|\bfdatasync\b"), "fsync"),
    (re.compile(r"\busleep\b|\bnanosleep\b"), "sleep syscall"),
    (re.compile(r"[.\->]\s*join\s*\(\s*\)"), "thread join"),
]

KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "new", "delete", "else", "do", "static_assert", "assert",
    "defined", "requires", "operator", "noexcept", "alignas", "constexpr",
    "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
}

ALLOW_RE = re.compile(r"qc-lint-allow\(([a-z-]+)\)")
EXPECT_RE = re.compile(r"qc-lint-expect:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")
IDENT = r"[A-Za-z_]\w*"


class Violation:
    def __init__(self, path, line, check, msg):
        self.path, self.line, self.check, self.msg = path, line, check, msg

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.msg}"

    def key(self):
        return (self.path, self.line, self.check)


def strip_code(text: str) -> str:
    """Blanks comments, string/char literals, and preprocessor directives,
    preserving offsets and newlines so line numbers survive."""
    out = list(text)
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                j = text.find("\n", i)
                j = n if j == -1 else j
                for k in range(i, j):
                    out[k] = " "
                i = j
            elif c == "/" and nxt == "*":
                j = text.find("*/", i + 2)
                j = n - 2 if j == -1 else j
                for k in range(i, j + 2):
                    if out[k] != "\n":
                        out[k] = " "
                i = j + 2
            elif c == '"':
                j = i + 1
                while j < n and text[j] != '"':
                    j += 2 if text[j] == "\\" else 1
                for k in range(i, min(j + 1, n)):
                    out[k] = " "
                i = j + 1
            elif c == "'" and i > 0 and (text[i - 1].isalnum()
                                         or text[i - 1] == "_"):
                i += 1  # digit separator (1'000'000), not a char literal
            elif c == "'":
                j = i + 1
                while j < n and text[j] != "'":
                    j += 2 if text[j] == "\\" else 1
                for k in range(i, min(j + 1, n)):
                    out[k] = " "
                i = j + 1
            elif c == "#" and text[:i].rstrip(" \t").endswith(("\n", "")) or (
                    c == "#" and (i == 0 or text.rfind("\n", 0, i) == i - len(text[:i]) + len(text[:i].rstrip(" \t")))):
                # preprocessor directive (handles continuation backslashes)
                j = i
                while j < n:
                    e = text.find("\n", j)
                    e = n if e == -1 else e
                    if text[j:e].rstrip().endswith("\\"):
                        j = e + 1
                    else:
                        break
                e = text.find("\n", j)
                e = n if e == -1 else e
                for k in range(i, e):
                    if out[k] != "\n":
                        out[k] = " "
                i = e
            else:
                i += 1
        else:  # pragma: no cover
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def match_delim(text: str, pos: int, open_c: str, close_c: str) -> int:
    """pos points at open_c; returns index just past the matching close_c."""
    depth = 0
    i = pos
    n = len(text)
    while i < n:
        if text[i] == open_c:
            depth += 1
        elif text[i] == close_c:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


class Function:
    def __init__(self, name, path, line, trailer, body, body_offset):
        self.name = name
        self.path = path
        self.line = line
        self.trailer = trailer
        self.body = body
        self.body_offset = body_offset  # char offset of '{' in file text
        self.requires_latch = bool(
            re.search(r"QC_REQUIRES\s*\([^)]*latch", trailer))
        self.excludes_latch = bool(
            re.search(r"QC_EXCLUDES\s*\([^)]*latch", trailer))


def extract_functions(clean: str, path: str):
    """Finds function definitions: identifier '(' params ')' [trailer] '{'."""
    funcs = []
    for m in re.finditer(IDENT + r"\s*\(", clean):
        name = m.group(0)[:-1].strip()
        if name in KEYWORDS or name.startswith("QC_"):
            continue
        prev = clean[:m.start()].rstrip()
        if prev.endswith((".", "->", "::")) and prev.endswith("std::"):
            continue
        paren_open = m.end() - 1
        after_params = match_delim(clean, paren_open, "(", ")")
        # Trailer: accept whitespace, cv/ref/noexcept/override/final,
        # QC_* attribute macros (with balanced args), trailing return, and
        # a constructor init list; a body '{' makes it a definition.
        i = after_params
        n = len(clean)
        trailer_start = i
        is_def = False
        while i < n:
            ch = clean[i]
            if ch in " \t\n":
                i += 1
            elif clean.startswith(("const", "noexcept", "override", "final",
                                   "mutable", "&&", "&"), i):
                tok = re.match(r"const|noexcept|override|final|mutable|&&|&",
                               clean[i:])
                i += tok.end()
                if clean[i:i + 1] == "(":  # noexcept(...)
                    i = match_delim(clean, i, "(", ")")
            elif clean.startswith("QC_", i):
                tok = re.match(r"QC_\w+", clean[i:])
                i += tok.end()
                j = i
                while j < n and clean[j] in " \t\n":
                    j += 1
                if clean[j:j + 1] == "(":
                    i = match_delim(clean, j, "(", ")")
            elif clean.startswith("->", i):
                j = clean.find("{", i)
                k = clean.find(";", i)
                if j == -1 or (k != -1 and k < j):
                    break
                i = j
            elif ch == ":" and not clean.startswith("::", i):
                # ctor init list: skip balanced parens/braces until body '{'
                i += 1
                depth = 0
                while i < n:
                    c2 = clean[i]
                    if c2 in "(":
                        i = match_delim(clean, i, "(", ")")
                        continue
                    if c2 == "{" and depth == 0:
                        prev2 = clean[:i].rstrip()
                        # brace directly after an initializer name is an
                        # init-brace: `m_{x}`; a body brace follows ')' or ','
                        if prev2.endswith((")", ",")) or prev2[-1:].isalnum() is False:
                            pass
                        # member brace-init: skip it
                        if prev2[-1:].isalnum() or prev2.endswith("_"):
                            i = match_delim(clean, i, "{", "}")
                            continue
                        break
                    if c2 == ";":
                        break
                    i += 1
                if clean[i:i + 1] != "{":
                    break
            elif ch == "{":
                is_def = True
                break
            else:
                break
        if not is_def:
            continue
        trailer = clean[trailer_start:i]
        body_end = match_delim(clean, i, "{", "}")
        body = clean[i + 1:body_end - 1]
        funcs.append(Function(name, path, line_of(clean, m.start()),
                              trailer, body, i))
    return funcs


def collect_atomics(cleans):
    atomics, flags, scalars = set(), set(), set()
    decl_re = re.compile(r"\batomic(_flag)?\b")
    scalar_re = re.compile(
        r"\b(?:std::)?(?:u?int\d+_t|size_t|ptrdiff_t|int|long|short|char|"
        r"bool|float|double|unsigned|signed|auto)\s+(?:const\s+)?(" + IDENT + r")\b")
    for clean in cleans.values():
        for m in decl_re.finditer(clean):
            i = m.end()
            is_flag = m.group(1) is not None
            # skip template args of atomic<...>, then array-of-atomic closers
            while i < len(clean) and clean[i] in " \t\n":
                i += 1
            if clean[i:i + 1] == "<":
                depth = 0
                while i < len(clean):
                    if clean[i] == "<":
                        depth += 1
                    elif clean[i] == ">":
                        depth -= 1
                        if depth == 0:
                            i += 1
                            break
                    i += 1
            # array-of-atomic: `std::array<std::atomic<..>, N> name` puts the
            # match inside an outer template; skip trailing `, N>` closers.
            while i < len(clean) and clean[i] in " \t\n,0123456789+*kK_>":
                i += 1
            nm = re.match(r"&?\s*(" + IDENT + ")", clean[i:])
            if nm:
                name = nm.group(1)
                if name in ("const", "struct", "class"):
                    continue
                (flags if is_flag else atomics).add(name)
        for m in scalar_re.finditer(clean):
            scalars.add(m.group(1))
    return atomics, flags, scalars


def receiver_name(clean: str, pos: int):
    """Identifier owning the member access that starts at `pos` (the '.' or
    '->'), skipping one balanced []/() suffix."""
    i = pos - 1
    while i >= 0 and clean[i] in " \t\n":
        i -= 1
    for open_c, close_c in (("[", "]"), ("(", ")")):
        if i >= 0 and clean[i] == close_c:
            depth = 0
            while i >= 0:
                if clean[i] == close_c:
                    depth += 1
                elif clean[i] == open_c:
                    depth -= 1
                    if depth == 0:
                        i -= 1
                        break
                i -= 1
            while i >= 0 and clean[i] in " \t\n":
                i -= 1
    m = re.search(r"(" + IDENT + r")$", clean[: i + 1])
    return m.group(1) if m else None


def check_memory_order(path, clean, atomics, flags, scalars, allow):
    out = []
    method_re = re.compile(
        r"(\.|->)\s*(load|store|exchange|clear|wait|"
        r"fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|test_and_set|"
        r"compare_exchange_weak|compare_exchange_strong)\s*\(")
    for m in method_re.finditer(clean):
        method = m.group(2)
        paren = m.end() - 1
        args = clean[paren + 1: match_delim(clean, paren, "(", ")") - 1]
        if "memory_order" in args:
            continue
        recv = receiver_name(clean, m.start())
        if method in ALWAYS_ATOMIC_METHODS:
            pass
        elif method in NAME_GATED_METHODS or method == "wait":
            if recv not in atomics:
                continue
        elif method in FLAG_GATED_METHODS:
            if recv not in flags:
                continue
        line = line_of(clean, m.start())
        if allowed(allow, "explicit-memory-order", line):
            continue
        out.append(Violation(path, line, "explicit-memory-order",
                             f"{recv or '<expr>'}.{method}() uses implicit "
                             "seq_cst; name the order (and justify it)"))
    # operator-form mutations on names that are unambiguously atomic
    unique = atomics - scalars
    op_res = [re.compile(r"(?:\+\+|--)\s*(" + IDENT + r")\b"),
              re.compile(r"\b(" + IDENT + r")\s*(?:\+\+|--)"),
              re.compile(r"\b(" + IDENT + r")\s*(?:\+=|-=|\|=|&=|\^=)")]
    for rex in op_res:
        for m in rex.finditer(clean):
            name = m.group(1)
            if name not in unique:
                continue
            line = line_of(clean, m.start())
            if allowed(allow, "explicit-memory-order", line):
                continue
            out.append(Violation(path, line, "explicit-memory-order",
                                 f"operator-form atomic mutation of '{name}' "
                                 "is implicit seq_cst; use fetch_* with an "
                                 "explicit order"))
    return out


def allowed(allow_map, check, line, span=6):
    """True when an allow marker for `check` sits on the line or in the
    immediately preceding comment block (up to `span` lines)."""
    for ln in range(line, max(0, line - span - 1), -1):
        if check in allow_map.get(ln, ()):  # marker found
            return True
    return False


def latched_regions(fn: Function):
    """(start, end) offsets in fn.body that run under the install latch."""
    if fn.requires_latch:
        return [(0, len(fn.body))]
    regions = []
    for m in re.finditer(r"\bLatchGuard\b", fn.body):
        # region: from the guard to the close of its enclosing brace scope
        depth = 0
        i = m.end()
        n = len(fn.body)
        while i < n:
            if fn.body[i] == "{":
                depth += 1
            elif fn.body[i] == "}":
                depth -= 1
                if depth < 0:
                    break
            i += 1
        regions.append((m.start(), i))
    return regions


def body_calls(body: str):
    """Plain (non-member) calls in a body.  Member calls through an object
    (`retired_.push_back(...)`, `backoff.spin()`) are deliberately not graph
    edges: a name-based graph cannot tell `merger_.merge` from every other
    `merge` in the repo, and the direct-token scans already catch allocating
    or blocking member calls textually.  `this->helper()` and same-class
    `helper()` calls — the way latch-path helpers are actually invoked — do
    form edges."""
    calls = set()
    for m in re.finditer(r"(" + IDENT + r")\s*\(", body):
        name = m.group(1)
        if name in KEYWORDS or name.startswith("QC_"):
            continue
        prev = body[:m.start()].rstrip()
        if prev.endswith("std::"):
            continue
        if prev.endswith((".", "->")) and not prev.endswith("this->"):
            continue
        calls.add(name)
    return calls


def latch_reachable(funcs_by_name, seeds):
    """Names of functions that can run with the latch held: the
    QC_REQUIRES(latch_) seeds plus everything they plainly call.  A
    QC_EXCLUDES(latch_) function is never traversed — it cannot legitimately
    run latch-held (the call site itself is the self-deadlock violation)."""
    reach = set(seeds)
    work = list(seeds)
    while work:
        name = work.pop()
        for fn in funcs_by_name.get(name, ()):  # all same-name definitions
            if fn.excludes_latch:
                continue
            for callee in body_calls(fn.body):
                if callee not in funcs_by_name or callee in reach:
                    continue
                if all(cf.excludes_latch for cf in funcs_by_name[callee]):
                    continue
                reach.add(callee)
                work.append(callee)
    return reach


def scan_region(path, fn, start, end, base_line, allow, funcs_by_name, out):
    text = fn.body[start:end]

    def emit(check, m, what):
        line = base_line + fn.body[:start + m.start()].count("\n")
        if not allowed(allow, check, line):
            out.append(Violation(path, line, check,
                                 f"{what} under the install latch "
                                 f"(in {fn.name})"))

    for rex, what in ALLOC_TOKENS:
        for m in rex.finditer(text):
            emit("no-alloc-under-latch", m, what)
    for rex, what in BLOCKING_TOKENS:
        for m in rex.finditer(text):
            emit("no-blocking-under-latch", m, what)
    # Self-deadlock: a plain call to a QC_EXCLUDES(latch_) entry point from
    # latch-held code re-acquires the latch we already hold.  Member calls
    # through another object (`target.install_run(...)`) acquire *that*
    # instance's latch and are legal, so only this-calls count.
    for m in re.finditer(r"(" + IDENT + r")\s*\(", text):
        callee = m.group(1)
        prev = text[:m.start()].rstrip()
        if prev.endswith((".", "->")) and not prev.endswith("this->"):
            continue
        for cf in funcs_by_name.get(callee, ()):
            if cf.excludes_latch:
                emit("no-blocking-under-latch", m,
                     f"call to {callee}() which QC_EXCLUDES the latch "
                     "(self-deadlock)")
                break


def check_assert(path, clean, allow, is_engine_header):
    out = []
    if not is_engine_header:
        return out
    for m in re.finditer(r"(?<!static_)(?<!\w)assert\s*\(", clean):
        line = line_of(clean, m.start())
        if allowed(allow, "qc-check-over-assert", line):
            continue
        out.append(Violation(
            path, line, "qc-check-over-assert",
            "bare assert() in an engine header: use QC_CHECK for "
            "memory-safety invariants, or justify the assert with "
            "`// qc-lint-allow(qc-check-over-assert): <why>` "
            "(see common/check.hpp policy)"))
    return out


def collect_markers(text: str):
    allow, expect = {}, {}
    for idx, line in enumerate(text.splitlines(), start=1):
        am = ALLOW_RE.search(line)
        if am:
            allow.setdefault(idx, set()).add(am.group(1))
        em = EXPECT_RE.search(line)
        if em:
            for c in re.split(r"\s*,\s*", em.group(1)):
                expect.setdefault(idx, set()).add(c)
    return allow, expect


def repo_root():
    return os.path.normpath(os.path.join(os.path.dirname(
        os.path.abspath(__file__)), "..", ".."))


def default_files(root):
    files = []
    for sub in ("include", "src", "tests", "bench", "examples"):
        base = os.path.join(root, sub)
        for dirpath, _dirs, names in os.walk(base):
            for nm in sorted(names):
                if nm.endswith((".hpp", ".h", ".cpp", ".cc")):
                    files.append(os.path.join(dirpath, nm))
    return files


def files_from_compile_commands(path, root):
    with open(path, encoding="utf-8") as f:
        db = json.load(f)
    files = set()
    for entry in db:
        src = os.path.normpath(os.path.join(entry.get("directory", "."),
                                            entry["file"]))
        if src.startswith(root) and "/build/" not in src:
            files.add(src)
    # headers are not TUs; always sweep the engine headers
    for f2 in default_files(root):
        if f2.endswith((".hpp", ".h")):
            files.add(f2)
    return sorted(files)


def is_engine_header(path):
    p = path.replace("\\", "/")
    return "/include/qc/" in p and p.endswith((".hpp", ".h"))


def run_checks(paths, fixture_mode=False):
    texts, cleans, allows = {}, {}, {}
    per_file_funcs = {}
    funcs_by_name = {}
    for p in paths:
        with open(p, encoding="utf-8", errors="replace") as f:
            texts[p] = f.read()
        cleans[p] = strip_code(texts[p])
        allows[p] = collect_markers(texts[p])[0]
        per_file_funcs[p] = extract_functions(cleans[p], p)
        for fn in per_file_funcs[p]:
            funcs_by_name.setdefault(fn.name, []).append(fn)
    atomics, flags, scalars = collect_atomics(cleans)

    # latch reachability is global: seed from every annotated function
    seeds = {fn.name for fns in per_file_funcs.values()
             for fn in fns if fn.requires_latch}
    reach = latch_reachable(funcs_by_name, seeds)

    violations = []
    for p in paths:
        clean, allow = cleans[p], allows[p]
        violations += check_memory_order(p, clean, atomics, flags, scalars,
                                         allow)
        for fn in per_file_funcs[p]:
            base = line_of(clean, fn.body_offset)
            if fn.requires_latch or (fn.name in reach
                                     and not fn.excludes_latch):
                scan_region(p, fn, 0, len(fn.body), base, allow,
                            funcs_by_name, violations)
            else:
                for (s, e) in latched_regions(fn):
                    scan_region(p, fn, s, e, base, allow, funcs_by_name,
                                violations)
        engine = is_engine_header(p) or (fixture_mode and p.endswith(".hpp"))
        violations += check_assert(p, clean, allow, engine)
    # one diagnostic per (file, line, check)
    seen, unique = set(), []
    for v in violations:
        if v.key() not in seen:
            seen.add(v.key())
            unique.append(v)
    unique.sort(key=lambda v: (v.path, v.line, v.check))
    return unique


def run_fixtures(fixture_dir):
    paths = sorted(
        os.path.join(fixture_dir, nm) for nm in os.listdir(fixture_dir)
        if nm.endswith((".hpp", ".cpp")))
    if not paths:
        print(f"qc-lint: no fixtures found in {fixture_dir}", file=sys.stderr)
        return 1
    failures = 0
    for p in paths:
        with open(p, encoding="utf-8") as f:
            text = f.read()
        _allow, expect = collect_markers(text)
        got = run_checks([p], fixture_mode=True)
        got_set = {(v.line, v.check) for v in got}
        want_set = {(ln, c) for ln, cs in expect.items() for c in cs}
        missing = want_set - got_set
        surplus = got_set - want_set
        rel = os.path.basename(p)
        if missing or surplus:
            failures += 1
            print(f"FAIL {rel}")
            for ln, c in sorted(missing):
                print(f"  expected but not reported: line {ln} [{c}]")
            for ln, c in sorted(surplus):
                print(f"  reported but not expected: line {ln} [{c}]")
        else:
            print(f"ok   {rel} ({len(want_set)} expected diagnostics)")
    if failures:
        print(f"qc-lint fixtures: {failures}/{len(paths)} files FAILED")
        return 1
    print(f"qc-lint fixtures: all {len(paths)} files passed")
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", help="files to scan (default: repo)")
    ap.add_argument("--root", default=None, help="repo root")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json to derive the file list from")
    ap.add_argument("--fixtures", action="store_true",
                    help="run the expected-diagnostic fixture self-test")
    ap.add_argument("--engine", choices=("lexical", "libclang"),
                    default="lexical",
                    help="analysis engine (libclang needs python bindings)")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    if args.engine == "libclang":
        try:
            import clang.cindex  # noqa: F401
        except ImportError:
            print("qc-lint: libclang python bindings unavailable; "
                  "falling back to the lexical engine", file=sys.stderr)

    root = os.path.abspath(args.root) if args.root else repo_root()
    if args.fixtures:
        return run_fixtures(os.path.join(os.path.dirname(
            os.path.abspath(__file__)), "fixtures"))

    if args.files:
        paths = [os.path.abspath(f) for f in args.files]
    elif args.compile_commands:
        paths = files_from_compile_commands(
            os.path.abspath(args.compile_commands), root)
    else:
        paths = default_files(root)

    violations = run_checks(paths)
    for v in violations:
        print(str(v).replace(root + os.sep, ""))
    if not args.quiet:
        print(f"qc-lint: {len(violations)} violation(s) in "
              f"{len(paths)} file(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
