// qc-lint fixture: explicit-memory-order.
// Never compiled — consumed by `qc_lint.py --fixtures`, which checks that the
// reported diagnostics exactly match the `qc-lint-expect:` markers below.
#include <atomic>
#include <vector>

std::atomic<unsigned> counter{0};
std::atomic_flag door = ATOMIC_FLAG_INIT;
std::atomic<bool> ready{false};
int plain = 0;
std::vector<int> names;

void offenders() {
  counter.fetch_add(1);                  // qc-lint-expect: explicit-memory-order
  counter.store(5);                      // qc-lint-expect: explicit-memory-order
  (void)counter.load();                  // qc-lint-expect: explicit-memory-order
  (void)ready.exchange(true);            // qc-lint-expect: explicit-memory-order
  (void)door.test_and_set();             // qc-lint-expect: explicit-memory-order
  door.clear();                          // qc-lint-expect: explicit-memory-order
  counter++;                             // qc-lint-expect: explicit-memory-order
  counter += 2;                          // qc-lint-expect: explicit-memory-order
}

void conforming() {
  counter.fetch_add(1, std::memory_order_relaxed);
  ready.store(true, std::memory_order_release);
  while (!ready.load(std::memory_order_acquire)) {
  }
  (void)door.test_and_set(std::memory_order_acq_rel);
  door.clear(std::memory_order_release);
  bool expected = true;
  ready.compare_exchange_strong(expected, false, std::memory_order_acq_rel,
                                std::memory_order_acquire);
  names.clear();  // container clear: receiver is not an atomic_flag
  plain += 1;     // non-atomic compound assignment
}

void justified() {
  // qc-lint-allow(explicit-memory-order): single-threaded teardown path.
  (void)counter.load();
}
