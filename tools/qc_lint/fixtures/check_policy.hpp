// qc-lint fixture: qc-check-over-assert.  A .hpp fixture is treated as an
// engine header, where every bare assert() needs a policy justification
// (common/check.hpp: QC_CHECK for memory safety, assert for expensive or
// answer-correctness-only conditions).  Never compiled.
#include <cassert>

struct Ladder {
  void publish(unsigned level, unsigned count) {
    QC_CHECK(level < kLevels, "level out of ladder range");  // policy-correct
    static_assert(sizeof(unsigned) >= 4, "unsigned is at least 32 bits");
    assert(count > 0);  // qc-lint-expect: qc-check-over-assert
  }

  void install(const int* items, unsigned n) {
    // qc-lint-allow(qc-check-over-assert): O(n) sortedness probe — answer
    // correctness only, too expensive for a release-build check.
    assert(is_sorted_range(items, n));
  }

  unsigned kLevels = 16;
};
