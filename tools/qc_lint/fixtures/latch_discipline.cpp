// qc-lint fixture: no-alloc-under-latch and no-blocking-under-latch.
// Never compiled — the QC_* trailers below are parsed textually by qc_lint.py,
// exactly as they appear in the real engine headers.
#include <mutex>
#include <vector>

struct Sketch {
  // Directly annotated: the whole body runs latch-held.
  void install() QC_REQUIRES(latch_) {
    retired_.push_back(nullptr);         // qc-lint-expect: no-alloc-under-latch
    scratch_.resize(64);                 // qc-lint-expect: no-alloc-under-latch
    auto* b = new int[8];                // qc-lint-expect: no-alloc-under-latch
    helper(b);
    std::lock_guard<std::mutex> g(mu_);  // qc-lint-expect: no-blocking-under-latch
    file_sink_.lock();                   // qc-lint-expect: no-blocking-under-latch
    drain();                             // qc-lint-expect: no-blocking-under-latch
  }

  // Not annotated, but plainly called from install(): reachability makes the
  // whole body count as latch-held.
  void helper(int* b) {
    stash_.push_back(b);                 // qc-lint-expect: no-alloc-under-latch
  }

  // A latch-acquiring entry point: allocation inside is legal (it happens
  // before/after its own latched window), and reachability must not leak
  // into it — the install() call above is flagged at the call site instead.
  void drain() QC_EXCLUDES(latch_) {
    buffer_.reserve(128);
  }

  // Scoped guard: only the guard's brace scope is latched.
  void snapshot() {
    prep_.reserve(64);  // before the guard: fine
    {
      const LatchGuard guard(*this);
      values_.push_back(1);              // qc-lint-expect: no-alloc-under-latch
    }
    after_.push_back(2);  // after the guard scope closes: fine
  }

  // Designed exception, audited and justified at the site.
  void refill_free_list() QC_REQUIRES(latch_) {
    // qc-lint-allow(no-alloc-under-latch): bounded by the free-list cap;
    // capacity is warmed by the first scans, never grows on the hot path.
    free_blocks_.push_back(nullptr);
  }

  std::vector<int*> retired_, stash_, free_blocks_;
  std::vector<int> scratch_, buffer_, prep_, values_, after_;
  std::mutex mu_;
  std::mutex file_sink_;
};
