// qc-lint fixture: a negative control.  Idiomatic engine-adjacent code that
// must produce zero diagnostics — if any check fires here, the checker has a
// false-positive regression.  Never compiled.
#include <atomic>
#include <mutex>
#include <vector>

std::atomic<unsigned> hits{0};

void record() { hits.fetch_add(1, std::memory_order_relaxed); }

struct Pool {
  // Not latch-annotated and not called from latched code: allocation and
  // locking are unrestricted.
  void refill() {
    std::lock_guard<std::mutex> g(mu_);
    blocks_.reserve(64);
    blocks_.push_back(nullptr);
  }

  // Digit separators must not be mistaken for char literals (a bug class the
  // stripper is specifically tested against here).
  bool big_enough() const { return blocks_.capacity() >= 1'000'000; }

  std::vector<int*> blocks_;
  mutable std::mutex mu_;
};
